"""Proximal operators for the non-differentiable regularizers.

Following Combettes & Wajs (2005), the paper handles the two regularizers
with their proximal maps:

* ℓ1 norm → entry-wise soft thresholding
  ``prox_{γ‖·‖₁}(S) = sgn(S) ∘ (|S| − γ)₊``
* trace norm → singular value thresholding
  ``prox_{τ‖·‖*}(S) = U diag((σᵢ − τ)₊) Vᵀ``

Each operator is exposed both as a plain function and as a small callable
class implementing a shared interface (``apply(matrix, step)``) plus the
regularizer's ``value`` so solvers can report objective values.
"""

from __future__ import annotations

import numpy as np

from repro.utils.matrices import l1_norm, trace_norm
from repro.utils.validation import check_non_negative


def soft_threshold(matrix: np.ndarray, threshold: float) -> np.ndarray:
    """Entry-wise soft thresholding ``sgn(S) ∘ (|S| − t)₊``."""
    threshold = check_non_negative(threshold, "threshold")
    matrix = np.asarray(matrix, dtype=float)
    return np.sign(matrix) * np.maximum(np.abs(matrix) - threshold, 0.0)


def singular_value_threshold(matrix: np.ndarray, threshold: float) -> np.ndarray:
    """Singular value thresholding ``U diag((σᵢ − t)₊) Vᵀ``."""
    threshold = check_non_negative(threshold, "threshold")
    matrix = np.asarray(matrix, dtype=float)
    u, singular, vt = np.linalg.svd(matrix, full_matrices=False)
    shrunk = np.maximum(singular - threshold, 0.0)
    return (u * shrunk[None, :]) @ vt


def truncated_singular_value_threshold(
    matrix: np.ndarray, threshold: float, rank: int
) -> np.ndarray:
    """SVT via a rank-``rank`` truncated SVD (scipy's Lanczos ``svds``).

    At the paper's scale (5k × 5k adjacency matrices) a full SVD per
    proximal step is the bottleneck; after thresholding, only the leading
    singular values survive anyway, so computing just the top ``rank``
    triplets gives the same operator whenever the (rank+1)-th singular
    value is below ``threshold`` — and a best-effort approximation
    otherwise.  Falls back to the exact dense SVT when the matrix is small
    or ``rank`` is not actually truncating.
    """
    threshold = check_non_negative(threshold, "threshold")
    rank = int(rank)
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    matrix = np.asarray(matrix, dtype=float)
    if rank >= min(matrix.shape) - 1:
        return singular_value_threshold(matrix, threshold)
    import scipy.sparse.linalg

    u, singular, vt = scipy.sparse.linalg.svds(matrix, k=rank)
    # svds returns singular values in ascending order.
    shrunk = np.maximum(singular - threshold, 0.0)
    return (u * shrunk[None, :]) @ vt


class L1Prox:
    """The ℓ1 regularizer ``γ‖S‖₁`` with its proximal map.

    Parameters
    ----------
    weight:
        The regularization weight γ (the paper uses γ = 1.0).
    """

    def __init__(self, weight: float):
        self.weight = check_non_negative(weight, "weight")

    def value(self, matrix: np.ndarray) -> float:
        """Regularizer value ``γ‖S‖₁``."""
        return self.weight * l1_norm(matrix)

    def apply(self, matrix: np.ndarray, step: float) -> np.ndarray:
        """``prox_{step·γ‖·‖₁}`` — soft threshold at ``step * γ``."""
        return soft_threshold(matrix, step * self.weight)

    def __repr__(self) -> str:
        return f"L1Prox(weight={self.weight})"


class TraceNormProx:
    """The trace-norm regularizer ``τ‖S‖*`` with its proximal map.

    Parameters
    ----------
    weight:
        The regularization weight τ (the paper uses τ = 1.0).
    max_rank:
        When set, the prox uses a truncated SVD of this rank
        (:func:`truncated_singular_value_threshold`) — the scalable path
        for matrices at the paper's 5k-user scale.
    """

    def __init__(self, weight: float, max_rank: int = None):
        self.weight = check_non_negative(weight, "weight")
        if max_rank is not None and int(max_rank) < 1:
            raise ValueError(f"max_rank must be >= 1, got {max_rank}")
        self.max_rank = None if max_rank is None else int(max_rank)

    def value(self, matrix: np.ndarray) -> float:
        """Regularizer value ``τ‖S‖*``."""
        return self.weight * trace_norm(matrix)

    def apply(self, matrix: np.ndarray, step: float) -> np.ndarray:
        """``prox_{step·τ‖·‖*}`` — singular value threshold at ``step * τ``."""
        if self.max_rank is not None:
            return truncated_singular_value_threshold(
                matrix, step * self.weight, self.max_rank
            )
        return singular_value_threshold(matrix, step * self.weight)

    def __repr__(self) -> str:
        return (
            f"TraceNormProx(weight={self.weight}, max_rank={self.max_rank})"
        )


class BoxProjection:
    """Projection onto the admissible set ``S = [low, high]^{n×n}``.

    The paper constrains the predictor to confidence scores; the admissible
    set used throughout the reproduction is the unit box ``[0, 1]``.
    Implemented as a prox (of the box indicator) so solvers can treat it
    uniformly with the regularizers — its ``value`` is 0 inside the box.
    Pass ``high=None`` for the non-negative orthant (no upper bound); scores
    are then rescaled into [0, 1] after optimization.
    """

    def __init__(self, low: float = 0.0, high: float = 1.0):
        if high is not None and low > high:
            raise ValueError(f"low ({low}) must not exceed high ({high})")
        self.low = float(low)
        self.high = None if high is None else float(high)

    def value(self, matrix: np.ndarray) -> float:
        """0 everywhere (solvers only evaluate it on feasible iterates)."""
        return 0.0

    def apply(self, matrix: np.ndarray, step: float) -> np.ndarray:
        """Clip entries to the box (step is irrelevant for projections)."""
        return np.clip(matrix, self.low, self.high)

    def __repr__(self) -> str:
        return f"BoxProjection(low={self.low}, high={self.high})"
