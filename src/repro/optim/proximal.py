"""Proximal operators for the non-differentiable regularizers.

Following Combettes & Wajs (2005), the paper handles the two regularizers
with their proximal maps:

* ℓ1 norm → entry-wise soft thresholding
  ``prox_{γ‖·‖₁}(S) = sgn(S) ∘ (|S| − γ)₊``
* trace norm → singular value thresholding
  ``prox_{τ‖·‖*}(S) = U diag((σᵢ − τ)₊) Vᵀ``

Each operator is exposed both as a plain function and as a small callable
class implementing a shared interface (``apply(matrix, step)``) plus the
regularizer's ``value`` so solvers can report objective values.

Every operator accepts an optional ``tracer``
(:class:`~repro.observability.tracer.Tracer`): when live, the SVT paths
record the retained rank, the effective threshold and the first discarded
singular value (``svt.*`` metrics), which is how truncated-SVT
approximation loss becomes visible in run reports.  ``tracer=None`` keeps
the operators byte-for-byte on their untraced path.
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np
import scipy.sparse.linalg as _sparse_linalg

from repro.exceptions import TruncatedSVTWarning
from repro.observability.tracer import Tracer, is_tracing
from repro.reliability.faults import fault_point
from repro.utils.matrices import l1_norm, trace_norm
from repro.utils.validation import check_non_negative

# Hoisted from the truncated-SVT hot path: the per-call ``import`` and the
# ``ArpackError`` attribute lookup used to run inside every single
# truncated prox application.
_ARPACK_ERROR = getattr(_sparse_linalg, "ArpackError", RuntimeError)


def soft_threshold(
    matrix: np.ndarray, threshold: float, tracer: Optional[Tracer] = None
) -> np.ndarray:
    """Entry-wise soft thresholding ``sgn(S) ∘ (|S| − t)₊``."""
    threshold = check_non_negative(threshold, "threshold")
    matrix = np.asarray(matrix, dtype=float)
    shrunk = np.sign(matrix) * np.maximum(np.abs(matrix) - threshold, 0.0)
    if is_tracing(tracer):
        tracer.metric("l1.nnz", int(np.count_nonzero(shrunk)))
    return shrunk


def soft_threshold_inplace(
    matrix: np.ndarray,
    threshold: float,
    scratch: Optional[np.ndarray] = None,
    tracer: Optional[Tracer] = None,
) -> np.ndarray:
    """Entry-wise soft thresholding that mutates ``matrix`` in place.

    Bit-identical to :func:`soft_threshold` (same element-wise operations,
    reordered into in-place form) but allocation-free when ``scratch`` — a
    same-shaped buffer for the sign mask — is provided.  Returns the
    mutated ``matrix``.
    """
    threshold = check_non_negative(threshold, "threshold")
    if scratch is None:
        scratch = np.empty_like(matrix)
    np.sign(matrix, out=scratch)
    np.abs(matrix, out=matrix)
    matrix -= threshold
    np.maximum(matrix, 0.0, out=matrix)
    matrix *= scratch
    if is_tracing(tracer):
        tracer.metric("l1.nnz", int(np.count_nonzero(matrix)))
    return matrix


def _record_svt_metrics(
    tracer: Optional[Tracer],
    threshold: float,
    retained_rank: int,
    tail: float,
) -> None:
    """Publish one SVT application's spectrum diagnostics."""
    if not is_tracing(tracer):
        return
    tracer.metric("svt.retained_rank", retained_rank)
    tracer.metric("svt.threshold", threshold)
    tracer.metric("svt.tail_singular_value", tail)


def _svd_via_eigh(matrix: np.ndarray):
    """Deterministic SVD fallback through ``eigh`` of the Gram matrix.

    ``np.linalg.svd`` occasionally fails to converge on ill-conditioned
    input (LAPACK ``gesdd``); the symmetric eigensolver is far more robust,
    and for SVT purposes the tiny singular values a Gram-based
    factorization resolves poorly are exactly the ones the threshold
    discards anyway.
    """
    gram = matrix.T @ matrix
    eigenvalues, v = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues, v = eigenvalues[order], v[:, order]
    singular = np.sqrt(np.clip(eigenvalues, 0.0, None))
    safe = np.where(singular > 0, singular, 1.0)
    u = (matrix @ v) / safe[None, :]
    return u, singular, v.T


def _dense_svd(matrix: np.ndarray, tracer: Optional[Tracer]):
    """Dense SVD with the chaos hook and the eigh recovery path."""
    try:
        fault_point("solver.svd.dense")
        return np.linalg.svd(matrix, full_matrices=False)
    except np.linalg.LinAlgError:
        if is_tracing(tracer):
            tracer.count("svt.eigh_fallbacks")
        return _svd_via_eigh(matrix)


def singular_value_threshold(
    matrix: np.ndarray, threshold: float, tracer: Optional[Tracer] = None
) -> np.ndarray:
    """Singular value thresholding ``U diag((σᵢ − t)₊) Vᵀ``.

    A dense-SVD convergence failure (``LinAlgError``, real or injected at
    the ``solver.svd.dense`` fault site) falls back to an
    eigendecomposition of the Gram matrix (``svt.eigh_fallbacks``
    counter), so a single bad LAPACK call can no longer abort a CCCP fit.
    """
    threshold = check_non_negative(threshold, "threshold")
    matrix = np.asarray(matrix, dtype=float)
    if is_tracing(tracer):
        with tracer.span("svt"):
            u, singular, vt = _dense_svd(matrix, tracer)
    else:
        u, singular, vt = _dense_svd(matrix, tracer)
    shrunk = np.maximum(singular - threshold, 0.0)
    if is_tracing(tracer):
        retained = int(np.count_nonzero(shrunk))
        # Dense SVT is exact; the "tail" is the largest value it zeroed.
        tail = float(singular[retained]) if retained < singular.size else 0.0
        _record_svt_metrics(tracer, threshold, retained, tail)
    return (u * shrunk[None, :]) @ vt


def truncated_singular_value_threshold(
    matrix: np.ndarray,
    threshold: float,
    rank: int,
    tracer: Optional[Tracer] = None,
) -> np.ndarray:
    """SVT via a rank-``rank`` truncated SVD (scipy's Lanczos ``svds``).

    At the paper's scale (5k × 5k adjacency matrices) a full SVD per
    proximal step is the bottleneck; after thresholding, only the leading
    singular values survive anyway, so computing just the top ``rank``
    triplets gives the same operator whenever the (rank+1)-th singular
    value is below ``threshold``.  One extra triplet is computed as a probe
    of that (rank+1)-th value: when it exceeds the threshold the result is
    only a best-effort approximation, and the loss is surfaced with a
    :class:`~repro.exceptions.TruncatedSVTWarning` plus (under a live
    tracer) the ``svt.lossy_truncations`` counter and ``svt.tail_excess``
    metric.  Falls back to the exact dense SVT when the matrix is small or
    ``rank`` is not actually truncating.

    The Lanczos iteration is started from a fixed vector so repeated runs
    are deterministic (scipy's default draws a random start).
    """
    threshold = check_non_negative(threshold, "threshold")
    rank = int(rank)
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    matrix = np.asarray(matrix, dtype=float)
    if rank >= min(matrix.shape) - 1:
        return singular_value_threshold(matrix, threshold, tracer=tracer)
    n_small = min(matrix.shape)
    v0 = np.full(n_small, 1.0 / np.sqrt(n_small))

    def _truncated_svd():
        """Lanczos SVD with the chaos hook; failures promote to dense SVT."""
        fault_point("solver.svd.truncated")
        return _sparse_linalg.svds(matrix, k=rank + 1, v0=v0)

    try:
        if is_tracing(tracer):
            with tracer.span("svt"):
                u, singular, vt = _truncated_svd()
        else:
            u, singular, vt = _truncated_svd()
    except (np.linalg.LinAlgError, _ARPACK_ERROR) as exc:
        # Lanczos non-convergence (ArpackError/ArpackNoConvergence) or an
        # injected LinAlgError — recover with the exact dense prox rather
        # than aborting the whole fit.
        if is_tracing(tracer):
            tracer.count("svt.dense_fallbacks")
        warnings.warn(
            "truncated SVD failed; falling back to the exact dense SVT "
            f"for this proximal step ({type(exc).__name__})",
            TruncatedSVTWarning,
            stacklevel=2,
        )
        return singular_value_threshold(matrix, threshold, tracer=tracer)
    # svds returns singular values in ascending order: the first triplet is
    # the (rank+1)-th largest — the tail probe — and is never retained.
    tail = float(singular[0])
    u, singular, vt = u[:, 1:], singular[1:], vt[1:]
    shrunk = np.maximum(singular - threshold, 0.0)
    if tail > threshold:
        excess = tail - threshold
        # Keep the message value-free so the warnings machinery dedupes it
        # inside solver loops; per-apply magnitudes go to the tracer.
        warnings.warn(
            f"truncated SVT at rank {rank} is lossy: the (rank+1)-th "
            "singular value exceeds the shrinkage threshold, so part of "
            "the spectrum was dropped; raise the rank (or svd_rank) to "
            "recover the exact prox, or inspect the 'svt.tail_excess' "
            "tracer metric for the lost magnitude",
            TruncatedSVTWarning,
            stacklevel=2,
        )
        if is_tracing(tracer):
            tracer.count("svt.lossy_truncations")
            tracer.metric("svt.tail_excess", excess)
    _record_svt_metrics(
        tracer, threshold, int(np.count_nonzero(shrunk)), tail
    )
    return (u * shrunk[None, :]) @ vt


class L1Prox:
    """The ℓ1 regularizer ``γ‖S‖₁`` with its proximal map.

    Parameters
    ----------
    weight:
        The regularization weight γ (the paper uses γ = 1.0).
    """

    def __init__(self, weight: float):
        self.weight = check_non_negative(weight, "weight")

    def value(self, matrix: np.ndarray) -> float:
        """Regularizer value ``γ‖S‖₁``."""
        return self.weight * l1_norm(matrix)

    def apply(
        self,
        matrix: np.ndarray,
        step: float,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """``prox_{step·γ‖·‖₁}`` — soft threshold at ``step * γ``."""
        return soft_threshold(matrix, step * self.weight, tracer=tracer)

    def apply_inplace(
        self,
        matrix: np.ndarray,
        step: float,
        scratch: Optional[np.ndarray] = None,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """Allocation-free :meth:`apply` variant; mutates ``matrix``."""
        return soft_threshold_inplace(
            matrix, step * self.weight, scratch=scratch, tracer=tracer
        )

    def apply_values(
        self,
        values: np.ndarray,
        step: float,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """:meth:`apply` on a flat array of entry values.

        The factored solver's entry-wise prox acts on the iterate's
        values over the sparse support Ω only (the off-support part stays
        with the low-rank block — DESIGN.md §13); this is the same soft
        threshold applied to that value vector.
        """
        return soft_threshold(values, step * self.weight, tracer=tracer)

    def __repr__(self) -> str:
        return f"L1Prox(weight={self.weight})"


class TraceNormProx:
    """The trace-norm regularizer ``τ‖S‖*`` with its proximal map.

    Parameters
    ----------
    weight:
        The regularization weight τ (the paper uses τ = 1.0).
    max_rank:
        When set (and no ``engine`` is given), the prox uses a truncated
        SVD of this rank (:func:`truncated_singular_value_threshold`) —
        the legacy scalable path for matrices at the paper's 5k-user
        scale.
    engine:
        A stateful SVT operator (duck-typed; in practice
        :class:`~repro.perf.warm_svt.WarmStartSVT`) that takes over the
        proximal map.  The engine warm-starts each application from the
        previous one and exposes the spectrum it computed, which
        :meth:`value` reuses when asked about the exact array the engine
        just produced — sparing the objective breakdown a second SVD.
    """

    def __init__(self, weight: float, max_rank: int = None, engine=None):
        self.weight = check_non_negative(weight, "weight")
        if max_rank is not None and int(max_rank) < 1:
            raise ValueError(f"max_rank must be >= 1, got {max_rank}")
        self.max_rank = None if max_rank is None else int(max_rank)
        self.engine = engine

    def value(self, matrix: np.ndarray) -> float:
        """Regularizer value ``τ‖S‖*``.

        When ``matrix`` *is* the engine's most recent output — same
        object, unmutated (the entry-wise ℓ1 norm doubles as a cheap
        mutation fingerprint: both the soft threshold and the box
        projection strictly decrease it whenever they change anything) —
        the cached spectrum gives the exact value without an SVD.
        """
        engine = self.engine
        if (
            engine is not None
            and engine.last_output is matrix
            and float(np.abs(matrix).sum()) == engine.last_output_l1
        ):
            return self.weight * engine.last_output_trace_norm
        return self.weight * trace_norm(matrix)

    def apply(
        self,
        matrix: np.ndarray,
        step: float,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """``prox_{step·τ‖·‖*}`` — singular value threshold at ``step * τ``."""
        if self.engine is not None:
            return self.engine.apply(matrix, step * self.weight, tracer=tracer)
        if self.max_rank is not None:
            return truncated_singular_value_threshold(
                matrix, step * self.weight, self.max_rank, tracer=tracer
            )
        return singular_value_threshold(
            matrix, step * self.weight, tracer=tracer
        )

    def apply_factored(
        self,
        estimate,
        step: float,
        tracer: Optional[Tracer] = None,
    ):
        """:meth:`apply` on a factored operand, returning factors.

        With an engine, this is
        :meth:`~repro.perf.warm_svt.WarmStartSVT.apply_factored` — the
        range finder runs through the operand's matvecs and no dense
        matrix is formed.  Without one, the operand is densified (small-n
        oracle path), SVT'd exactly, and re-wrapped as a pure low-rank
        estimate, honoring ``max_rank`` the way the truncated path does.
        """
        if self.engine is not None:
            return self.engine.apply_factored(
                estimate, step * self.weight, tracer=tracer
            )
        from repro.factored.estimate import FactoredEstimate

        u, singular, vt = _dense_svd(estimate.to_dense(), tracer)
        shrunk = np.maximum(singular - step * self.weight, 0.0)
        retained = int(np.count_nonzero(shrunk[: self.max_rank]))
        if is_tracing(tracer):
            tail = (
                float(singular[retained])
                if retained < singular.size
                else 0.0
            )
            _record_svt_metrics(
                tracer, step * self.weight, retained, tail
            )
        return FactoredEstimate.from_lowrank(
            np.ascontiguousarray(u[:, :retained]),
            shrunk[:retained].copy(),
            np.ascontiguousarray(vt[:retained]),
        )

    def __repr__(self) -> str:
        if self.engine is not None:
            return (
                f"TraceNormProx(weight={self.weight}, engine={self.engine!r})"
            )
        return (
            f"TraceNormProx(weight={self.weight}, max_rank={self.max_rank})"
        )


class BoxProjection:
    """Projection onto the admissible set ``S = [low, high]^{n×n}``.

    The paper constrains the predictor to confidence scores; the admissible
    set used throughout the reproduction is the unit box ``[0, 1]``.
    Implemented as a prox (of the box indicator) so solvers can treat it
    uniformly with the regularizers — its ``value`` is 0 inside the box.
    Pass ``high=None`` for the non-negative orthant (no upper bound); scores
    are then rescaled into [0, 1] after optimization.
    """

    def __init__(self, low: float = 0.0, high: float = 1.0):
        if high is not None and low > high:
            raise ValueError(f"low ({low}) must not exceed high ({high})")
        self.low = float(low)
        self.high = None if high is None else float(high)

    def value(self, matrix: np.ndarray) -> float:
        """0 everywhere (solvers only evaluate it on feasible iterates)."""
        return 0.0

    def apply(
        self,
        matrix: np.ndarray,
        step: float,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """Clip entries to the box (step is irrelevant for projections)."""
        return np.clip(matrix, self.low, self.high)

    def apply_inplace(
        self,
        matrix: np.ndarray,
        step: float,
        scratch: Optional[np.ndarray] = None,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """Allocation-free :meth:`apply` variant; mutates ``matrix``."""
        np.clip(matrix, self.low, self.high, out=matrix)
        return matrix

    def apply_values(
        self,
        values: np.ndarray,
        step: float,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """:meth:`apply` on a flat array of entry values (factored path)."""
        return np.clip(np.asarray(values, dtype=float), self.low, self.high)

    def __repr__(self) -> str:
        return f"BoxProjection(low={self.low}, high={self.high})"
