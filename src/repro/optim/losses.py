"""Loss terms of the SLAMPRED objective.

The paper's empirical loss is the 0/1 link-disagreement count, which is
non-convex; Section III-D replaces it with the squared Frobenius surrogate
``l(S, A) = ‖S − A‖_F²`` used during optimization.  Both are implemented
here, plus the linearized intimacy term each CCCP round subtracts and a
masked-loss variant used by the ablation benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.exceptions import OptimizationError
from repro.utils.matrices import is_square


class SquaredFrobeniusLoss:
    """The convex surrogate ``‖S − A‖_F²`` (the paper's choice).

    Parameters
    ----------
    target:
        The observed adjacency matrix ``A``.
    """

    def __init__(self, target: np.ndarray):
        target = np.asarray(target, dtype=float)
        if not is_square(target):
            raise OptimizationError(
                f"target must be square, got shape {target.shape}"
            )
        self.target = target

    def value(self, matrix: np.ndarray) -> float:
        """Loss value at ``S``."""
        return float(np.sum((matrix - self.target) ** 2))

    def gradient(
        self, matrix: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gradient ``2(S − A)``, written into ``out`` when provided."""
        if out is None:
            return 2.0 * (matrix - self.target)
        np.subtract(matrix, self.target, out=out)
        out *= 2.0
        return out

    @property
    def lipschitz(self) -> float:
        """Lipschitz constant of the gradient (2 for this loss)."""
        return 2.0

    def __repr__(self) -> str:
        return f"SquaredFrobeniusLoss(n={self.target.shape[0]})"


class MaskedSquaredLoss:
    """Squared loss evaluated only on observed entries.

    Ablation variant: ``‖M ∘ (S − A)‖_F²`` where ``M`` marks entries whose
    status is known during training (existing links plus sampled confident
    non-links).  Unobserved entries are free, which is the classical matrix
    completion formulation.
    """

    def __init__(self, target: np.ndarray, mask: np.ndarray):
        target = np.asarray(target, dtype=float)
        mask = np.asarray(mask, dtype=float)
        if target.shape != mask.shape or not is_square(target):
            raise OptimizationError(
                f"target {target.shape} and mask {mask.shape} must be "
                "square matrices of the same shape"
            )
        if not np.all(np.isin(mask, (0.0, 1.0))):
            raise OptimizationError("mask must be binary")
        self.target = target
        self.mask = mask

    def value(self, matrix: np.ndarray) -> float:
        """Loss value at ``S`` over the observed entries."""
        return float(np.sum((self.mask * (matrix - self.target)) ** 2))

    def gradient(
        self, matrix: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gradient ``2 M ∘ (S − A)``, written into ``out`` when provided."""
        if out is None:
            return 2.0 * self.mask * (matrix - self.target)
        np.subtract(matrix, self.target, out=out)
        out *= self.mask
        out *= 2.0
        return out

    @property
    def lipschitz(self) -> float:
        """Lipschitz constant of the gradient."""
        return 2.0

    def __repr__(self) -> str:
        observed = int(self.mask.sum())
        return f"MaskedSquaredLoss(n={self.target.shape[0]}, observed={observed})"


class LinearizedIntimacyTerm:
    """The linear term ``−⟨S, G⟩`` a CCCP round subtracts.

    ``G = ∇v(S) = Σ_k α_k Σ_c X̂^k(c, :, :)`` is constant (the paper notes the
    intimacy term's derivative does not depend on ``S`` because the adapted
    features are non-negative and ``S`` lives in the unit box), so the smooth
    part of the inner problem is ``l(S, A) − ⟨S, G⟩``.
    """

    def __init__(self, gradient_matrix: np.ndarray):
        gradient_matrix = np.asarray(gradient_matrix, dtype=float)
        if not is_square(gradient_matrix):
            raise OptimizationError(
                f"gradient matrix must be square, got {gradient_matrix.shape}"
            )
        self.gradient_matrix = gradient_matrix
        self._negated = -gradient_matrix

    def value(self, matrix: np.ndarray) -> float:
        """``−⟨S, G⟩``."""
        return -float(np.sum(matrix * self.gradient_matrix))

    def gradient(
        self, matrix: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Constant gradient ``−G``.

        Without ``out`` this returns a shared, precomputed array — callers
        must treat it as read-only (the solver only ever accumulates it).
        """
        if out is None:
            return self._negated
        np.copyto(out, self._negated)
        return out

    def __repr__(self) -> str:
        return f"LinearizedIntimacyTerm(n={self.gradient_matrix.shape[0]})"


class FusedSmoothObjective:
    """``‖S − A‖_F² − ⟨S, G⟩`` as a single smooth term.

    The CCCP inner problem's smooth part is the Frobenius surrogate minus
    the linearized intimacy term, whose combined gradient ``2(S − A) − G``
    is affine in ``S``.  Precomputing the constant ``C = 2A + G`` turns
    every inner iteration's gradient into one scale and one subtraction
    (``2S − C``) instead of two full-size temporaries plus an add — the
    fast path the workspace-backed solver uses.

    Parameters
    ----------
    target:
        The observed adjacency matrix ``A``.
    gradient_matrix:
        The constant intimacy gradient ``G`` (``None`` means ``G = 0``,
        i.e. a plain squared loss).
    """

    def __init__(
        self,
        target: np.ndarray,
        gradient_matrix: Optional[np.ndarray] = None,
    ):
        target = np.asarray(target, dtype=float)
        if not is_square(target):
            raise OptimizationError(
                f"target must be square, got shape {target.shape}"
            )
        self.target = target
        if gradient_matrix is None:
            self.gradient_matrix = None
            self._constant = 2.0 * target
        else:
            gradient_matrix = np.asarray(gradient_matrix, dtype=float)
            if gradient_matrix.shape != target.shape:
                raise OptimizationError(
                    f"gradient matrix {gradient_matrix.shape} must match "
                    f"target {target.shape}"
                )
            self.gradient_matrix = gradient_matrix
            self._constant = 2.0 * target + gradient_matrix

    def value(self, matrix: np.ndarray) -> float:
        """``‖S − A‖_F² − ⟨S, G⟩``."""
        value = float(np.sum((matrix - self.target) ** 2))
        if self.gradient_matrix is not None:
            value -= float(np.sum(matrix * self.gradient_matrix))
        return value

    def gradient(
        self, matrix: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Gradient ``2S − (2A + G)``, written into ``out`` when provided."""
        if out is None:
            return 2.0 * matrix - self._constant
        np.multiply(matrix, 2.0, out=out)
        out -= self._constant
        return out

    @property
    def lipschitz(self) -> float:
        """Lipschitz constant of the gradient (2, as for the plain loss)."""
        return 2.0

    def __repr__(self) -> str:
        fused = self.gradient_matrix is not None
        return (
            f"FusedSmoothObjective(n={self.target.shape[0]}, "
            f"intimacy={fused})"
        )


class FactoredSmoothObjective:
    """``‖S − A‖_F² − ⟨S, G⟩`` evaluated entirely on factors.

    The factored counterpart of :class:`FusedSmoothObjective` for iterates
    represented as :class:`~repro.factored.estimate.FactoredEstimate`
    (``S = L + R`` with sparse ``R``).  The adjacency ``A`` is sparse and
    the intimacy gradient ``G`` is itself factored (low-rank + sparse),
    so the gradient ``2S − 2A − G`` is again exactly representable in
    factored form — its low-rank block concatenates ``2L`` with
    ``−G_low`` and its sparse block is plain CSR arithmetic.  Values use
    Gram-matrix inner products; nothing here costs more than
    O(nk² + nnz·k).

    Parameters
    ----------
    adjacency:
        The observed adjacency ``A`` as a scipy sparse matrix.
    intimacy:
        The constant intimacy gradient ``G`` as a
        :class:`~repro.factored.estimate.FactoredEstimate`, a scipy
        sparse matrix (treated as rank 0), or ``None`` for ``G = 0``
        (SLAMPRED-H).
    """

    def __init__(self, adjacency, intimacy=None):
        from scipy import sparse

        from repro.factored.estimate import FactoredEstimate

        adjacency = sparse.csr_matrix(adjacency, dtype=float)
        if adjacency.shape[0] != adjacency.shape[1]:
            raise OptimizationError(
                f"adjacency must be square, got shape {adjacency.shape}"
            )
        self.adjacency = adjacency
        if intimacy is None:
            self.intimacy = None
        elif sparse.issparse(intimacy):
            self.intimacy = FactoredEstimate.from_sparse(intimacy)
        else:
            self.intimacy = intimacy
        if self.intimacy is not None and (
            self.intimacy.shape != adjacency.shape
        ):
            raise OptimizationError(
                f"intimacy gradient {self.intimacy.shape} must match "
                f"adjacency {adjacency.shape}"
            )
        # The gradient's constant sparse block, ``2A + G_sparse`` — the
        # factored analogue of FusedSmoothObjective's precomputed constant.
        constant = (2.0 * adjacency).tocsr()
        if self.intimacy is not None and self.intimacy.residual.nnz:
            constant = (constant + self.intimacy.residual).tocsr()
        self._constant_sparse = constant
        self._adjacency_sq = float(np.sum(adjacency.data**2))

    @staticmethod
    def _inner_sparse(estimate, matrix) -> float:
        """``⟨estimate, M⟩`` for sparse ``M`` (O(nnz·k))."""
        value = estimate.lowrank_inner_sparse(matrix)
        if estimate.residual.nnz and matrix.nnz:
            value += float(estimate.residual.multiply(matrix).sum())
        return value

    def value(self, estimate) -> float:
        """``‖S − A‖_F² − ⟨S, G⟩`` at a factored iterate ``S``."""
        value = (
            estimate.frobenius_sq()
            - 2.0 * self._inner_sparse(estimate, self.adjacency)
            + self._adjacency_sq
        )
        if self.intimacy is not None:
            g = self.intimacy
            value -= estimate.lowrank_inner(g)
            value -= self._inner_sparse(estimate, g.residual)
            value -= g.lowrank_inner_sparse(estimate.residual)
        return float(value)

    def gradient(self, estimate):
        """``2S − (2A + G)`` as a factored estimate (factors shared)."""
        from repro.factored.estimate import FactoredEstimate

        if self.intimacy is None or self.intimacy.rank == 0:
            u, s, vt = estimate.u, 2.0 * estimate.s, estimate.vt
        else:
            g = self.intimacy
            u = np.hstack([estimate.u, g.u])
            s = np.concatenate([2.0 * estimate.s, -g.s])
            vt = np.vstack([estimate.vt, g.vt])
        residual = (2.0 * estimate.residual - self._constant_sparse).tocsr()
        return FactoredEstimate(u, s, vt, residual)

    def gradient_step(self, estimate, step: float):
        """``S − step·∇f(S)`` in one factored combine (the forward step).

        Algebraically ``(1 − 2·step)·S + step·(2A + G)``: the low-rank
        block rescales ``L``'s weights and appends ``step·G_low``; the
        sparse block is one CSR linear combination.  Equivalent to
        ``estimate − step · gradient(estimate)`` but without doubling the
        stored rank with redundant copies of ``L``'s own factors.
        """
        step = float(step)
        shrink = 1.0 - 2.0 * step
        if self.intimacy is None or self.intimacy.rank == 0:
            u, s, vt = estimate.u, shrink * estimate.s, estimate.vt
        else:
            g = self.intimacy
            u = np.hstack([estimate.u, g.u])
            s = np.concatenate([shrink * estimate.s, step * g.s])
            vt = np.vstack([estimate.vt, g.vt])
        residual = (
            shrink * estimate.residual + step * self._constant_sparse
        ).tocsr()
        from repro.factored.estimate import FactoredEstimate

        return FactoredEstimate(u, s, vt, residual)

    @property
    def lipschitz(self) -> float:
        """Lipschitz constant of the gradient (2, as for the dense loss)."""
        return 2.0

    @property
    def constant_sparse(self):
        """The gradient's constant CSR block ``2A + G_sparse``.

        The factored forward-backward solver derives the fixed residual
        support Ω from this pattern: every entry the forward step can
        inject into the sparse block lives here.
        """
        return self._constant_sparse

    def __repr__(self) -> str:
        fused = self.intimacy is not None
        return (
            f"FactoredSmoothObjective(n={self.adjacency.shape[0]}, "
            f"intimacy={fused})"
        )


def empirical_link_loss(
    predictor: np.ndarray,
    adjacency: np.ndarray,
    links: Iterable[Tuple[int, int]],
) -> float:
    """The paper's original 0/1 loss over the existing links.

    ``l(S, A) = (1/|E|) Σ_{(i,j)∈E} 1[(A_ij − 1/2) · S_ij ≤ 0]`` — the
    fraction of existing links the predictor fails to score positively.
    Reported for diagnostics; optimization uses the Frobenius surrogate.
    """
    links = list(links)
    if not links:
        return 0.0
    predictor = np.asarray(predictor, dtype=float)
    adjacency = np.asarray(adjacency, dtype=float)
    misses = 0
    for i, j in links:
        if (adjacency[i, j] - 0.5) * predictor[i, j] <= 0:
            misses += 1
    return misses / len(links)


def intimacy_score(predictor: np.ndarray, feature_values: np.ndarray) -> float:
    """The paper's intimacy term ``int(S, X) = Σ_k ‖S ∘ X(k,:,:)‖₁``.

    ``feature_values`` is the raw ``(d, n, n)`` array of a feature tensor.
    """
    predictor = np.asarray(predictor, dtype=float)
    feature_values = np.asarray(feature_values, dtype=float)
    if feature_values.ndim != 3:
        raise OptimizationError(
            f"feature values must be (d, n, n), got {feature_values.shape}"
        )
    return float(np.abs(predictor[None, :, :] * feature_values).sum())
