"""The proximal-operator-based CCCP solver (paper's Algorithm 1).

The objective decomposes as ``u(S) − v(S)`` with::

    u(S) = l(S, A) + γ‖S‖₁ + τ‖S‖*          (convex)
    v(S) = Σ_k α_k · int(S, X̂^k)             (convex, so −v is concave)

Each CCCP round replaces ``v`` by its linearization at the current iterate
and solves ``min_S u(S) − ⟨S, ∇v⟩`` with a forward-backward splitting solver.
Because the adapted feature slices are non-negative and ``S`` is confined to
the unit box, ``∇v = Σ_k α_k Σ_c X̂^k(c, :, :)`` is the constant matrix the
paper derives, so the linearization is exact; the outer loop still iterates
(with a bounded inner budget per round) exactly as Algorithm 1 prescribes,
and the per-round history reproduces the Figure 3 convergence curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import OptimizationError
from repro.observability.tracer import Tracer, is_tracing
from repro.optim.convergence import ConvergenceCriterion, IterationHistory
from repro.optim.forward_backward import ForwardBackwardSolver
from repro.optim.losses import (
    FusedSmoothObjective,
    LinearizedIntimacyTerm,
    SquaredFrobeniusLoss,
)
from repro.utils.matrices import is_square


def _as_dense_gradient(intimacy_gradient):
    """Normalize the constant ``∇v`` to a dense array or ``None``.

    Scipy sparse inputs are accepted (the degenerate linkless calibration
    returns an empty CSR instead of a dense zero matrix): an all-zero
    sparse gradient is mathematically "no transfer", so it maps to
    ``None`` without ever allocating n² zeros; a non-trivial sparse
    gradient is densified, since this dense-path solver consumes it
    entry-wise anyway.  ``np.asarray`` alone would wrap a sparse matrix
    in a 0-d object array and fail much later, inside the solve.
    """
    if intimacy_gradient is None:
        return None
    try:
        from scipy import sparse
    except ImportError:  # pragma: no cover - scipy ships with the repo
        sparse = None
    if sparse is not None and sparse.issparse(intimacy_gradient):
        if intimacy_gradient.nnz == 0:
            return None
        return np.asarray(intimacy_gradient.todense(), dtype=float)
    return np.asarray(intimacy_gradient, dtype=float)


@dataclass
class CCCPResult:
    """Outcome of a CCCP run.

    Attributes
    ----------
    solution:
        The final predictor matrix ``S``.
    history:
        Flat per-inner-iteration diagnostics across all rounds (this is what
        Figure 3 plots).
    round_norms:
        ``‖S‖₁`` at the end of each CCCP round.
    n_rounds:
        Number of outer rounds executed.
    converged:
        Whether the outer loop hit its tolerance before ``max_iterations``.
    """

    solution: np.ndarray
    history: IterationHistory
    round_norms: Sequence[float]
    n_rounds: int
    converged: bool
    resumed_from: Optional[int] = None
    """Round index of the checkpoint this run resumed from (``None`` for a
    fresh run)."""


class CCCPSolver:
    """Iterative CCCP with a proximal inner solver.

    Parameters
    ----------
    loss:
        Smooth convex loss (``value``/``gradient``), e.g.
        :class:`~repro.optim.losses.SquaredFrobeniusLoss`.
    prox_terms:
        Non-smooth convex terms handled by proximal maps (ℓ1, trace norm,
        box projection).
    intimacy_gradient:
        The constant matrix ``∇v`` (``None`` or zeros disables transfer, as
        in SLAMPRED-H).
    inner_solver:
        Forward-backward solver used each round; its criterion bounds the
        per-round inner budget.
    outer_criterion:
        Stopping rule on the outer sequence ``S_cccp``.
    fuse_smooth:
        When the loss is the plain :class:`SquaredFrobeniusLoss`, combine
        it with the linearized intimacy term into one
        :class:`~repro.optim.losses.FusedSmoothObjective` whose constant
        ``2A + G`` is precomputed once per CCCP solve — one gradient
        evaluation per inner iteration instead of two.  The fused
        gradient ``2S − (2A + G)`` differs from the sequential
        accumulation ``(2S − 2A) + (−G)`` only in float association, so
        this is off on the bit-exact path.
    """

    def __init__(
        self,
        loss,
        prox_terms: Sequence,
        intimacy_gradient: Optional[np.ndarray] = None,
        inner_solver: Optional[ForwardBackwardSolver] = None,
        outer_criterion: Optional[ConvergenceCriterion] = None,
        fuse_smooth: bool = False,
    ):
        self.loss = loss
        self.prox_terms = list(prox_terms)
        self.fuse_smooth = bool(fuse_smooth)
        self.intimacy_gradient = _as_dense_gradient(intimacy_gradient)
        self.inner_solver = inner_solver or ForwardBackwardSolver(
            step_size=1e-3,
            criterion=ConvergenceCriterion(tolerance=1e-5, max_iterations=30),
        )
        self.outer_criterion = outer_criterion or ConvergenceCriterion(
            tolerance=1e-4, max_iterations=50
        )

    def solve(
        self,
        initial: np.ndarray,
        tracer: Optional[Tracer] = None,
        checkpoint=None,
    ) -> CCCPResult:
        """Run Algorithm 1 from ``initial`` (the paper initializes at ``A``).

        Under a live ``tracer`` every outer round becomes a ``cccp_round``
        span enclosing the inner solver's gradient/prox spans, and each
        inner iteration record is stamped with its 1-based round index.

        With a :class:`~repro.reliability.CheckpointManager` as
        ``checkpoint``, the iterate is snapshotted after each outer round
        (on the manager's cadence) and — because every CCCP round is a
        pure function of the incoming iterate — a run that finds an
        existing checkpoint resumes from it and reproduces the
        uninterrupted trajectory exactly.
        """
        current = np.asarray(initial, dtype=float)
        if not is_square(current):
            raise OptimizationError(
                f"initial matrix must be square, got shape {current.shape}"
            )
        current = current.copy()
        resumed_from = None
        resumed_norms: list = []
        start_round = 0
        if checkpoint is not None:
            saved = checkpoint.latest()
            if saved is not None:
                if saved.solution.shape != current.shape:
                    raise OptimizationError(
                        f"checkpointed iterate {saved.solution.shape} does "
                        f"not match the problem shape {current.shape}; "
                        "point checkpoint_dir at a fresh directory"
                    )
                current = saved.solution.copy()
                resumed_norms = list(saved.round_norms)
                start_round = resumed_from = saved.round_index
                if is_tracing(tracer):
                    tracer.count("cccp.resumes")
        if self.intimacy_gradient is not None and (
            self.intimacy_gradient.shape != current.shape
        ):
            raise OptimizationError(
                f"intimacy gradient shape {self.intimacy_gradient.shape} "
                f"does not match variable shape {current.shape}"
            )
        if self.fuse_smooth and isinstance(self.loss, SquaredFrobeniusLoss):
            smooth_terms = [
                FusedSmoothObjective(self.loss.target, self.intimacy_gradient)
            ]
        else:
            smooth_terms = [self.loss]
            if self.intimacy_gradient is not None:
                smooth_terms.append(
                    LinearizedIntimacyTerm(self.intimacy_gradient)
                )
        history = IterationHistory()
        round_norms = resumed_norms
        converged = False
        n_rounds = start_round
        tracing = is_tracing(tracer)
        for _ in range(self.outer_criterion.max_iterations - start_round):
            n_rounds += 1
            previous = current
            if tracing:
                iterations_before = history.n_iterations
                with tracer.span("cccp_round"):
                    current = self.inner_solver.solve(
                        previous,
                        smooth_terms,
                        self.prox_terms,
                        history=history,
                        tracer=tracer,
                    )
                tracer.count("cccp.rounds")
                for record in history.records[iterations_before:]:
                    record.round = n_rounds
            else:
                current = self.inner_solver.solve(
                    previous, smooth_terms, self.prox_terms, history=history
                )
            round_norms.append(float(np.abs(current).sum()))
            if checkpoint is not None and checkpoint.should_save(n_rounds):
                checkpoint.save(n_rounds, current, round_norms)
                if tracing:
                    tracer.count("cccp.checkpoints")
            if self.outer_criterion.satisfied(current, previous):
                converged = True
                break
        return CCCPResult(
            solution=current,
            history=history,
            round_norms=round_norms,
            n_rounds=n_rounds,
            converged=converged,
            resumed_from=resumed_from,
        )
