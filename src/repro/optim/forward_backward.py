"""Forward-backward splitting solvers.

Two solvers for ``min_S f(S) + Σ_i g_i(S)`` with smooth ``f`` and prox-able
``g_i``:

* :class:`ForwardBackwardSolver` — the scheme of the paper's Algorithm 1:
  one gradient step on ``f`` followed by sequentially applying each ``g_i``'s
  prox.  Exact when the proxes commute; with a small step (the paper uses
  θ = 0.001) the composition error is negligible, and this is what the paper
  runs.
* :class:`GeneralizedForwardBackward` — the method of Raguet, Fadili & Peyré
  (2013) that handles q ≥ 2 non-smooth terms *exactly* by maintaining one
  auxiliary variable per term.  Used by the ablation benchmark to check the
  paper's sequential approximation costs nothing on this problem.

Both accept a list of smooth terms (objects with ``value``/``gradient``) and
a list of prox terms (objects with ``value``/``apply``).

Both also accept an optional ``tracer``
(:class:`~repro.observability.tracer.Tracer`).  Under a live tracer every
iteration is wrapped in timed spans (gradient step, each prox apply), the
objective is evaluated *per term* and the resulting breakdown, step size,
retained SVD rank and phase wall-clock are written onto the
:class:`~repro.observability.records.IterationRecord` shared with
``history``.  With ``tracer=None`` (or a null tracer) none of that runs and
the iterate sequence is bit-identical to the uninstrumented solver.
"""

from __future__ import annotations

import inspect
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import OptimizationError
from repro.observability.records import IterationRecord
from repro.observability.tracer import Tracer, is_tracing
from repro.optim.convergence import ConvergenceCriterion, IterationHistory
from repro.perf.workspace import FactoredWorkspace, Workspace
from repro.utils.validation import check_positive


_DIVERGENCE_LIMIT = 1e12


def _diverged(matrix: np.ndarray) -> bool:
    """Whether an iterate left the numerically trustworthy region."""
    return (
        not np.all(np.isfinite(matrix))
        or np.abs(matrix).max() > _DIVERGENCE_LIMIT
    )


def _diverged_factored(estimate) -> bool:
    """Divergence check on factors: non-finite or huge weights/residual."""
    s = estimate.s
    if s.size and (
        not np.all(np.isfinite(s)) or float(s.max()) > _DIVERGENCE_LIMIT
    ):
        return True
    data = estimate.residual.data
    return data.size > 0 and (
        not np.all(np.isfinite(data))
        or float(np.abs(data).max()) > _DIVERGENCE_LIMIT
    )


def _check_finite(matrix: np.ndarray, step_size: float) -> None:
    """Fail fast when the iteration diverges (step size too large)."""
    if _diverged(matrix):
        raise OptimizationError(
            f"iteration diverged (entries exceed {_DIVERGENCE_LIMIT:.0e}); "
            f"reduce step_size (currently {step_size}) below 2/L of the "
            "smooth term"
        )


def _total_objective(matrix, smooth_terms, prox_terms) -> float:
    value = sum(term.value(matrix) for term in smooth_terms)
    value += sum(term.value(matrix) for term in prox_terms)
    return float(value)


_OUT_SUPPORT: Dict[type, bool] = {}


def _accepts_out(term) -> bool:
    """Whether a smooth term's ``gradient`` takes the ``out`` keyword."""
    kind = type(term)
    cached = _OUT_SUPPORT.get(kind)
    if cached is None:
        try:
            cached = "out" in inspect.signature(term.gradient).parameters
        except (TypeError, ValueError):
            cached = False
        _OUT_SUPPORT[kind] = cached
    return cached


def _total_gradient(
    matrix,
    smooth_terms,
    out: Optional[np.ndarray] = None,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Summed smooth-term gradient, accumulated into ``out`` when given.

    Without ``out`` this is the legacy allocating path (used by the traced
    solver branch, whose numerics stay pinned by the golden regression).
    With ``out`` the first term writes straight into the accumulator and
    later terms route through ``scratch``, so no full-size temporary is
    allocated.
    """
    if out is None:
        gradient = np.zeros_like(matrix)
        for term in smooth_terms:
            gradient += term.gradient(matrix)
        return gradient
    terms = list(smooth_terms)
    if not terms:
        out.fill(0.0)
        return out
    if _accepts_out(terms[0]):
        terms[0].gradient(matrix, out=out)
    else:
        np.copyto(out, terms[0].gradient(matrix))
    for term in terms[1:]:
        if scratch is not None and _accepts_out(term):
            out += term.gradient(matrix, out=scratch)
        else:
            out += term.gradient(matrix)
    return out


def _term_labels(terms: Sequence) -> List[str]:
    """Display names per term, index-suffixed when a class repeats."""
    names = [type(term).__name__ for term in terms]
    labels = []
    for index, name in enumerate(names):
        if names.count(name) > 1:
            labels.append(f"{name}[{index}]")
        else:
            labels.append(name)
    return labels


def _accepts_tracer(prox) -> bool:
    """Whether a prox term's ``apply`` takes the ``tracer`` keyword."""
    try:
        return "tracer" in inspect.signature(prox.apply).parameters
    except (TypeError, ValueError):
        return False


def _objective_breakdown(
    matrix, smooth_terms, prox_terms, smooth_labels, prox_labels
) -> Dict[str, float]:
    """Objective value per term, keyed by term label."""
    breakdown = {}
    for label, term in zip(smooth_labels, smooth_terms):
        breakdown[label] = float(term.value(matrix))
    for label, term in zip(prox_labels, prox_terms):
        breakdown[label] = float(term.value(matrix))
    return breakdown


def _enrich_record(
    record: IterationRecord,
    tracer: Tracer,
    step_size: float,
    breakdown: Dict[str, float],
    phase_seconds: Dict[str, float],
    svt_samples_before: int,
) -> None:
    """Copy one traced iteration's extras onto its shared record."""
    record.step_size = step_size
    record.objective_terms = breakdown
    record.phase_seconds = phase_seconds
    if len(tracer.metrics.get("svt.retained_rank", ())) > svt_samples_before:
        record.svd_rank = int(tracer.last_metric("svt.retained_rank"))
        record.svd_tail = tracer.last_metric("svt.tail_singular_value")
        record.svd_threshold = tracer.last_metric("svt.threshold")
    tracer.record_iteration(record)


class ForwardBackwardSolver:
    """Gradient step + sequential proximal steps (paper's Algorithm 1 inner loop).

    Parameters
    ----------
    step_size:
        Learning rate θ; the paper uses 0.001.
    criterion:
        Stopping rule for the proximal iteration.
    record_objective:
        Whether to evaluate the full objective each iteration (costs an SVD
        per trace-norm term; disable inside tight loops).  A live tracer
        implies it — and additionally breaks the objective out per term.
    max_step_halvings:
        Recovery budget when an iterate (or its objective) goes non-finite:
        the step size is halved and the iteration re-taken from the last
        good iterate, at most this many times, before the solver gives up
        with :class:`~repro.exceptions.OptimizationError`.  Zero restores
        the old fail-fast behaviour.
    """

    def __init__(
        self,
        step_size: float = 1e-3,
        criterion: ConvergenceCriterion = None,
        record_objective: bool = False,
        max_step_halvings: int = 3,
    ):
        self.step_size = check_positive(step_size, "step_size")
        self.criterion = criterion or ConvergenceCriterion()
        self.record_objective = record_objective
        if max_step_halvings < 0:
            raise OptimizationError(
                f"max_step_halvings must be >= 0, got {max_step_halvings}"
            )
        self.max_step_halvings = int(max_step_halvings)

    def solve(
        self,
        initial: np.ndarray,
        smooth_terms: Sequence,
        prox_terms: Sequence,
        history: Optional[IterationHistory] = None,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """Run the iteration from ``initial`` until convergence.

        Returns the final iterate; per-iteration diagnostics are appended to
        ``history`` when given, and to ``tracer`` when it is live.

        The untraced branch runs on a preallocated :class:`Workspace`
        (cached on the solver and reused across CCCP rounds): gradient
        accumulation, the gradient step and the entry-wise proxes all
        write into workspace buffers, so a steady-state iteration
        allocates nothing beyond what the SVT itself produces.  The
        iterate sequence is bit-identical to the legacy allocating loop.
        """
        if not smooth_terms and not prox_terms:
            raise OptimizationError("nothing to optimize: no terms given")
        current = np.asarray(initial, dtype=float).copy()
        if is_tracing(tracer):
            return self._solve_traced(
                current, smooth_terms, prox_terms, history, tracer
            )
        return self._solve_fast(current, smooth_terms, prox_terms, history)

    def _solve_fast(
        self,
        current: np.ndarray,
        smooth_terms: Sequence,
        prox_terms: Sequence,
        history: Optional[IterationHistory],
    ) -> np.ndarray:
        """Workspace-backed loop (no tracer): the allocation-free path."""
        ws = Workspace.ensure(getattr(self, "_workspace", None), current)
        self._workspace = ws
        inplace_proxes = [
            getattr(prox, "apply_inplace", None) for prox in prox_terms
        ]
        step = self.step_size
        halvings = 0
        for _ in range(self.criterion.max_iterations):
            previous = current
            gradient = _total_gradient(
                previous, smooth_terms, out=ws.gradient, scratch=ws.scratch
            )
            # previous + (-step)·g is bitwise previous − step·g, and lets
            # the scale land in the gradient buffer we own.
            np.multiply(gradient, -step, out=gradient)
            buffer = ws.step_buffer(avoid=previous)
            np.add(previous, gradient, out=buffer)
            current = buffer
            for prox, inplace in zip(prox_terms, inplace_proxes):
                if inplace is not None:
                    current = inplace(current, step, scratch=ws.scratch)
                else:
                    current = prox.apply(current, step)
            if _diverged(current):
                if halvings < self.max_step_halvings:
                    halvings += 1
                    step *= 0.5
                    current = previous
                    continue
                _check_finite(current, step)
            update_norm = ws.l1_update_norm(current, previous)
            if history is not None:
                objective = (
                    _total_objective(current, smooth_terms, prox_terms)
                    if self.record_objective
                    else None
                )
                history.record_norms(
                    ws.l1_norm(current), update_norm, objective
                )
            if self.criterion.satisfied_value(update_norm):
                break
        if ws.owns(current):
            current = current.copy()
        return current

    def _solve_traced(
        self,
        current: np.ndarray,
        smooth_terms: Sequence,
        prox_terms: Sequence,
        history: Optional[IterationHistory],
        tracer: Tracer,
    ) -> np.ndarray:
        """Instrumented loop — numerics pinned by the golden regression."""
        smooth_labels = _term_labels(smooth_terms)
        prox_labels = _term_labels(prox_terms)
        prox_takes_tracer = [_accepts_tracer(p) for p in prox_terms]
        step = self.step_size
        halvings = 0

        def _recover() -> bool:
            """Halve the step after a non-finite iterate; False = give up."""
            nonlocal step, halvings
            if halvings >= self.max_step_halvings:
                return False
            halvings += 1
            step *= 0.5
            tracer.count("fb.step_halvings")
            return True

        for _ in range(self.criterion.max_iterations):
            previous = current
            phase_seconds: Dict[str, float] = {}
            svt_before = len(tracer.metrics.get("svt.retained_rank", ()))
            with tracer.span("gradient") as span:
                gradient = _total_gradient(previous, smooth_terms)
            phase_seconds["gradient"] = span.duration
            current = previous - step * gradient
            for i, prox in enumerate(prox_terms):
                label = f"prox:{prox_labels[i]}"
                with tracer.span(label) as span:
                    if prox_takes_tracer[i]:
                        current = prox.apply(
                            current, step, tracer=tracer
                        )
                    else:
                        current = prox.apply(current, step)
                phase_seconds[label] = span.duration
            if _diverged(current):
                if _recover():
                    current = previous
                    continue
                _check_finite(current, step)
            tracer.count("fb.iterations")
            breakdown = _objective_breakdown(
                current, smooth_terms, prox_terms,
                smooth_labels, prox_labels,
            )
            objective = float(sum(breakdown.values()))
            if not np.isfinite(objective):
                # The iterate is representable but the objective
                # overflowed — same remedy as a diverged iterate.
                if _recover():
                    current = previous
                    continue
                raise OptimizationError(
                    f"objective became non-finite ({objective}); "
                    f"reduce step_size (currently {step}) below 2/L "
                    "of the smooth term"
                )
            record = (history or IterationHistory()).record(
                current, previous, objective
            )
            _enrich_record(
                record, tracer, step, breakdown,
                phase_seconds, svt_before,
            )
            if self.criterion.satisfied(current, previous):
                break
        return current


class FactoredForwardBackwardSolver:
    """Forward-backward splitting on a factored iterate ``S = L + R``.

    Runs the same iteration as :class:`ForwardBackwardSolver` — gradient
    step, singular-value thresholding, entry-wise proxes — but the iterate
    is a :class:`~repro.factored.estimate.FactoredEstimate` and no n×n
    array is ever formed (DESIGN.md §13):

    * the forward step is :meth:`FactoredSmoothObjective.gradient_step`
      (a factor concatenation plus one CSR combination, O(nnz + nk)),
    * the trace-norm prox is the exact SVT of the *full* iterate, applied
      through matvecs (``TraceNormProx.apply_factored``), producing a pure
      low-rank ``L'``,
    * the entry-wise proxes (ℓ1 shrinkage, box projection) act on the
      fixed sparse support Ω — the union of ``2A + G_sparse``'s pattern
      and the initial residual's — via their ``apply_values`` hooks; the
      new residual stores the correction ``prox(v) − v`` on Ω.

    Off-support entries therefore see the SVT but skip the entry-wise
    proxes, whose effect there is a uniform monotone shrink-and-clip —
    ranking-based metrics (AUC, top-k) over off-support pairs are
    unaffected up to the tolerance the parity suite pins down.

    Convergence bookkeeping uses Frobenius-norm surrogates computed from
    Gram matrices (``‖S_t − S_{t−1}‖_F``), a lower bound on the entrywise
    ℓ1 norm the dense solver tracks; iteration budgets are shared with the
    dense configuration.
    """

    def __init__(
        self,
        step_size: float = 1e-3,
        criterion: ConvergenceCriterion = None,
        max_step_halvings: int = 3,
    ):
        self.step_size = check_positive(step_size, "step_size")
        self.criterion = criterion or ConvergenceCriterion()
        if max_step_halvings < 0:
            raise OptimizationError(
                f"max_step_halvings must be >= 0, got {max_step_halvings}"
            )
        self.max_step_halvings = int(max_step_halvings)

    @staticmethod
    def _split_proxes(prox_terms: Sequence):
        """Partition prox terms into the one SVT and the entry-wise rest."""
        trace_proxes = [
            p for p in prox_terms if hasattr(p, "apply_factored")
        ]
        entry_proxes = [
            p for p in prox_terms if not hasattr(p, "apply_factored")
        ]
        if len(trace_proxes) != 1:
            raise OptimizationError(
                "factored solve needs exactly one trace-norm prox "
                f"(apply_factored), got {len(trace_proxes)}"
            )
        missing = [
            type(p).__name__
            for p in entry_proxes
            if not hasattr(p, "apply_values")
        ]
        if missing:
            raise OptimizationError(
                "entry-wise prox terms must expose apply_values for the "
                f"factored path; missing on {missing}"
            )
        return trace_proxes[0], entry_proxes

    def solve(
        self,
        initial,
        objective,
        prox_terms: Sequence,
        history: Optional[IterationHistory] = None,
        tracer: Optional[Tracer] = None,
    ):
        """Run the factored iteration from ``initial`` until convergence.

        Parameters
        ----------
        initial:
            Starting :class:`~repro.factored.estimate.FactoredEstimate`.
        objective:
            A :class:`~repro.optim.losses.FactoredSmoothObjective` (or
            anything with ``gradient_step`` and ``constant_sparse``).
        prox_terms:
            Exactly one term with ``apply_factored`` (the SVT) plus any
            number with ``apply_values`` (entry-wise), in apply order.
        """
        trace_prox, entry_proxes = self._split_proxes(prox_terms)
        constant = objective.constant_sparse
        pattern = abs(constant)
        if initial.residual.nnz:
            pattern = pattern + abs(initial.residual)
        ws = FactoredWorkspace.ensure(
            getattr(self, "_workspace", None), pattern
        )
        self._workspace = ws
        tracing = is_tracing(tracer)
        current = initial
        step = self.step_size
        halvings = 0
        for _ in range(self.criterion.max_iterations):
            previous = current
            forwarded = objective.gradient_step(previous, step)
            if tracing:
                with tracer.span("prox:TraceNormProx"):
                    lowrank = trace_prox.apply_factored(
                        forwarded, step, tracer=tracer
                    )
            else:
                lowrank = trace_prox.apply_factored(forwarded, step)
            values = ws.lowrank_entries(lowrank)
            proxed = values
            for prox in entry_proxes:
                proxed = prox.apply_values(proxed, step)
            correction = np.subtract(proxed, values)
            current = lowrank.with_residual(ws.residual_from(correction))
            if _diverged_factored(current):
                if halvings < self.max_step_halvings:
                    halvings += 1
                    step *= 0.5
                    if tracing:
                        tracer.count("fb.step_halvings")
                    current = previous
                    continue
                raise OptimizationError(
                    "factored iteration diverged (factor weights exceed "
                    f"{_DIVERGENCE_LIMIT:.0e}); reduce step_size "
                    f"(currently {step}) below 2/L of the smooth term"
                )
            update_norm = current.delta_frobenius(previous)
            if tracing:
                tracer.count("fb.iterations")
            if history is not None:
                history.record_norms(
                    float(np.sqrt(current.frobenius_sq())),
                    update_norm,
                    None,
                )
            if self.criterion.satisfied_value(update_norm):
                break
        return current


class GeneralizedForwardBackward:
    """Raguet et al. (2013) generalized forward-backward splitting.

    Maintains auxiliaries ``z_i`` (one per non-smooth term) and iterates::

        z_i ← z_i + prox_{(θ/ω_i) g_i}(2x − z_i − θ∇f(x)) − x
        x   ← Σ_i ω_i z_i

    with uniform weights ``ω_i = 1/q``.  Converges for ``θ < 2/L`` where L is
    the Lipschitz constant of ``∇f``.

    Like :class:`ForwardBackwardSolver`, a non-finite iterate triggers a
    step-halving retry from the last good iterate (and auxiliaries), at
    most ``max_step_halvings`` times, before the solver raises
    :class:`~repro.exceptions.OptimizationError`.
    """

    def __init__(
        self,
        step_size: float = 1e-3,
        criterion: ConvergenceCriterion = None,
        record_objective: bool = False,
        max_step_halvings: int = 3,
    ):
        self.step_size = check_positive(step_size, "step_size")
        self.criterion = criterion or ConvergenceCriterion()
        self.record_objective = record_objective
        if max_step_halvings < 0:
            raise OptimizationError(
                f"max_step_halvings must be >= 0, got {max_step_halvings}"
            )
        self.max_step_halvings = int(max_step_halvings)

    def solve(
        self,
        initial: np.ndarray,
        smooth_terms: Sequence,
        prox_terms: Sequence,
        history: Optional[IterationHistory] = None,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """Run the iteration from ``initial`` until convergence."""
        if not prox_terms:
            raise OptimizationError(
                "GeneralizedForwardBackward needs at least one prox term"
            )
        tracing = is_tracing(tracer)
        if tracing:
            smooth_labels = _term_labels(smooth_terms)
            prox_labels = _term_labels(prox_terms)
            prox_takes_tracer = [_accepts_tracer(p) for p in prox_terms]
        q = len(prox_terms)
        weight = 1.0 / q
        current = np.asarray(initial, dtype=float).copy()
        auxiliaries: List[np.ndarray] = [current.copy() for _ in range(q)]
        step = self.step_size
        halvings = 0
        for _ in range(self.criterion.max_iterations):
            previous = current
            # Auxiliary updates rebind (never mutate), so a shallow list
            # copy is enough to restore them after a step-halving retry.
            old_auxiliaries = list(auxiliaries)
            phase_seconds: Dict[str, float] = {}
            if tracing:
                svt_before = len(tracer.metrics.get("svt.retained_rank", ()))
                with tracer.span("gradient") as span:
                    gradient = _total_gradient(previous, smooth_terms)
                phase_seconds["gradient"] = span.duration
            else:
                gradient = _total_gradient(previous, smooth_terms)
            for i, prox in enumerate(prox_terms):
                argument = 2.0 * previous - auxiliaries[i] - step * gradient
                if tracing:
                    label = f"prox:{prox_labels[i]}"
                    with tracer.span(label) as span:
                        if prox_takes_tracer[i]:
                            stepped = prox.apply(
                                argument, step / weight,
                                tracer=tracer,
                            )
                        else:
                            stepped = prox.apply(
                                argument, step / weight
                            )
                    phase_seconds[label] = span.duration
                else:
                    stepped = prox.apply(argument, step / weight)
                auxiliaries[i] = auxiliaries[i] + stepped - previous
            current = weight * np.sum(auxiliaries, axis=0)
            if _diverged(current):
                if halvings < self.max_step_halvings:
                    halvings += 1
                    step *= 0.5
                    if tracing:
                        tracer.count("gfb.step_halvings")
                    auxiliaries = old_auxiliaries
                    current = previous
                    continue
                _check_finite(current, step)
            if tracing:
                tracer.count("gfb.iterations")
                breakdown = _objective_breakdown(
                    current, smooth_terms, prox_terms,
                    smooth_labels, prox_labels,
                )
                objective = float(sum(breakdown.values()))
                record = (history or IterationHistory()).record(
                    current, previous, objective
                )
                _enrich_record(
                    record, tracer, step, breakdown,
                    phase_seconds, svt_before,
                )
            elif history is not None:
                objective = (
                    _total_objective(current, smooth_terms, prox_terms)
                    if self.record_objective
                    else None
                )
                history.record(current, previous, objective)
            if self.criterion.satisfied(current, previous):
                break
        return current
