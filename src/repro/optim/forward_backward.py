"""Forward-backward splitting solvers.

Two solvers for ``min_S f(S) + Σ_i g_i(S)`` with smooth ``f`` and prox-able
``g_i``:

* :class:`ForwardBackwardSolver` — the scheme of the paper's Algorithm 1:
  one gradient step on ``f`` followed by sequentially applying each ``g_i``'s
  prox.  Exact when the proxes commute; with a small step (the paper uses
  θ = 0.001) the composition error is negligible, and this is what the paper
  runs.
* :class:`GeneralizedForwardBackward` — the method of Raguet, Fadili & Peyré
  (2013) that handles q ≥ 2 non-smooth terms *exactly* by maintaining one
  auxiliary variable per term.  Used by the ablation benchmark to check the
  paper's sequential approximation costs nothing on this problem.

Both accept a list of smooth terms (objects with ``value``/``gradient``) and
a list of prox terms (objects with ``value``/``apply``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import OptimizationError
from repro.optim.convergence import ConvergenceCriterion, IterationHistory
from repro.utils.validation import check_positive


_DIVERGENCE_LIMIT = 1e12


def _check_finite(matrix: np.ndarray, step_size: float) -> None:
    """Fail fast when the iteration diverges (step size too large)."""
    if not np.all(np.isfinite(matrix)) or np.abs(matrix).max() > _DIVERGENCE_LIMIT:
        raise OptimizationError(
            f"iteration diverged (entries exceed {_DIVERGENCE_LIMIT:.0e}); "
            f"reduce step_size (currently {step_size}) below 2/L of the "
            "smooth term"
        )


def _total_objective(matrix, smooth_terms, prox_terms) -> float:
    value = sum(term.value(matrix) for term in smooth_terms)
    value += sum(term.value(matrix) for term in prox_terms)
    return float(value)


def _total_gradient(matrix, smooth_terms) -> np.ndarray:
    gradient = np.zeros_like(matrix)
    for term in smooth_terms:
        gradient += term.gradient(matrix)
    return gradient


class ForwardBackwardSolver:
    """Gradient step + sequential proximal steps (paper's Algorithm 1 inner loop).

    Parameters
    ----------
    step_size:
        Learning rate θ; the paper uses 0.001.
    criterion:
        Stopping rule for the proximal iteration.
    record_objective:
        Whether to evaluate the full objective each iteration (costs an SVD
        per trace-norm term; disable inside tight loops).
    """

    def __init__(
        self,
        step_size: float = 1e-3,
        criterion: ConvergenceCriterion = None,
        record_objective: bool = False,
    ):
        self.step_size = check_positive(step_size, "step_size")
        self.criterion = criterion or ConvergenceCriterion()
        self.record_objective = record_objective

    def solve(
        self,
        initial: np.ndarray,
        smooth_terms: Sequence,
        prox_terms: Sequence,
        history: Optional[IterationHistory] = None,
    ) -> np.ndarray:
        """Run the iteration from ``initial`` until convergence.

        Returns the final iterate; per-iteration diagnostics are appended to
        ``history`` when given.
        """
        if not smooth_terms and not prox_terms:
            raise OptimizationError("nothing to optimize: no terms given")
        current = np.asarray(initial, dtype=float).copy()
        for _ in range(self.criterion.max_iterations):
            previous = current
            current = previous - self.step_size * _total_gradient(
                previous, smooth_terms
            )
            for prox in prox_terms:
                current = prox.apply(current, self.step_size)
            _check_finite(current, self.step_size)
            if history is not None:
                objective = (
                    _total_objective(current, smooth_terms, prox_terms)
                    if self.record_objective
                    else None
                )
                history.record(current, previous, objective)
            if self.criterion.satisfied(current, previous):
                break
        return current


class GeneralizedForwardBackward:
    """Raguet et al. (2013) generalized forward-backward splitting.

    Maintains auxiliaries ``z_i`` (one per non-smooth term) and iterates::

        z_i ← z_i + prox_{(θ/ω_i) g_i}(2x − z_i − θ∇f(x)) − x
        x   ← Σ_i ω_i z_i

    with uniform weights ``ω_i = 1/q``.  Converges for ``θ < 2/L`` where L is
    the Lipschitz constant of ``∇f``.
    """

    def __init__(
        self,
        step_size: float = 1e-3,
        criterion: ConvergenceCriterion = None,
        record_objective: bool = False,
    ):
        self.step_size = check_positive(step_size, "step_size")
        self.criterion = criterion or ConvergenceCriterion()
        self.record_objective = record_objective

    def solve(
        self,
        initial: np.ndarray,
        smooth_terms: Sequence,
        prox_terms: Sequence,
        history: Optional[IterationHistory] = None,
    ) -> np.ndarray:
        """Run the iteration from ``initial`` until convergence."""
        if not prox_terms:
            raise OptimizationError(
                "GeneralizedForwardBackward needs at least one prox term"
            )
        q = len(prox_terms)
        weight = 1.0 / q
        current = np.asarray(initial, dtype=float).copy()
        auxiliaries: List[np.ndarray] = [current.copy() for _ in range(q)]
        for _ in range(self.criterion.max_iterations):
            previous = current
            gradient = _total_gradient(previous, smooth_terms)
            for i, prox in enumerate(prox_terms):
                argument = 2.0 * previous - auxiliaries[i] - self.step_size * gradient
                auxiliaries[i] = auxiliaries[i] + prox.apply(
                    argument, self.step_size / weight
                ) - previous
            current = weight * np.sum(auxiliaries, axis=0)
            _check_finite(current, self.step_size)
            if history is not None:
                objective = (
                    _total_objective(current, smooth_terms, prox_terms)
                    if self.record_objective
                    else None
                )
                history.record(current, previous, objective)
            if self.criterion.satisfied(current, previous):
                break
        return current
