"""Optimization substrate: proximal operators, splitting solvers, CCCP.

The paper's objective is a difference of convex functions with two
non-differentiable regularizers::

    min_{S ∈ S}  l(S, A) − Σ_k α_k·int(S, X̂^k) + γ‖S‖₁ + τ‖S‖�*

Solved by the concave-convex procedure (:mod:`repro.optim.cccp`): each outer
round linearizes the concave part and hands the resulting convex problem to a
forward-backward splitting solver (:mod:`repro.optim.forward_backward`) that
alternates a gradient step with the trace-norm and ℓ1 proximal operators
(:mod:`repro.optim.proximal`).
"""

from repro.optim.proximal import (
    soft_threshold,
    soft_threshold_inplace,
    singular_value_threshold,
    truncated_singular_value_threshold,
    L1Prox,
    TraceNormProx,
    BoxProjection,
)
from repro.optim.losses import (
    SquaredFrobeniusLoss,
    MaskedSquaredLoss,
    LinearizedIntimacyTerm,
    FusedSmoothObjective,
    empirical_link_loss,
    intimacy_score,
)
from repro.optim.convergence import ConvergenceCriterion, IterationHistory
from repro.optim.forward_backward import (
    ForwardBackwardSolver,
    GeneralizedForwardBackward,
)
from repro.optim.cccp import CCCPSolver, CCCPResult

__all__ = [
    "soft_threshold",
    "soft_threshold_inplace",
    "singular_value_threshold",
    "truncated_singular_value_threshold",
    "L1Prox",
    "TraceNormProx",
    "BoxProjection",
    "SquaredFrobeniusLoss",
    "MaskedSquaredLoss",
    "LinearizedIntimacyTerm",
    "FusedSmoothObjective",
    "empirical_link_loss",
    "intimacy_score",
    "ConvergenceCriterion",
    "IterationHistory",
    "ForwardBackwardSolver",
    "GeneralizedForwardBackward",
    "CCCPSolver",
    "CCCPResult",
]
