"""Circuit breaker: stop hammering a failing dependency, probe for recovery.

The classic three-state machine:

* **closed** — calls flow; consecutive failures are counted, and hitting
  ``failure_threshold`` trips the breaker open.
* **open** — calls are refused (:class:`~repro.exceptions.CircuitOpenError`)
  until ``recovery_timeout`` (monotonic) seconds have passed, then the next
  :meth:`allow` transitions to half-open.
* **half-open** — a bounded number of probe calls is let through; one
  success closes the breaker, one failure re-opens it (and restarts the
  recovery clock).

The legal transition edges — and nothing else — are::

    closed → open, open → half_open, half_open → closed, half_open → open

which the property suite asserts from arbitrary operation interleavings.

State changes publish to a
:class:`~repro.observability.metrics.MetricsRegistry` as the
``reliability.breaker_state{breaker}`` gauge (0 = closed, 1 = half-open,
2 = open) and the ``reliability.breaker_transitions{breaker,to}`` counter,
so a tripped breaker is visible on ``/metrics`` before anyone reads logs.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.exceptions import CircuitOpenError, ConfigurationError
from repro.observability.logging import get_logger

_log = get_logger("repro.reliability.breaker")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}
LEGAL_TRANSITIONS = {
    (CLOSED, OPEN),
    (OPEN, HALF_OPEN),
    (HALF_OPEN, CLOSED),
    (HALF_OPEN, OPEN),
}


class CircuitBreaker:
    """Thread-safe closed/open/half-open breaker with metrics.

    Parameters
    ----------
    name:
        Label under which state/transition metrics are published.
    failure_threshold:
        Consecutive failures (in the closed state) that trip the breaker.
    recovery_timeout:
        Seconds the breaker stays open before probing (monotonic clock).
    half_open_max:
        Concurrent probe calls admitted while half-open.
    registry:
        Optional metrics sink; ``None`` (or a null registry) publishes
        nothing.
    clock:
        Injectable monotonic clock for tests.

    Examples
    --------
    >>> from repro.reliability.breaker import CircuitBreaker
    >>> breaker = CircuitBreaker("demo", failure_threshold=1)
    >>> breaker.record_failure()
    >>> breaker.state
    'open'
    >>> breaker.allow()
    False
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 5,
        recovery_timeout: float = 30.0,
        half_open_max: int = 1,
        registry=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if recovery_timeout < 0:
            raise ConfigurationError(
                f"recovery_timeout must be >= 0, got {recovery_timeout}"
            )
        if half_open_max < 1:
            raise ConfigurationError(
                f"half_open_max must be >= 1, got {half_open_max}"
            )
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.recovery_timeout = float(recovery_timeout)
        self.half_open_max = int(half_open_max)
        self._clock = clock
        self._lock = threading.RLock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._half_open_inflight = 0
        self._state_gauge = None
        self._transitions = None
        if registry is not None and getattr(registry, "enabled", False):
            self._state_gauge = registry.gauge(
                "reliability.breaker_state",
                help="Breaker state: 0 closed, 1 half-open, 2 open.",
                labels=("breaker",),
            ).labels(breaker=name)
            self._state_gauge.set(_STATE_VALUES[CLOSED])
            self._transitions = registry.counter(
                "reliability.breaker_transitions",
                help="Breaker state transitions, by target state.",
                labels=("breaker", "to"),
            )

    # -- state machine --------------------------------------------------
    def _transition(self, new_state: str) -> None:
        """Move to ``new_state`` (callers hold the lock)."""
        old = self._state
        if old == new_state:
            return
        assert (old, new_state) in LEGAL_TRANSITIONS, (old, new_state)
        self._state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
        if new_state in (CLOSED, HALF_OPEN):
            self._half_open_inflight = 0
        if new_state == CLOSED:
            self._consecutive_failures = 0
        if self._state_gauge is not None:
            self._state_gauge.set(_STATE_VALUES[new_state])
            self._transitions.labels(breaker=self.name, to=new_state).inc()
        _log.info(
            "circuit breaker transition",
            breaker=self.name,
            from_state=old,
            to_state=new_state,
        )

    @property
    def state(self) -> str:
        """Current state, after applying any due open → half-open move."""
        with self._lock:
            self._maybe_probe()
            return self._state

    def _maybe_probe(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.recovery_timeout
        ):
            self._transition(HALF_OPEN)

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the half-open state at most ``half_open_max`` callers are
        admitted until one of them reports an outcome.
        """
        with self._lock:
            self._maybe_probe()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._half_open_inflight >= self.half_open_max:
                return False
            self._half_open_inflight += 1
            return True

    def record_success(self) -> None:
        """Report one successful call."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """Report one failed call."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(OPEN)
                return
            if self._state == CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._transition(OPEN)

    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker.

        Raises :class:`~repro.exceptions.CircuitOpenError` without calling
        ``fn`` when the breaker refuses, and reports the call's outcome
        otherwise (the original exception propagates on failure).
        """
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker {self.name!r} is {self.state}; "
                "call refused"
            )
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
