"""Reliability layer: fault injection, retry/backoff, breakers, checkpoints.

The subsystem that makes the solver and serving stacks survive injected
faults instead of merely passing clean runs:

* :mod:`repro.reliability.faults` — the :class:`FaultInjector` chaos-hook
  registry behind :func:`fault_point`; no-op unless armed (via
  ``REPRO_CHAOS=1`` / :func:`configure_from_env` or explicit ``arm``);
* :mod:`repro.reliability.retry` — :class:`RetryPolicy` +
  :func:`call_with_retry`: exponential backoff with deterministic jitter,
  hard deadlines, per-attempt timeouts;
* :mod:`repro.reliability.breaker` — the closed/open/half-open
  :class:`CircuitBreaker` guarding artifact reads and service reloads;
* :mod:`repro.reliability.checkpoints` — :class:`CheckpointManager`,
  atomic digest-validated CCCP-round checkpoints with skip-corrupt resume.

Degradation is observable through the shared
:class:`~repro.observability.metrics.MetricsRegistry`:
``reliability.retries``, ``reliability.breaker_state`` /
``reliability.breaker_transitions``, ``reliability.shed_requests`` (from
the HTTP layer) and ``solver.checkpoints``.  See DESIGN.md §11 and the
README "Resilience" section for the chaos quickstart.
"""

from repro.reliability.breaker import (
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    CircuitBreaker,
)
from repro.reliability.checkpoints import Checkpoint, CheckpointManager
from repro.reliability.faults import (
    GLOBAL_INJECTOR,
    KNOWN_SITES,
    FaultInjector,
    InjectedFaultError,
    chaos_enabled,
    configure_from_env,
    fault_point,
)
from repro.reliability.retry import (
    RetryPolicy,
    call_with_retry,
    deterministic_jitter,
    retry,
    run_with_timeout,
)

__all__ = [
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "LEGAL_TRANSITIONS",
    "Checkpoint",
    "CheckpointManager",
    "FaultInjector",
    "InjectedFaultError",
    "GLOBAL_INJECTOR",
    "KNOWN_SITES",
    "chaos_enabled",
    "configure_from_env",
    "fault_point",
    "RetryPolicy",
    "call_with_retry",
    "deterministic_jitter",
    "retry",
    "run_with_timeout",
]
