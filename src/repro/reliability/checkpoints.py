"""CCCP-round checkpoints: survive a killed fit, resume deterministically.

A checkpoint is one ``.npz`` per CCCP round (``round-000007.npz``) holding
the round's iterate, the accumulated round norms, and a sha256 content
digest; writes are staged and ``os.replace``d so a kill mid-write can
never leave a half-written "latest".  Because each CCCP round is a pure
function of the incoming iterate, resuming from round ``r`` reproduces
the uninterrupted trajectory exactly (the resume test pins 1e-8 on the
final objective).

Corrupt or truncated checkpoints are *skipped*, not fatal: ``latest()``
walks backwards to the newest checkpoint that validates, so one bad write
costs one round of progress rather than the whole fit.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import zipfile
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ArtifactCorruptError
from repro.observability.logging import get_logger

_log = get_logger("repro.reliability.checkpoints")

CHECKPOINT_SCHEMA_VERSION = 1
_CKPT_FILE = re.compile(r"^round-(\d{6})\.npz$")


@dataclass
class Checkpoint:
    """One validated CCCP-round snapshot."""

    round_index: int
    solution: np.ndarray = field(repr=False)
    round_norms: List[float]
    meta: Dict

    @property
    def n_rounds(self) -> int:
        """Rounds completed when this checkpoint was written."""
        return self.round_index


def _digest(solution: np.ndarray, round_norms: np.ndarray, meta_json: str) -> str:
    hasher = hashlib.sha256()
    hasher.update(repr(solution.shape).encode("ascii"))
    hasher.update(np.ascontiguousarray(solution, dtype=float).tobytes())
    hasher.update(np.ascontiguousarray(round_norms, dtype=float).tobytes())
    hasher.update(meta_json.encode("utf-8"))
    return hasher.hexdigest()


class CheckpointManager:
    """Write/read periodic solver checkpoints in one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first use.
    keep:
        How many most-recent checkpoints to retain (older ones are pruned
        after each save).
    every:
        Write one checkpoint per this many rounds (1 = every round).

    Examples
    --------
    >>> import tempfile
    >>> import numpy as np
    >>> manager = CheckpointManager(tempfile.mkdtemp())
    >>> _ = manager.save(1, np.eye(2), [2.0])
    >>> manager.latest().round_index
    1
    """

    def __init__(self, directory: str, keep: int = 3, every: int = 1):
        self.directory = str(directory)
        self.keep = max(1, int(keep))
        self.every = max(1, int(every))
        os.makedirs(self.directory, exist_ok=True)

    def path(self, round_index: int) -> str:
        """The file holding the given round's checkpoint."""
        return os.path.join(self.directory, f"round-{int(round_index):06d}.npz")

    def rounds(self) -> List[int]:
        """Checkpointed round indices, ascending."""
        found = []
        for entry in os.listdir(self.directory):
            match = _CKPT_FILE.match(entry)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def should_save(self, round_index: int) -> bool:
        """Whether this round falls on the checkpoint cadence."""
        return round_index % self.every == 0

    def save(
        self,
        round_index: int,
        solution: np.ndarray,
        round_norms: List[float],
        meta: Optional[Dict] = None,
    ) -> str:
        """Atomically write one round's checkpoint; returns its path."""
        solution = np.ascontiguousarray(solution, dtype=float)
        norms = np.asarray(list(round_norms), dtype=float)
        meta_json = json.dumps(
            {
                "schema_version": CHECKPOINT_SCHEMA_VERSION,
                "round": int(round_index),
                **(meta or {}),
            },
            sort_keys=True,
        )
        final = self.path(round_index)
        fd, staging = tempfile.mkstemp(
            dir=self.directory, suffix=".ckpt-staging"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle,
                    round=np.array([int(round_index)]),
                    solution=solution,
                    round_norms=norms,
                    meta=np.frombuffer(
                        meta_json.encode("utf-8"), dtype=np.uint8
                    ),
                    digest=np.frombuffer(
                        _digest(solution, norms, meta_json).encode("ascii"),
                        dtype=np.uint8,
                    ),
                )
            os.replace(staging, final)
        except BaseException:
            if os.path.exists(staging):
                os.unlink(staging)
            raise
        self._prune()
        return final

    def _prune(self) -> None:
        for stale in self.rounds()[: -self.keep]:
            try:
                os.unlink(self.path(stale))
            except OSError:
                pass  # already gone; pruning is best-effort

    def load(self, round_index: int) -> Checkpoint:
        """Load and validate one checkpoint.

        Raises
        ------
        ArtifactCorruptError
            When the file is unreadable, truncated, or its digest does not
            match the content.
        """
        path = self.path(round_index)
        try:
            with np.load(path) as data:
                solution = np.asarray(data["solution"], dtype=float)
                norms = np.asarray(data["round_norms"], dtype=float)
                meta_json = bytes(data["meta"]).decode("utf-8")
                stored = bytes(data["digest"]).decode("ascii")
        except (
            KeyError,
            ValueError,
            OSError,
            EOFError,
            zipfile.BadZipFile,
            zlib.error,
        ) as exc:
            raise ArtifactCorruptError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        actual = _digest(solution, norms, meta_json)
        if actual != stored:
            raise ArtifactCorruptError(
                f"checkpoint {path} failed its integrity check: stored "
                f"sha256 {stored[:12]}… but content hashes to {actual[:12]}…"
            )
        meta = json.loads(meta_json)
        return Checkpoint(
            round_index=int(meta["round"]),
            solution=solution,
            round_norms=[float(v) for v in norms],
            meta=meta,
        )

    def latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint that validates, or ``None``.

        Corrupt files are skipped (with a warning) so a crash mid-write
        degrades to the previous round instead of failing the resume.
        """
        for round_index in reversed(self.rounds()):
            try:
                return self.load(round_index)
            except ArtifactCorruptError as exc:
                _log.warning(
                    "skipping corrupt checkpoint",
                    round=round_index,
                    error=str(exc),
                )
        return None
