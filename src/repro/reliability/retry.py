"""Generic retry with exponential backoff, deterministic jitter, deadlines.

The policy is a frozen value object so it can be shared, logged and
property-tested; the executor (:func:`call_with_retry`) takes injectable
``clock``/``sleep`` hooks so every timing behaviour is testable without
real waiting.

Guarantees the property tests pin down:

* the planned backoff schedule (:meth:`RetryPolicy.backoff_schedule`) is
  monotone non-decreasing and bounded by ``max_delay * (1 + jitter)``;
* jitter is **deterministic** — derived from ``(seed, attempt)`` via
  sha256, so two runs of the same policy produce the same schedule and a
  chaos run is reproducible;
* a ``deadline`` is a hard wall-clock budget: no sleep is ever started
  that would overrun it, and :class:`~repro.exceptions.DeadlineExceededError`
  is raised once the budget cannot accommodate another attempt;
* ``attempt_timeout`` bounds a *single* attempt by running it on a helper
  thread (the abandoned attempt keeps running to completion in the
  background — acceptable for idempotent reads, which is what this layer
  guards).
"""

from __future__ import annotations

import functools
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
)
from repro.observability.logging import get_logger

_log = get_logger("repro.reliability.retry")


def deterministic_jitter(seed: int, attempt: int) -> float:
    """A reproducible uniform draw in ``[0, 1)`` for one retry attempt."""
    digest = hashlib.sha256(f"{seed}:{attempt}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """How a failing call is retried.

    Parameters
    ----------
    max_attempts:
        Total attempts (first call included); must be >= 1.
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Exponential backoff factor between retries (>= 1).
    max_delay:
        Upper bound on any single (pre-jitter) sleep.
    jitter:
        Fractional jitter in ``[0, 1]``: each delay is stretched by up to
        ``jitter * delay``, deterministically from ``(seed, attempt)``.
    deadline:
        Total wall-clock budget across all attempts and sleeps (``None`` =
        unbounded).
    attempt_timeout:
        Per-attempt wall-clock bound (``None`` = unbounded).
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately.
    seed:
        Jitter seed.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline: Optional[float] = None
    attempt_timeout: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigurationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline}"
            )
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ConfigurationError(
                f"attempt_timeout must be positive, got {self.attempt_timeout}"
            )

    def backoff_schedule(self) -> List[float]:
        """Planned sleeps between attempts (``max_attempts - 1`` entries).

        Monotone non-decreasing by construction: each jittered delay is
        clamped to at least its predecessor, so jitter near the
        ``max_delay`` cap can never make the schedule shrink.
        """
        delays: List[float] = []
        previous = 0.0
        for attempt in range(self.max_attempts - 1):
            raw = min(
                self.base_delay * (self.multiplier**attempt), self.max_delay
            )
            jittered = raw * (
                1.0 + self.jitter * deterministic_jitter(self.seed, attempt)
            )
            previous = max(previous, jittered)
            delays.append(previous)
        return delays


def run_with_timeout(fn: Callable, timeout: Optional[float]):
    """Run ``fn()`` bounded by ``timeout`` seconds.

    With ``timeout=None`` the call is made inline.  Otherwise the call runs
    on a daemon thread; on overrun a
    :class:`~repro.exceptions.DeadlineExceededError` is raised and the
    thread is abandoned (it finishes in the background), so only wrap
    idempotent, side-effect-tolerant work — the artifact read paths this
    layer protects qualify.
    """
    if timeout is None:
        return fn()
    outcome = {}
    done = threading.Event()

    def _target() -> None:
        try:
            outcome["result"] = fn()
        except BaseException as exc:  # handed back to the caller's thread
            outcome["error"] = exc
        finally:
            done.set()

    worker = threading.Thread(
        target=_target, name="repro-reliability-attempt", daemon=True
    )
    worker.start()
    if not done.wait(timeout):
        raise DeadlineExceededError(
            f"attempt exceeded its {timeout}s timeout"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome.get("result")


def call_with_retry(
    fn: Callable,
    policy: RetryPolicy,
    name: str = "call",
    registry=None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
):
    """Invoke ``fn()`` under ``policy``; return its first successful result.

    Retries are counted on ``registry`` (a
    :class:`~repro.observability.metrics.MetricsRegistry`) as
    ``reliability.retries{op}`` so degradation is visible on ``/metrics``.
    Raises :class:`~repro.exceptions.RetryExhaustedError` (chaining the
    last error) when attempts run out, or
    :class:`~repro.exceptions.DeadlineExceededError` when the budget
    cannot fit another attempt.
    """
    retries = None
    if registry is not None and getattr(registry, "enabled", False):
        retries = registry.counter(
            "reliability.retries",
            help="Retried attempts, by operation.",
            labels=("op",),
        ).labels(op=name)
    schedule = policy.backoff_schedule()
    started = clock()
    last_error: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        if policy.deadline is not None and clock() - started >= policy.deadline:
            raise DeadlineExceededError(
                f"{name}: retry deadline of {policy.deadline}s exhausted "
                f"after {attempt} attempt(s)"
            ) from last_error
        timeout = policy.attempt_timeout
        if policy.deadline is not None:
            remaining = policy.deadline - (clock() - started)
            timeout = remaining if timeout is None else min(timeout, remaining)
        try:
            return run_with_timeout(fn, timeout)
        except policy.retry_on as exc:
            last_error = exc
            if attempt == policy.max_attempts - 1:
                break
            delay = schedule[attempt]
            if policy.deadline is not None and (
                clock() - started + delay >= policy.deadline
            ):
                raise DeadlineExceededError(
                    f"{name}: next backoff of {delay:.3f}s would overrun "
                    f"the {policy.deadline}s deadline"
                ) from exc
            if retries is not None:
                retries.inc()
            _log.warning(
                "retrying after failure",
                op=name,
                attempt=attempt + 1,
                max_attempts=policy.max_attempts,
                backoff_seconds=delay,
                error=str(exc),
            )
            if delay > 0:
                sleep(delay)
    raise RetryExhaustedError(
        f"{name}: all {policy.max_attempts} attempt(s) failed "
        f"(last error: {last_error})"
    ) from last_error


def retry(policy: RetryPolicy, name: Optional[str] = None, registry=None):
    """Decorator form of :func:`call_with_retry`."""

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return call_with_retry(
                lambda: fn(*args, **kwargs),
                policy,
                name=name or fn.__name__,
                registry=registry,
            )

        return wrapper

    return decorate
