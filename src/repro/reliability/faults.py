"""Chaos-hook registry: inject faults at named sites, no-op by default.

Production code calls :func:`fault_point` at the places where the real
world fails — the SVD inside the proximal step, the artifact read path,
the serving reload, the HTTP request path.  With no injector armed the
call is a single module-attribute check, so the hot path pays nothing;
with chaos enabled (``REPRO_CHAOS=1`` or an explicit
:meth:`FaultInjector.arm`) the site raises a configured exception or
sleeps a configured delay, with a seeded RNG so a 10 %-fault run is
reproducible.

Registered sites (the vocabulary chaos tests and ``tools/chaos_smoke.py``
drive):

======================  ======================================================
``solver.svd.truncated``  the Lanczos ``svds`` call of the truncated SVT
``solver.svd.dense``      the dense ``np.linalg.svd`` call of the exact SVT
``artifact.read``         :meth:`ArtifactStore.load` integrity validation
``artifact.slow_read``    delay-only site on the same load path
``serving.reload``        :meth:`LinkPredictionService.reload`
``serving.request``       the HTTP dispatch path (before routing)
``sharding.shard_read``   per-shard reads of a sharded artifact load
``streaming.wal.fsync``   the fsync gating every WAL append acknowledgement
``streaming.wal.torn_write``  mid-record WAL write (leaves a real torn tail)
======================  ======================================================

Environment configuration (read by :func:`configure_from_env`, which the
serving CLI and the chaos smoke script call)::

    REPRO_CHAOS=1                         enable injection
    REPRO_CHAOS_RATE=0.1                  per-site firing probability
    REPRO_CHAOS_SITES=artifact.read,...   subset of sites (default: all)
    REPRO_CHAOS_SEED=7                    RNG seed for reproducible runs
    REPRO_CHAOS_DELAY=0.05                seconds slept by delay sites
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import (
    ArtifactCorruptError,
    ConfigurationError,
    ReliabilityError,
    SerializationError,
)


class InjectedFaultError(ReliabilityError):
    """The generic exception raised by an armed fault site."""


KNOWN_SITES: Dict[str, str] = {
    "solver.svd.truncated": "truncated (Lanczos) SVD inside the SVT prox",
    "solver.svd.dense": "dense SVD inside the exact SVT prox",
    "artifact.read": "artifact-store load/validation path",
    "artifact.slow_read": "artifact-store load path (delay only)",
    "serving.reload": "service hot-swap reload",
    "serving.request": "HTTP request dispatch",
    "sharding.shard_read": "per-shard artifact read inside a sharded load",
    "streaming.wal.fsync": "the fsync gating a WAL append acknowledgement",
    "streaming.wal.torn_write": "mid-record WAL write leaving a torn tail",
}
"""Site name → human description; :meth:`FaultInjector.arm` validates
against this registry so chaos configs cannot silently target a typo."""

_DEFAULT_ERRORS: Dict[str, Callable[[], BaseException]] = {
    "solver.svd.truncated": lambda: np.linalg.LinAlgError(
        "injected: SVD did not converge"
    ),
    "solver.svd.dense": lambda: np.linalg.LinAlgError(
        "injected: SVD did not converge"
    ),
    "artifact.read": lambda: ArtifactCorruptError(
        "injected: artifact failed its integrity check"
    ),
    "serving.reload": lambda: SerializationError(
        "injected: artifact reload failure"
    ),
    "serving.request": lambda: InjectedFaultError(
        "injected: request-path fault"
    ),
    "sharding.shard_read": lambda: ArtifactCorruptError(
        "injected: shard artifact failed its integrity check"
    ),
    "streaming.wal.fsync": lambda: OSError(
        "injected: WAL fsync failed before acknowledgement"
    ),
    "streaming.wal.torn_write": lambda: InjectedFaultError(
        "injected: WAL write torn mid-record"
    ),
}
"""What each site raises when armed without an explicit ``error``.
``artifact.slow_read`` has no entry — it is delay-only by default."""


@dataclass
class _ArmedSite:
    """One armed site's behaviour and bookkeeping."""

    error: Optional[Callable[[], BaseException]] = None
    delay: float = 0.0
    probability: float = 1.0
    remaining: Optional[int] = None  # fire at most this many times
    fired: int = 0
    skipped: int = 0
    rng: random.Random = field(default_factory=random.Random)


class FaultInjector:
    """A registry of armed fault sites, thread-safe and seedable.

    The module-level :data:`GLOBAL_INJECTOR` is what production call sites
    consult; tests may also construct private injectors and drive
    :meth:`fire` directly.

    Examples
    --------
    >>> from repro.reliability.faults import FaultInjector
    >>> injector = FaultInjector()
    >>> injector.arm("artifact.read", times=1)
    >>> injector.active
    True
    >>> try:
    ...     injector.fire("artifact.read")
    ... except Exception as exc:
    ...     print(type(exc).__name__)
    ArtifactCorruptError
    >>> injector.fire("artifact.read")  # auto-disarmed after one firing
    """

    def __init__(self, seed: Optional[int] = None):
        self._sites: Dict[str, _ArmedSite] = {}
        self._lock = threading.Lock()
        self._seed = seed
        self.active = False

    # -- configuration --------------------------------------------------
    def arm(
        self,
        site: str,
        error: Optional[Callable[[], BaseException]] = None,
        delay: float = 0.0,
        probability: float = 1.0,
        times: Optional[int] = None,
    ) -> None:
        """Arm one site.

        Parameters
        ----------
        site:
            One of :data:`KNOWN_SITES`.
        error:
            Zero-argument factory of the exception to raise; defaults to
            the site's entry in :data:`_DEFAULT_ERRORS` (delay-only when
            the site has none).
        delay:
            Seconds to sleep before (possibly) raising — models slow I/O.
        probability:
            Chance in ``[0, 1]`` that a :meth:`fire` call actually fires.
        times:
            Fire at most this many times, then auto-disarm (``None`` =
            unlimited).
        """
        if site not in KNOWN_SITES:
            raise ConfigurationError(
                f"unknown fault site {site!r}; known sites: "
                f"{', '.join(sorted(KNOWN_SITES))}"
            )
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {probability}"
            )
        if delay < 0:
            raise ConfigurationError(f"fault delay must be >= 0, got {delay}")
        if error is None:
            error = _DEFAULT_ERRORS.get(site)
        armed = _ArmedSite(
            error=error,
            delay=float(delay),
            probability=float(probability),
            remaining=None if times is None else int(times),
            rng=random.Random(
                None if self._seed is None else f"{self._seed}:{site}"
            ),
        )
        with self._lock:
            self._sites[site] = armed
            self.active = True

    def disarm(self, site: str) -> None:
        """Disarm one site (a no-op when it was not armed)."""
        with self._lock:
            self._sites.pop(site, None)
            self.active = bool(self._sites)

    def reset(self) -> None:
        """Disarm every site."""
        with self._lock:
            self._sites.clear()
            self.active = False

    # -- firing ---------------------------------------------------------
    def fire(self, site: str) -> None:
        """Inject the site's fault if it is armed (raises or sleeps)."""
        with self._lock:
            armed = self._sites.get(site)
            if armed is None:
                return
            if armed.remaining is not None and armed.remaining <= 0:
                return
            if armed.probability < 1.0 and armed.rng.random() >= armed.probability:
                armed.skipped += 1
                return
            armed.fired += 1
            if armed.remaining is not None:
                armed.remaining -= 1
            error = armed.error
            delay = armed.delay
        if delay > 0:
            time.sleep(delay)
        if error is not None:
            raise error()

    # -- introspection --------------------------------------------------
    def armed_sites(self) -> List[str]:
        """Currently armed site names, sorted."""
        with self._lock:
            return sorted(self._sites)

    def fired_counts(self) -> Dict[str, int]:
        """How many times each armed site has fired."""
        with self._lock:
            return {site: armed.fired for site, armed in self._sites.items()}


GLOBAL_INJECTOR = FaultInjector()
"""The process-wide injector consulted by every :func:`fault_point`."""


def fault_point(site: str) -> None:
    """Production chaos hook: free when nothing is armed.

    The inactive path is one attribute load and one branch; never add work
    before the ``active`` check.
    """
    if not GLOBAL_INJECTOR.active:
        return
    GLOBAL_INJECTOR.fire(site)


def chaos_enabled(environ=None) -> bool:
    """Whether the ``REPRO_CHAOS`` environment flag requests injection."""
    value = (environ or os.environ).get("REPRO_CHAOS", "")
    return value.strip().lower() in ("1", "true", "yes", "on")


def configure_from_env(environ=None) -> List[str]:
    """Arm the global injector from ``REPRO_CHAOS*`` variables.

    Returns the list of sites that were armed (empty when chaos is off).
    Entry points (the serving CLI, the chaos smoke script) call this
    explicitly — importing the library never arms anything.
    """
    environ = environ or os.environ
    if not chaos_enabled(environ):
        return []
    rate = float(environ.get("REPRO_CHAOS_RATE", "0.1"))
    delay = float(environ.get("REPRO_CHAOS_DELAY", "0.05"))
    seed = environ.get("REPRO_CHAOS_SEED")
    sites_spec = environ.get("REPRO_CHAOS_SITES", "")
    sites = [s.strip() for s in sites_spec.split(",") if s.strip()] or sorted(
        KNOWN_SITES
    )
    GLOBAL_INJECTOR._seed = None if seed is None else int(seed)
    for site in sites:
        GLOBAL_INJECTOR.arm(
            site,
            delay=delay if site == "artifact.slow_read" else 0.0,
            probability=rate,
        )
    return sites
