"""Serialization of networks and aligned-network bundles.

Two formats are supported:

* JSON — human-readable round-trip of a single
  :class:`~repro.networks.heterogeneous.HeterogeneousNetwork`.
* NPZ — compact round-trip of a whole
  :class:`~repro.networks.aligned.AlignedNetworks` bundle (adjacency matrices
  and anchor pairs plus a JSON side-car for attribute nodes), convenient for
  caching generated datasets between benchmark runs.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

import numpy as np

from repro.exceptions import SerializationError
from repro.networks.aligned import AlignedNetworks, AnchorLinks
from repro.networks.heterogeneous import HeterogeneousNetwork

_FORMAT_VERSION = 1


def network_to_dict(network: HeterogeneousNetwork) -> Dict[str, Any]:
    """Convert a network to a JSON-serializable dict."""
    return {
        "version": _FORMAT_VERSION,
        "name": network.name,
        "users": network.user_ids,
        "locations": [
            [loc.location_id, loc.latitude, loc.longitude]
            for loc in network.locations()
        ],
        "posts": [
            [
                post.post_id,
                post.author_id,
                list(post.word_ids),
                post.hour,
                post.location_id,
            ]
            for post in network.posts()
        ],
        "social_links": sorted(list(pair) for pair in network.social_links),
    }


def network_from_dict(payload: Dict[str, Any]) -> HeterogeneousNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    try:
        version = payload["version"]
        if version != _FORMAT_VERSION:
            raise SerializationError(
                f"unsupported network format version {version}"
            )
        network = HeterogeneousNetwork(payload["name"])
        for user_id in payload["users"]:
            network.add_user(user_id)
        for location_id, lat, lon in payload["locations"]:
            network.add_location(location_id, lat, lon)
        for post_id, author_id, word_ids, hour, location_id in payload["posts"]:
            network.add_post(post_id, author_id, word_ids, hour, location_id)
        for a, b in payload["social_links"]:
            network.add_social_link(a, b)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed network payload: {exc}") from exc
    return network


def save_network_json(network: HeterogeneousNetwork, path: str) -> None:
    """Write a network to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(network_to_dict(network), handle)


def load_network_json(path: str) -> HeterogeneousNetwork:
    """Read a network previously written by :func:`save_network_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON in {path!r}: {exc}") from exc
    return network_from_dict(payload)


def save_aligned_npz(aligned: AlignedNetworks, path: str) -> None:
    """Write an aligned bundle to ``path`` (.npz plus a .json side-car).

    The ``.npz`` stores anchor pair arrays; the side-car stores the full
    heterogeneous payloads so attribute nodes survive the round trip.
    """
    arrays: Dict[str, np.ndarray] = {
        "n_sources": np.array([aligned.n_sources], dtype=np.int64)
    }
    for idx, anchor in enumerate(aligned.anchors):
        pairs = sorted(anchor.pairs)
        arrays[f"anchors_{idx}"] = np.array(pairs, dtype=np.int64).reshape(-1, 2)
    np.savez_compressed(path, **arrays)
    sidecar = {
        "target": network_to_dict(aligned.target),
        "sources": [network_to_dict(source) for source in aligned.sources],
    }
    with open(_sidecar_path(path), "w", encoding="utf-8") as handle:
        json.dump(sidecar, handle)


def load_aligned_npz(path: str) -> AlignedNetworks:
    """Read an aligned bundle previously written by :func:`save_aligned_npz`."""
    sidecar_path = _sidecar_path(path)
    if not os.path.exists(sidecar_path):
        raise SerializationError(f"missing side-car file {sidecar_path!r}")
    with open(sidecar_path, "r", encoding="utf-8") as handle:
        sidecar = json.load(handle)
    target = network_from_dict(sidecar["target"])
    sources = [network_from_dict(payload) for payload in sidecar["sources"]]
    with np.load(path) as data:
        n_sources = int(data["n_sources"][0])
        if n_sources != len(sources):
            raise SerializationError(
                f"npz declares {n_sources} sources but side-car has {len(sources)}"
            )
        anchors = [
            AnchorLinks(map(tuple, data[f"anchors_{idx}"].tolist()))
            for idx in range(n_sources)
        ]
    return AlignedNetworks(target, sources, anchors)


def _sidecar_path(path: str) -> str:
    base = path[:-4] if path.endswith(".npz") else path
    return base + ".networks.json"
