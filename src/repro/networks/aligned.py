"""Aligned-network container and anchor links.

Implements Definition 2 of the paper: a target network plus ``K`` source
networks aligned by sets of undirected *anchor links* connecting the accounts
of the same user in two networks.  Anchor links here follow the one-to-one
constraint of the cited prior work: a user of one network is anchored to at
most one user of another.

The container also implements the *anchor link sampling* used in Table II:
``sample(ratio)`` keeps a random fraction of the anchors, which is how the
paper sweeps the amount of cross-network supervision from unaligned (0.0) to
fully aligned (1.0).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.exceptions import AlignmentError
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_probability


class AnchorLinks:
    """One-to-one anchor links between a pair of networks.

    Parameters
    ----------
    pairs:
        Iterable of ``(user_in_first, user_in_second)`` id pairs.

    Raises
    ------
    AlignmentError
        If any user appears in more than one anchor pair (violating the
        one-to-one constraint).
    """

    def __init__(self, pairs: Iterable[Tuple[int, int]] = ()):
        seen_first: Dict[int, int] = {}
        seen_second: Dict[int, int] = {}
        for a, b in pairs:
            a, b = int(a), int(b)
            if a in seen_first:
                raise AlignmentError(
                    f"user {a} of the first network is anchored twice"
                )
            if b in seen_second:
                raise AlignmentError(
                    f"user {b} of the second network is anchored twice"
                )
            seen_first[a] = b
            seen_second[b] = a
        self._forward = seen_first
        self._backward = seen_second

    @property
    def pairs(self) -> FrozenSet[Tuple[int, int]]:
        """All anchor pairs as (first-network id, second-network id)."""
        return frozenset(self._forward.items())

    def __len__(self) -> int:
        return len(self._forward)

    def __contains__(self, pair: Tuple[int, int]) -> bool:
        a, b = pair
        return self._forward.get(int(a)) == int(b)

    def map_forward(self, user_id: int) -> Optional[int]:
        """Counterpart in the second network, or ``None`` if unanchored."""
        return self._forward.get(int(user_id))

    def map_backward(self, user_id: int) -> Optional[int]:
        """Counterpart in the first network, or ``None`` if unanchored."""
        return self._backward.get(int(user_id))

    def reversed(self) -> "AnchorLinks":
        """The same anchors with the network roles swapped."""
        return AnchorLinks((b, a) for a, b in self._forward.items())

    def sample(self, ratio: float, random_state: RandomState = None) -> "AnchorLinks":
        """Keep a random ``ratio`` fraction of the anchor links.

        This is the Table II anchor-link sampling: ratio 0.0 yields unaligned
        networks, 1.0 keeps every anchor.
        """
        ratio = check_probability(ratio, "ratio")
        rng = ensure_rng(random_state)
        pairs = sorted(self._forward.items())
        keep = round(len(pairs) * ratio)
        if keep == 0:
            return AnchorLinks()
        chosen = rng.choice(len(pairs), size=keep, replace=False)
        return AnchorLinks(pairs[i] for i in sorted(chosen.tolist()))

    def __repr__(self) -> str:
        return f"AnchorLinks(n={len(self)})"


class AlignedNetworks:
    """A target network plus aligned source networks (Definition 2).

    Parameters
    ----------
    target:
        The target network ``G^t`` whose links are to be predicted.
    sources:
        The aligned source networks ``G^1 … G^K``.
    anchors:
        One :class:`AnchorLinks` per source, mapping target user ids to that
        source's user ids.  Anchors between pairs of sources are optional and
        unused by the paper's experiments (the ICDE'17 evaluation aligns one
        source with the target).

    Raises
    ------
    AlignmentError
        If counts mismatch or an anchor references a user that does not exist
        in the corresponding network.
    """

    def __init__(
        self,
        target: HeterogeneousNetwork,
        sources: List[HeterogeneousNetwork],
        anchors: List[AnchorLinks],
    ):
        if len(sources) != len(anchors):
            raise AlignmentError(
                f"{len(sources)} source networks but {len(anchors)} anchor sets"
            )
        target_users = set(target.user_ids)
        for source, anchor in zip(sources, anchors):
            source_users = set(source.user_ids)
            for t_user, s_user in anchor.pairs:
                if t_user not in target_users:
                    raise AlignmentError(
                        f"anchor references unknown target user {t_user}"
                    )
                if s_user not in source_users:
                    raise AlignmentError(
                        f"anchor references unknown user {s_user} "
                        f"of source {source.name!r}"
                    )
        self.target = target
        self.sources = list(sources)
        self.anchors = list(anchors)

    @property
    def n_sources(self) -> int:
        """Number of aligned source networks (the paper's K)."""
        return len(self.sources)

    @property
    def networks(self) -> List[HeterogeneousNetwork]:
        """Target followed by sources — the paper's {G^t, G^1, …, G^K}."""
        return [self.target] + self.sources

    def anchor_ratio(self, source_index: int = 0) -> float:
        """Fraction of target users anchored into source ``source_index``."""
        if self.target.n_users == 0:
            return 0.0
        return len(self.anchors[source_index]) / self.target.n_users

    def sample_anchors(
        self, ratio: float, random_state: RandomState = None
    ) -> "AlignedNetworks":
        """Return a copy whose anchor sets are down-sampled to ``ratio``.

        Each source's anchors are sampled with an independent stream derived
        from ``random_state`` so the sweep is reproducible.
        """
        rng = ensure_rng(random_state)
        sampled = [anchor.sample(ratio, rng) for anchor in self.anchors]
        return AlignedNetworks(self.target, self.sources, sampled)

    def __repr__(self) -> str:
        return (
            f"AlignedNetworks(target={self.target.name!r}, "
            f"n_sources={self.n_sources}, "
            f"anchors={[len(a) for a in self.anchors]})"
        )
