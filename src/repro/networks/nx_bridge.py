"""Bridges between :mod:`repro.networks` and NetworkX.

NetworkX is the lingua franca of Python graph tooling; these converters let
downstream users visualize generated worlds, run their own graph algorithms
on the social structure, or import an existing NetworkX graph as the social
layer of a :class:`~repro.networks.heterogeneous.HeterogeneousNetwork`.
"""

from __future__ import annotations



import networkx as nx

from repro.exceptions import NetworkError
from repro.networks.entities import NodeType
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.social import SocialGraph


def social_graph_to_networkx(graph: SocialGraph) -> nx.Graph:
    """Convert a social structure snapshot to an undirected NetworkX graph.

    Nodes carry the original user ids; the graph has no attribute payload.
    """
    out = nx.Graph()
    out.add_nodes_from(graph.user_ids)
    user_ids = graph.user_ids
    for i, j in sorted(graph.links()):
        out.add_edge(user_ids[i], user_ids[j])
    return out


def network_to_networkx(
    network: HeterogeneousNetwork, include_attributes: bool = True
) -> nx.Graph:
    """Convert a full heterogeneous network to a typed NetworkX graph.

    Nodes are namespaced (``("user", id)``, ``("post", id)`` …) and carry a
    ``node_type`` attribute; edges carry an ``edge_type`` attribute
    (``social`` / ``write`` / ``word`` / ``time`` / ``locate``), matching
    the paper's edge families.  With ``include_attributes=False`` only the
    user nodes and social links are emitted.
    """
    out = nx.Graph()
    for user_id in network.user_ids:
        out.add_node(("user", user_id), node_type=NodeType.USER.value)
    for a, b in sorted(network.social_links):
        out.add_edge(("user", a), ("user", b), edge_type="social")
    if not include_attributes:
        return out
    for location in network.locations():
        out.add_node(
            ("location", location.location_id),
            node_type=NodeType.LOCATION.value,
            latitude=location.latitude,
            longitude=location.longitude,
        )
    hours_seen = set()
    words_seen = set()
    for post in network.posts():
        post_node = ("post", post.post_id)
        out.add_node(post_node, node_type=NodeType.POST.value)
        out.add_edge(("user", post.author_id), post_node, edge_type="write")
        hour_node = ("timestamp", post.hour)
        if post.hour not in hours_seen:
            out.add_node(hour_node, node_type=NodeType.TIMESTAMP.value)
            hours_seen.add(post.hour)
        out.add_edge(post_node, hour_node, edge_type="time")
        for word_id in set(post.word_ids):
            word_node = ("word", word_id)
            if word_id not in words_seen:
                out.add_node(word_node, node_type=NodeType.WORD.value)
                words_seen.add(word_id)
            out.add_edge(post_node, word_node, edge_type="word")
        if post.has_checkin:
            out.add_edge(
                post_node, ("location", post.location_id), edge_type="locate"
            )
    return out


def network_from_networkx(
    graph: nx.Graph, name: str = "imported"
) -> HeterogeneousNetwork:
    """Import a plain NetworkX graph as the social layer of a network.

    Every node becomes a user (ids must be integers or integer-convertible);
    every edge becomes a social link.  Attribute layers start empty — add
    posts with :meth:`HeterogeneousNetwork.add_post`.
    """
    network = HeterogeneousNetwork(name)
    try:
        node_ids = sorted(int(node) for node in graph.nodes)
    except (TypeError, ValueError) as exc:
        raise NetworkError(
            "node identifiers must be integer-convertible to import as users"
        ) from exc
    for node_id in node_ids:
        network.add_user(node_id)
    for a, b in graph.edges:
        a, b = int(a), int(b)
        if a != b and not network.has_social_link(a, b):
            network.add_social_link(a, b)
    return network
