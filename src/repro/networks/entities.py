"""Typed node entities of a heterogeneous information network.

Definition 1 of the paper describes the node set as
``V = U ∪ P ∪ W ∪ T ∪ L`` — users, posts, words, timestamps and location
check-ins.  Each entity here is a small frozen dataclass carrying exactly the
attributes the feature extractors need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple


class NodeType(enum.Enum):
    """The five node categories of the paper's heterogeneous network."""

    USER = "user"
    POST = "post"
    WORD = "word"
    TIMESTAMP = "timestamp"
    LOCATION = "location"


@dataclass(frozen=True)
class User:
    """A user account in one network.

    ``user_id`` is unique within its network; cross-network identity is
    expressed via anchor links, never by sharing ids.
    """

    user_id: int

    @property
    def node_type(self) -> NodeType:
        return NodeType.USER


@dataclass(frozen=True)
class Post:
    """A post (tweet / tip) written by a user.

    Attributes
    ----------
    post_id:
        Unique id within the network.
    author_id:
        ``user_id`` of the author.
    word_ids:
        Vocabulary indices of the words the post uses.
    hour:
        Hour-of-day bucket of the post's timestamp (0-23).
    location_id:
        Check-in location id, or ``None`` when the post carries no check-in.
    """

    post_id: int
    author_id: int
    word_ids: Tuple[int, ...] = field(default_factory=tuple)
    hour: int = 0
    location_id: int = None

    @property
    def node_type(self) -> NodeType:
        return NodeType.POST

    @property
    def has_checkin(self) -> bool:
        """Whether the post carries a geo-spatial check-in."""
        return self.location_id is not None


@dataclass(frozen=True)
class Word:
    """A vocabulary entry referenced by posts."""

    word_id: int

    @property
    def node_type(self) -> NodeType:
        return NodeType.WORD


@dataclass(frozen=True)
class Timestamp:
    """An hour-of-day bucket node (the paper's temporal pattern nodes)."""

    hour: int

    def __post_init__(self) -> None:
        if not 0 <= self.hour < 24:
            raise ValueError(f"hour must be in [0, 24), got {self.hour}")

    @property
    def node_type(self) -> NodeType:
        return NodeType.TIMESTAMP


@dataclass(frozen=True)
class Location:
    """A check-in venue with planar coordinates."""

    location_id: int
    latitude: float = 0.0
    longitude: float = 0.0

    @property
    def node_type(self) -> NodeType:
        return NodeType.LOCATION
