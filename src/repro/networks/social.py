"""Read-only social-structure view over a heterogeneous network.

Feature extractors and unsupervised predictors only need the user-user
structure.  :class:`SocialGraph` snapshots that structure into dense numpy
form once, so repeated neighborhood queries do not re-walk the link set, and
supports *masking* (hiding held-out test links) which the evaluation harness
uses to build training views.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set, Tuple

import numpy as np

from repro.exceptions import NetworkError, UnknownNodeError
from repro.networks.heterogeneous import HeterogeneousNetwork


class SocialGraph:
    """An immutable snapshot of user-user structure.

    Parameters
    ----------
    adjacency:
        Binary symmetric adjacency matrix with zero diagonal.
    user_ids:
        Original user ids in dense-index order; defaults to ``0..n-1``.
    """

    def __init__(self, adjacency: np.ndarray, user_ids: List[int] = None):
        adjacency = np.asarray(adjacency, dtype=float)
        if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
            raise NetworkError(
                f"adjacency must be square, got shape {adjacency.shape}"
            )
        if not np.allclose(adjacency, adjacency.T):
            raise NetworkError("adjacency must be symmetric")
        if np.any(np.diag(adjacency) != 0):
            raise NetworkError("adjacency must have a zero diagonal")
        if not np.all(np.isin(adjacency, (0.0, 1.0))):
            raise NetworkError("adjacency must be binary")
        self._adjacency = adjacency.copy()
        self._adjacency.setflags(write=False)
        n = adjacency.shape[0]
        if user_ids is None:
            user_ids = list(range(n))
        if len(user_ids) != n:
            raise NetworkError(
                f"user_ids has length {len(user_ids)} but adjacency is {n}x{n}"
            )
        self._user_ids = [int(u) for u in user_ids]
        self._index = {u: i for i, u in enumerate(self._user_ids)}
        if len(self._index) != n:
            raise NetworkError("user_ids contains duplicates")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, network: HeterogeneousNetwork) -> "SocialGraph":
        """Snapshot the social structure of a heterogeneous network."""
        return cls(network.adjacency_matrix(), network.user_ids)

    def mask_links(self, links: Iterable[Tuple[int, int]]) -> "SocialGraph":
        """Return a copy with the given links (dense-index pairs) removed.

        Used to hide the test fold: the training view must not see held-out
        links.  Raises if a requested link is absent.
        """
        adjacency = np.array(self._adjacency)
        for i, j in links:
            if adjacency[i, j] == 0:
                raise NetworkError(f"link ({i}, {j}) is not present; cannot mask")
            adjacency[i, j] = 0.0
            adjacency[j, i] = 0.0
        return SocialGraph(adjacency, self._user_ids)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of users."""
        return self._adjacency.shape[0]

    @property
    def adjacency(self) -> np.ndarray:
        """The (read-only) adjacency matrix."""
        return self._adjacency

    @property
    def user_ids(self) -> List[int]:
        """Original user ids in dense order."""
        return list(self._user_ids)

    @property
    def n_links(self) -> int:
        """Number of undirected links."""
        return int(self._adjacency.sum() // 2)

    def index_of(self, user_id: int) -> int:
        """Dense index of an original user id."""
        try:
            return self._index[int(user_id)]
        except KeyError:
            raise UnknownNodeError(f"user {user_id} not in this graph") from None

    def degree(self, i: int) -> int:
        """Social degree of dense index ``i``."""
        return int(self._adjacency[i].sum())

    def degrees(self) -> np.ndarray:
        """All degrees as a vector."""
        return self._adjacency.sum(axis=1)

    def neighbors(self, i: int) -> Set[int]:
        """Dense indices of the neighbors of ``i``."""
        return set(np.flatnonzero(self._adjacency[i]).tolist())

    def links(self) -> FrozenSet[Tuple[int, int]]:
        """All links as canonical dense-index pairs (i < j)."""
        rows, cols = np.nonzero(np.triu(self._adjacency, k=1))
        return frozenset(zip(rows.tolist(), cols.tolist()))

    def non_links(self) -> List[Tuple[int, int]]:
        """All absent pairs (i < j) — the candidate set for prediction."""
        rows, cols = np.nonzero(np.triu(1.0 - self._adjacency, k=1))
        return list(zip(rows.tolist(), cols.tolist()))

    def common_neighbors(self, i: int, j: int) -> Set[int]:
        """Shared neighbors of ``i`` and ``j``."""
        return self.neighbors(i) & self.neighbors(j)

    def density(self) -> float:
        """Fraction of possible links that exist."""
        n = self.n_users
        if n < 2:
            return 0.0
        return self.n_links / (n * (n - 1) / 2)

    def __repr__(self) -> str:
        return f"SocialGraph(n_users={self.n_users}, n_links={self.n_links})"
