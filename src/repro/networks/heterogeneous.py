"""The heterogeneous information network container.

Implements Definition 1 of the paper: a graph ``G = (V, E)`` whose nodes are
users, posts, words, timestamps and locations, and whose edge set contains
social links among users plus the write / use-word / post-at-time / locate
links between posts and the attribute nodes.

The container is deliberately index-oriented: users are dense integers
``0..n_users-1`` so adjacency matrices and feature tensors line up without a
relabeling step.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import DuplicateNodeError, NetworkError, UnknownNodeError
from repro.networks.entities import Location, Post, User


class HeterogeneousNetwork:
    """A single heterogeneous online social network.

    Parameters
    ----------
    name:
        Human-readable network name (e.g. ``"target"`` or ``"source-1"``).

    Notes
    -----
    Social links are undirected and stored canonically as ``(min, max)``
    user-id pairs.  Posts reference their author, word usage, hour bucket and
    (optionally) a check-in location, which together define the ``write``,
    ``word``, ``time`` and ``locate`` edge families of the paper.
    """

    def __init__(self, name: str = "network"):
        self.name = str(name)
        self._users: Dict[int, User] = {}
        self._posts: Dict[int, Post] = {}
        self._locations: Dict[int, Location] = {}
        self._social_links: Set[Tuple[int, int]] = set()
        self._posts_by_author: Dict[int, List[int]] = {}
        self._vocabulary: Set[int] = set()

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def add_user(self, user_id: int) -> User:
        """Register a user; ids must be unique within the network."""
        user_id = int(user_id)
        if user_id in self._users:
            raise DuplicateNodeError(
                f"user {user_id} already exists in network {self.name!r}"
            )
        user = User(user_id)
        self._users[user_id] = user
        self._posts_by_author[user_id] = []
        return user

    def add_users(self, count: int) -> List[User]:
        """Register ``count`` users with consecutive ids starting after the max."""
        start = max(self._users) + 1 if self._users else 0
        return [self.add_user(start + offset) for offset in range(count)]

    def add_location(
        self, location_id: int, latitude: float = 0.0, longitude: float = 0.0
    ) -> Location:
        """Register a check-in venue."""
        location_id = int(location_id)
        if location_id in self._locations:
            raise DuplicateNodeError(
                f"location {location_id} already exists in network {self.name!r}"
            )
        location = Location(location_id, float(latitude), float(longitude))
        self._locations[location_id] = location
        return location

    def add_post(
        self,
        post_id: int,
        author_id: int,
        word_ids: Iterable[int] = (),
        hour: int = 0,
        location_id: Optional[int] = None,
    ) -> Post:
        """Register a post written by ``author_id``.

        Adds the implicit ``write``, ``word``, ``time`` and ``locate`` edges of
        the paper's HIN in one call.
        """
        post_id = int(post_id)
        if post_id in self._posts:
            raise DuplicateNodeError(
                f"post {post_id} already exists in network {self.name!r}"
            )
        if author_id not in self._users:
            raise UnknownNodeError(
                f"author {author_id} does not exist in network {self.name!r}"
            )
        if location_id is not None and location_id not in self._locations:
            raise UnknownNodeError(
                f"location {location_id} does not exist in network {self.name!r}"
            )
        if not 0 <= int(hour) < 24:
            raise NetworkError(f"post hour must be in [0, 24), got {hour}")
        words = tuple(int(w) for w in word_ids)
        post = Post(post_id, int(author_id), words, int(hour), location_id)
        self._posts[post_id] = post
        self._posts_by_author[int(author_id)].append(post_id)
        self._vocabulary.update(words)
        return post

    # ------------------------------------------------------------------
    # social links
    # ------------------------------------------------------------------
    def add_social_link(self, user_a: int, user_b: int) -> None:
        """Add an undirected social link between two existing users."""
        if user_a == user_b:
            raise NetworkError(f"self-links are not allowed (user {user_a})")
        for user_id in (user_a, user_b):
            if user_id not in self._users:
                raise UnknownNodeError(
                    f"user {user_id} does not exist in network {self.name!r}"
                )
        self._social_links.add(self._canonical(user_a, user_b))

    def remove_social_link(self, user_a: int, user_b: int) -> None:
        """Remove a social link; raises if it does not exist."""
        key = self._canonical(user_a, user_b)
        if key not in self._social_links:
            raise NetworkError(
                f"no social link between {user_a} and {user_b} "
                f"in network {self.name!r}"
            )
        self._social_links.remove(key)

    def has_social_link(self, user_a: int, user_b: int) -> bool:
        """Whether an undirected social link exists between the two users."""
        return self._canonical(user_a, user_b) in self._social_links

    @staticmethod
    def _canonical(user_a: int, user_b: int) -> Tuple[int, int]:
        a, b = int(user_a), int(user_b)
        return (a, b) if a < b else (b, a)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Number of user nodes."""
        return len(self._users)

    @property
    def n_posts(self) -> int:
        """Number of post nodes."""
        return len(self._posts)

    @property
    def n_locations(self) -> int:
        """Number of location nodes."""
        return len(self._locations)

    @property
    def n_words(self) -> int:
        """Number of distinct vocabulary words used by posts."""
        return len(self._vocabulary)

    @property
    def n_social_links(self) -> int:
        """Number of undirected social links."""
        return len(self._social_links)

    @property
    def n_checkins(self) -> int:
        """Number of posts carrying a location check-in (the 'locate' links)."""
        return sum(1 for post in self._posts.values() if post.has_checkin)

    @property
    def user_ids(self) -> List[int]:
        """Sorted user ids."""
        return sorted(self._users)

    @property
    def social_links(self) -> FrozenSet[Tuple[int, int]]:
        """The canonical (min, max) social link pairs."""
        return frozenset(self._social_links)

    def user(self, user_id: int) -> User:
        """Fetch a user node by id."""
        try:
            return self._users[int(user_id)]
        except KeyError:
            raise UnknownNodeError(
                f"user {user_id} does not exist in network {self.name!r}"
            ) from None

    def post(self, post_id: int) -> Post:
        """Fetch a post node by id."""
        try:
            return self._posts[int(post_id)]
        except KeyError:
            raise UnknownNodeError(
                f"post {post_id} does not exist in network {self.name!r}"
            ) from None

    def location(self, location_id: int) -> Location:
        """Fetch a location node by id."""
        try:
            return self._locations[int(location_id)]
        except KeyError:
            raise UnknownNodeError(
                f"location {location_id} does not exist in network {self.name!r}"
            ) from None

    def posts(self) -> List[Post]:
        """All posts, ordered by post id."""
        return [self._posts[pid] for pid in sorted(self._posts)]

    def locations(self) -> List[Location]:
        """All locations, ordered by location id."""
        return [self._locations[lid] for lid in sorted(self._locations)]

    def posts_of(self, user_id: int) -> List[Post]:
        """All posts written by ``user_id``."""
        if user_id not in self._users:
            raise UnknownNodeError(
                f"user {user_id} does not exist in network {self.name!r}"
            )
        return [self._posts[pid] for pid in self._posts_by_author[int(user_id)]]

    def neighbors(self, user_id: int) -> Set[int]:
        """Social neighbors of ``user_id``."""
        if user_id not in self._users:
            raise UnknownNodeError(
                f"user {user_id} does not exist in network {self.name!r}"
            )
        user_id = int(user_id)
        out = set()
        for a, b in self._social_links:
            if a == user_id:
                out.add(b)
            elif b == user_id:
                out.add(a)
        return out

    # ------------------------------------------------------------------
    # matrix views
    # ------------------------------------------------------------------
    def user_index(self) -> Dict[int, int]:
        """Map user ids to dense row indices (sorted-id order)."""
        return {user_id: idx for idx, user_id in enumerate(self.user_ids)}

    def adjacency_matrix(self) -> np.ndarray:
        """Binary symmetric social adjacency matrix ``A`` (paper's A^t)."""
        index = self.user_index()
        n = self.n_users
        matrix = np.zeros((n, n))  # dense-ok: exact-path adjacency
        for a, b in self._social_links:
            i, j = index[a], index[b]
            matrix[i, j] = 1.0
            matrix[j, i] = 1.0
        return matrix

    def degree_vector(self) -> np.ndarray:
        """Per-user social degree, in dense-index order."""
        return self.adjacency_matrix().sum(axis=1)

    def stats(self) -> Dict[str, int]:
        """Counts matching the rows of the paper's Table I."""
        return {
            "users": self.n_users,
            "posts": self.n_posts,
            "locations": self.n_locations,
            "words": self.n_words,
            "social_links": self.n_social_links,
            "write_links": self.n_posts,
            "locate_links": self.n_checkins,
        }

    def __repr__(self) -> str:
        return (
            f"HeterogeneousNetwork(name={self.name!r}, users={self.n_users}, "
            f"posts={self.n_posts}, links={self.n_social_links})"
        )
