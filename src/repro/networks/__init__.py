"""Heterogeneous information network substrate.

The paper models each online social network as a *heterogeneous information
network* (HIN) whose node set is ``users ∪ posts ∪ words ∪ timestamps ∪
locations`` and whose edges connect users to users (social links), users to
posts (authorship), and posts to words / timestamps / locations.  Networks
that share users are grouped into an :class:`AlignedNetworks` container via
*anchor links*.
"""

from repro.networks.entities import (
    NodeType,
    User,
    Post,
    Word,
    Timestamp,
    Location,
)
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.social import SocialGraph
from repro.networks.aligned import AnchorLinks, AlignedNetworks
from repro.networks.io import (
    network_to_dict,
    network_from_dict,
    save_network_json,
    load_network_json,
    save_aligned_npz,
    load_aligned_npz,
)
from repro.networks.nx_bridge import (
    social_graph_to_networkx,
    network_to_networkx,
    network_from_networkx,
)

__all__ = [
    "NodeType",
    "User",
    "Post",
    "Word",
    "Timestamp",
    "Location",
    "HeterogeneousNetwork",
    "SocialGraph",
    "AnchorLinks",
    "AlignedNetworks",
    "network_to_dict",
    "network_from_dict",
    "save_network_json",
    "load_network_json",
    "save_aligned_npz",
    "load_aligned_npz",
    "social_graph_to_networkx",
    "network_to_networkx",
    "network_from_networkx",
]
