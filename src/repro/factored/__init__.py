"""Factored sparse + low-rank estimate representation.

The SLAMPRED objective's own structure — trace norm pushes the estimate
toward low rank, ℓ1 pushes it toward sparsity — implies the explicit
decomposition ``S = U diag(σ) Vᵀ + R`` with ``R`` sparse ("Estimation of
Simultaneously Sparse and Low Rank Matrices").  This package makes that
decomposition a first-class value type
(:class:`~repro.factored.estimate.FactoredEstimate`) plus a solver
(:class:`~repro.factored.solver.FactoredSolver`) that runs the paper's
proximal CCCP entirely on factors, never materializing a dense ``n×n``
matrix: O(nk + nnz) memory instead of O(n²).

The dense ``exact=True`` solver remains the parity oracle — see
``tests/parity/`` and DESIGN.md §13.
"""

from repro.factored.estimate import FactoredEstimate
from repro.factored.solver import FactoredResult, FactoredSolver

__all__ = ["FactoredEstimate", "FactoredResult", "FactoredSolver"]
