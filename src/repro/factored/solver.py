"""Outer-loop driver for the factored SLAMPRED solve.

The factored counterpart of :class:`~repro.optim.cccp.CCCPSolver`: the
iterate is a :class:`~repro.factored.estimate.FactoredEstimate`
(``S = U diag(σ) Vᵀ + R``) instead of an n×n array, the smooth part is a
:class:`~repro.optim.losses.FactoredSmoothObjective` built once from the
sparse adjacency and (optionally) a factored intimacy gradient, and each
round runs the
:class:`~repro.optim.forward_backward.FactoredForwardBackwardSolver`.

Because the intimacy gradient is constant (the paper's observation that
``∇v`` does not depend on ``S``), rounds differ only in their starting
iterate — exactly as in the dense solver — so Figure-3-style per-round
norms remain meaningful, just measured in the Frobenius surrogate the
factored representation can evaluate in O(nk²).

Checkpoint/resume is a dense-path feature; the factored solver keeps its
artifacts small enough that re-running a fit is cheaper than managing
snapshots, so it deliberately does not take a ``CheckpointManager``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import OptimizationError
from repro.factored.estimate import FactoredEstimate
from repro.observability.tracer import Tracer, is_tracing
from repro.optim.convergence import ConvergenceCriterion, IterationHistory
from repro.optim.forward_backward import FactoredForwardBackwardSolver
from repro.optim.losses import FactoredSmoothObjective


@dataclass
class FactoredResult:
    """Outcome of a factored CCCP run.

    Attributes
    ----------
    estimate:
        The final factored predictor ``S = U diag(σ) Vᵀ + R``.
    history:
        Flat per-inner-iteration diagnostics across all rounds; norms are
        the Frobenius surrogates described in DESIGN.md §13.
    round_norms:
        ``‖S‖_F`` at the end of each outer round.
    n_rounds:
        Number of outer rounds executed.
    converged:
        Whether the outer loop hit its tolerance before ``max_iterations``.
    """

    estimate: FactoredEstimate
    history: IterationHistory
    round_norms: Sequence[float]
    n_rounds: int
    converged: bool


class FactoredSolver:
    """Iterative CCCP with a factored proximal inner solver.

    Parameters
    ----------
    adjacency:
        The observed adjacency ``A`` as a scipy sparse matrix (the solve
        initializes at ``A``, as the paper prescribes).
    prox_terms:
        Non-smooth terms: exactly one trace-norm prox (with
        ``apply_factored``) plus entry-wise proxes (with
        ``apply_values``), in apply order.
    intimacy:
        The constant intimacy gradient ``G`` as a
        :class:`~repro.factored.estimate.FactoredEstimate`, a scipy
        sparse matrix, or ``None`` (SLAMPRED-H).
    inner_solver:
        The per-round :class:`FactoredForwardBackwardSolver`; its
        criterion bounds the per-round inner budget.
    outer_criterion:
        Stopping rule on the outer sequence, evaluated on the Frobenius
        update surrogate.
    """

    def __init__(
        self,
        adjacency,
        prox_terms: Sequence,
        intimacy=None,
        inner_solver: Optional[FactoredForwardBackwardSolver] = None,
        outer_criterion: Optional[ConvergenceCriterion] = None,
    ):
        self.objective = FactoredSmoothObjective(adjacency, intimacy)
        self.prox_terms = list(prox_terms)
        if not self.prox_terms:
            raise OptimizationError(
                "factored solve needs at least one prox term (the SVT)"
            )
        self.inner_solver = inner_solver or FactoredForwardBackwardSolver(
            step_size=1e-3,
            criterion=ConvergenceCriterion(tolerance=1e-5, max_iterations=30),
        )
        self.outer_criterion = outer_criterion or ConvergenceCriterion(
            tolerance=1e-4, max_iterations=50
        )

    def solve(
        self,
        initial: Optional[FactoredEstimate] = None,
        tracer: Optional[Tracer] = None,
    ) -> FactoredResult:
        """Run the outer loop from ``initial`` (default: ``S₀ = A``).

        Under a live ``tracer`` every outer round becomes a
        ``cccp_round`` span and each inner iteration record is stamped
        with its 1-based round index, mirroring the dense solver's
        telemetry shape.
        """
        if initial is None:
            current = FactoredEstimate.from_sparse(self.objective.adjacency)
        else:
            current = initial
            if current.shape != self.objective.adjacency.shape:
                raise OptimizationError(
                    f"initial estimate {current.shape} does not match "
                    f"adjacency {self.objective.adjacency.shape}"
                )
        history = IterationHistory()
        round_norms: list = []
        converged = False
        n_rounds = 0
        tracing = is_tracing(tracer)
        for _ in range(self.outer_criterion.max_iterations):
            n_rounds += 1
            previous = current
            if tracing:
                iterations_before = history.n_iterations
                with tracer.span("cccp_round"):
                    current = self.inner_solver.solve(
                        previous,
                        self.objective,
                        self.prox_terms,
                        history=history,
                        tracer=tracer,
                    )
                tracer.count("cccp.rounds")
                for record in history.records[iterations_before:]:
                    record.round = n_rounds
            else:
                current = self.inner_solver.solve(
                    previous, self.objective, self.prox_terms, history=history
                )
            round_norms.append(float(np.sqrt(current.frobenius_sq())))
            if self.outer_criterion.satisfied_value(
                current.delta_frobenius(previous)
            ):
                converged = True
                break
        return FactoredResult(
            estimate=current,
            history=history,
            round_norms=round_norms,
            n_rounds=n_rounds,
            converged=converged,
        )

    def __repr__(self) -> str:
        n = self.objective.adjacency.shape[0]
        return f"FactoredSolver(n={n}, prox_terms={len(self.prox_terms)})"
