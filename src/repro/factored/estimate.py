"""The factored estimate value type: ``U diag(σ) Vᵀ + CSR residual``.

A :class:`FactoredEstimate` stores a square ``n×n`` matrix as a (possibly
non-orthonormal) low-rank triplet plus a sparse residual, and exposes the
operations the factored solver, the serving layer and the parity harness
need — matvecs, row extraction, entry probes, Gram-based norms and inner
products — each costing O(nk), O(nnz·k) or O(nk²), never O(n²).

``to_dense`` exists for the small-``n`` parity oracle and for tests; the
solver and serving paths never call it at scale.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import sparse


def _empty_residual(n: int) -> sparse.csr_matrix:
    """A canonical all-zero ``n×n`` CSR residual."""
    return sparse.csr_matrix((n, n), dtype=float)


class FactoredEstimate:
    """A square matrix in factored form: ``u @ diag(s) @ vt + residual``.

    Parameters
    ----------
    u:
        Left factors, ``(n, k)``.  Not required to be orthonormal.
    s:
        Factor weights, ``(k,)``.  Kept separate so scaling the estimate
        is O(k) and singular values of SVT outputs are stored exactly.
    vt:
        Right factors, ``(k, n)``.
    residual:
        The sparse part, a ``(n, n)`` scipy CSR matrix (``None`` for an
        all-zero residual).

    Notes
    -----
    Instances are treated as immutable values by the solver: every update
    builds a new estimate (sharing factor arrays where possible), which is
    what makes convergence checks against the previous iterate safe.
    """

    __slots__ = ("u", "s", "vt", "residual")

    def __init__(
        self,
        u: np.ndarray,
        s: np.ndarray,
        vt: np.ndarray,
        residual: Optional[sparse.spmatrix] = None,
    ):
        u = np.asarray(u, dtype=float)
        s = np.asarray(s, dtype=float).ravel()
        vt = np.asarray(vt, dtype=float)
        if u.ndim != 2 or vt.ndim != 2:
            raise ValueError(
                f"u and vt must be 2-D, got {u.shape} and {vt.shape}"
            )
        n = u.shape[0]
        if vt.shape[1] != n:
            raise ValueError(
                f"u has {n} rows but vt has {vt.shape[1]} columns; the "
                "estimate must be square"
            )
        if u.shape[1] != s.size or vt.shape[0] != s.size:
            raise ValueError(
                f"rank mismatch: u {u.shape}, s ({s.size},), vt {vt.shape}"
            )
        if residual is None:
            residual = _empty_residual(n)
        else:
            residual = sparse.csr_matrix(residual, dtype=float)
            if residual.shape != (n, n):
                raise ValueError(
                    f"residual shape {residual.shape} does not match n={n}"
                )
        self.u = u
        self.s = s
        self.vt = vt
        self.residual = residual

    # -- constructors ---------------------------------------------------
    @classmethod
    def zeros(cls, n: int) -> "FactoredEstimate":
        """The all-zero ``n×n`` estimate (rank 0, empty residual)."""
        n = int(n)
        return cls(
            np.zeros((n, 0)), np.zeros(0), np.zeros((0, n)), _empty_residual(n)
        )

    @classmethod
    def from_sparse(cls, matrix: sparse.spmatrix) -> "FactoredEstimate":
        """Wrap a sparse matrix as a rank-0 estimate (residual only)."""
        matrix = sparse.csr_matrix(matrix, dtype=float)
        n = matrix.shape[0]
        return cls(np.zeros((n, 0)), np.zeros(0), np.zeros((0, n)), matrix)

    @classmethod
    def from_lowrank(
        cls, u: np.ndarray, s: np.ndarray, vt: np.ndarray
    ) -> "FactoredEstimate":
        """Wrap an SVT-style triplet as a pure low-rank estimate."""
        return cls(u, s, vt, None)

    @classmethod
    def compress(
        cls,
        matrix: np.ndarray,
        rank: int,
        residual_nnz: int = 0,
    ) -> "FactoredEstimate":
        """Factored approximation of a small dense matrix.

        Takes the top-``rank`` SVD triplets, then keeps the
        ``residual_nnz`` largest-magnitude entries of what the low-rank
        part misses as the sparse residual.  This is how the dense
        intimacy gradient enters the factored solver: the low-rank part
        carries the global ranking structure, the residual the strongest
        pairwise detail.  Only meaningful at small ``n`` (it reads the
        dense input); the factored fit path uses it exactly once per fit.
        """
        matrix = np.asarray(matrix, dtype=float)
        n = matrix.shape[0]
        rank = max(0, min(int(rank), n))
        u, singular, vt = np.linalg.svd(matrix, full_matrices=False)
        u, singular, vt = u[:, :rank], singular[:rank], vt[:rank]
        keep = (None if residual_nnz <= 0
                else min(int(residual_nnz), matrix.size))
        if keep is None:
            return cls(u, singular, vt, _empty_residual(n))
        remainder = matrix - (u * singular) @ vt
        flat = np.abs(remainder).ravel()
        if keep < flat.size:
            cutoff = np.partition(flat, flat.size - keep)[flat.size - keep]
            # A strictly-positive cutoff keeps the residual honest: exact
            # zeros of the remainder never become stored entries.
            mask = np.abs(remainder) >= max(cutoff, np.finfo(float).tiny)
        else:
            mask = remainder != 0.0
        residual = sparse.csr_matrix(np.where(mask, remainder, 0.0))
        return cls(u, singular, vt, residual)

    # -- basic properties -----------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """The (square) dense-equivalent shape."""
        n = self.u.shape[0]
        return (n, n)

    @property
    def n_users(self) -> int:
        """Number of rows (= columns) of the represented matrix."""
        return self.u.shape[0]

    @property
    def rank(self) -> int:
        """Number of stored factor columns (not the numerical rank)."""
        return self.s.size

    @property
    def residual_nnz(self) -> int:
        """Stored entries of the sparse residual."""
        return int(self.residual.nnz)

    def memory_bytes(self) -> int:
        """Bytes held by the factors and the residual arrays (O(nk + nnz))."""
        return int(
            self.u.nbytes
            + self.s.nbytes
            + self.vt.nbytes
            + self.residual.data.nbytes
            + self.residual.indices.nbytes
            + self.residual.indptr.nbytes
        )

    # -- linear-operator protocol ---------------------------------------
    def matmat(self, block: np.ndarray) -> np.ndarray:
        """``self @ block`` for a dense ``(n,)`` or ``(n, b)`` block."""
        block = np.asarray(block, dtype=float)
        out = (self.u * self.s) @ (self.vt @ block)
        if self.residual.nnz:
            out += self.residual @ block
        return out

    def rmatmat(self, block: np.ndarray) -> np.ndarray:
        """``self.T @ block`` for a dense ``(n,)`` or ``(n, b)`` block."""
        block = np.asarray(block, dtype=float)
        out = self.vt.T @ ((self.s * (block.T @ self.u)).T
                           if block.ndim == 2
                           else self.s * (block @ self.u))
        if self.residual.nnz:
            out += self.residual.T @ block
        return out

    def rows(self, indices) -> np.ndarray:
        """Dense rows ``self[indices, :]`` — one O(mk·n) matvec block.

        This is the serving layer's scoring primitive: one user's
        candidate scores are ``u_i diag(s) Vᵀ`` plus that user's sparse
        residual row.
        """
        indices = np.atleast_1d(np.asarray(indices, dtype=int))
        out = (self.u[indices] * self.s) @ self.vt
        if self.residual.nnz:
            out += self.residual[indices].toarray()
        return out

    def entries(self, rows, cols) -> np.ndarray:
        """Entries ``self[rows[i], cols[i]]`` in O(m·k + m·log-ish) time."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        values = self.lowrank_entries(rows, cols)
        if self.residual.nnz:
            # csr fancy indexing of individual entries is O(log deg) each;
            # vectorized via the matrix interface.
            values = values + np.asarray(
                self.residual[rows, cols]
            ).ravel()
        return values

    def lowrank_entries(self, rows, cols) -> np.ndarray:
        """Entries of the low-rank part only, ``(u_r * s) · vt_c``."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        if self.rank == 0:
            return np.zeros(rows.shape, dtype=float)
        return np.einsum(
            "ik,ik->i", self.u[rows] * self.s, self.vt[:, cols].T
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the dense matrix — parity oracle / small-n only."""
        dense = (self.u * self.s) @ self.vt
        if self.residual.nnz:
            coo = self.residual.tocoo()
            dense[coo.row, coo.col] += coo.data
        return dense

    # -- algebra ---------------------------------------------------------
    def scaled(self, alpha: float) -> "FactoredEstimate":
        """``alpha * self`` — O(k + nnz), factors shared."""
        alpha = float(alpha)
        return FactoredEstimate(
            self.u, alpha * self.s, self.vt, self.residual.multiply(alpha)
        )

    def with_residual(
        self, residual: Optional[sparse.spmatrix]
    ) -> "FactoredEstimate":
        """A copy of this estimate with the residual replaced."""
        return FactoredEstimate(self.u, self.s, self.vt, residual)

    def lowrank_frobenius_sq(self) -> float:
        """``‖U diag(s) Vᵀ‖_F²`` via the k×k Gram matrices (O(nk²))."""
        if self.rank == 0:
            return 0.0
        us = self.u * self.s
        return float(np.sum((us.T @ us) * (self.vt @ self.vt.T)))

    def lowrank_inner(self, other: "FactoredEstimate") -> float:
        """``⟨L_self, L_other⟩`` of the two low-rank parts (O(nk²))."""
        if self.rank == 0 or other.rank == 0:
            return 0.0
        us_a = self.u * self.s
        us_b = other.u * other.s
        return float(np.sum((us_a.T @ us_b) * (self.vt @ other.vt.T)))

    def lowrank_inner_sparse(self, matrix: sparse.spmatrix) -> float:
        """``⟨L_self, M⟩`` for a sparse ``M`` (O(nnz(M)·k))."""
        coo = sparse.coo_matrix(matrix)
        if coo.nnz == 0 or self.rank == 0:
            return 0.0
        return float(
            self.lowrank_entries(coo.row, coo.col) @ coo.data
        )

    def frobenius_sq(self) -> float:
        """``‖self‖_F²`` without densifying (Gram + cross terms)."""
        value = self.lowrank_frobenius_sq()
        if self.residual.nnz:
            value += 2.0 * self.lowrank_inner_sparse(self.residual)
            value += float(np.sum(self.residual.data**2))
        return value

    def lowrank_singular_values(self) -> np.ndarray:
        """Singular values of the low-rank part, descending (O(nk²)).

        Exact for arbitrary (non-orthonormal) factors: QR both factor
        blocks and take the SVD of the small core.
        """
        if self.rank == 0:
            return np.zeros(0)
        q_left, r_left = np.linalg.qr(self.u * self.s)
        q_right, r_right = np.linalg.qr(self.vt.T)
        del q_left, q_right
        return np.linalg.svd(r_left @ r_right.T, compute_uv=False)

    def delta_frobenius(self, other: "FactoredEstimate") -> float:
        """``‖self − other‖_F`` via Gram expansions — no dense temporary.

        Expands ``‖A − B‖² = ‖A‖² − 2⟨A, B⟩ + ‖B‖²`` over the four
        low-rank/sparse blocks; small cancellation error is acceptable for
        the convergence surrogate this feeds.
        """
        diff_sparse = (self.residual - other.residual).tocsr()
        value = (
            self.lowrank_frobenius_sq()
            + other.lowrank_frobenius_sq()
            - 2.0 * self.lowrank_inner(other)
            + float(np.sum(diff_sparse.data**2))
            + 2.0 * self.lowrank_inner_sparse(diff_sparse)
            - 2.0 * other.lowrank_inner_sparse(diff_sparse)
        )
        return float(np.sqrt(max(value, 0.0)))

    # -- single-array codec ----------------------------------------------
    def pack(self) -> np.ndarray:
        """Flatten the estimate into one 1-D float array.

        Layout: a ``[n, k, nnz]`` header followed by ``u`` (row-major),
        ``s``, ``vt`` (row-major) and the residual's CSR ``data``,
        ``indices`` and ``indptr`` arrays.  Exists so consumers whose
        snapshot format holds exactly one ndarray — the round-based
        :class:`~repro.reliability.checkpoints.CheckpointManager`, which
        the sharded solver reuses for per-shard fit checkpoints — can
        round-trip a factored estimate losslessly; CSR index values are
        integers well inside float64's exact range.
        """
        residual = self.residual.tocsr()
        n, k, nnz = self.n_users, self.rank, int(residual.nnz)
        return np.concatenate(
            [
                np.array([n, k, nnz], dtype=float),
                self.u.ravel(),
                self.s,
                self.vt.ravel(),
                residual.data.astype(float),
                residual.indices.astype(float),
                residual.indptr.astype(float),
            ]
        )

    @classmethod
    def unpack(cls, packed: np.ndarray) -> "FactoredEstimate":
        """Rebuild an estimate from a :meth:`pack` array.

        Raises ``ValueError`` when the array's header is inconsistent
        with its length (a truncated or foreign snapshot).
        """
        packed = np.asarray(packed, dtype=float).ravel()
        if packed.size < 3:
            raise ValueError(
                f"packed estimate needs a [n, k, nnz] header, got "
                f"{packed.size} values"
            )
        n, k, nnz = (int(v) for v in packed[:3])
        if n < 0 or k < 0 or nnz < 0:
            raise ValueError(
                f"packed estimate header is negative: n={n}, k={k}, nnz={nnz}"
            )
        expected = 3 + 2 * n * k + k + 2 * nnz + n + 1
        if packed.size != expected:
            raise ValueError(
                f"packed estimate of {packed.size} values does not match "
                f"its header (n={n}, k={k}, nnz={nnz} needs {expected})"
            )
        cursor = 3
        u = packed[cursor:cursor + n * k].reshape(n, k)
        cursor += n * k
        s = packed[cursor:cursor + k]
        cursor += k
        vt = packed[cursor:cursor + k * n].reshape(k, n)
        cursor += k * n
        data = packed[cursor:cursor + nnz]
        cursor += nnz
        indices = packed[cursor:cursor + nnz].astype(np.int64)
        cursor += nnz
        indptr = packed[cursor:].astype(np.int64)
        residual = sparse.csr_matrix((data, indices, indptr), shape=(n, n))
        return cls(u, s, vt, residual)

    def __repr__(self) -> str:
        return (
            f"FactoredEstimate(n={self.n_users}, rank={self.rank}, "
            f"residual_nnz={self.residual_nnz})"
        )
