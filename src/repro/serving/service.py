"""The in-process link-prediction service: score, top-k, hot-swap reload.

:class:`LinkPredictionService` is the layer every front-end (HTTP handler,
micro-batcher, CLI) talks to.  It owns

* the current :class:`~repro.serving.artifacts.LoadedArtifact` (predictor +
  known-link adjacency) pulled from an
  :class:`~repro.serving.artifacts.ArtifactStore`,
* a pre-masked *candidate matrix* — scores with ``-inf`` written over the
  diagonal and every already-known link, so ranking is a single vectorized
  ``argpartition`` per row,
* a :class:`~repro.serving.cache.RankingCache` keyed by
  ``(version, user, k)``, and
* a :class:`~repro.observability.Tracer` through which every request path
  records latency spans and counters (``serve.requests``,
  ``serve.cache_hit``, ``serve.reloads``, …).

``reload()`` hot-swaps to the store's newest version atomically under a
lock and *falls back to the artifact already being served* when the new
one fails integrity validation — a corrupt publish can never take the
service down.
"""

from __future__ import annotations

import threading
import time
from itertools import repeat
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.exceptions import (
    ConfigurationError,
    RetryExhaustedError,
    SerializationError,
    UnknownNodeError,
)
from repro.observability.cells import CellBank
from repro.observability.logging import get_logger
from repro.observability.metrics import MetricsRegistry
from repro.observability.sampling import SamplingTracer
from repro.observability.tracer import Tracer
from repro.reliability.breaker import OPEN, CircuitBreaker
from repro.reliability.faults import fault_point
from repro.reliability.retry import RetryPolicy, call_with_retry
from repro.serving.artifacts import ArtifactStore, LoadedArtifact
from repro.serving.cache import RankingCache
from repro.utils.validation import check_integer

DEFAULT_LOAD_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay=0.02,
    multiplier=2.0,
    max_delay=0.2,
    retry_on=(SerializationError, OSError),
)
"""Store reads are retried under this policy: a read racing a publish or a
transient I/O hiccup recovers in tens of milliseconds, while a genuinely
corrupt artifact exhausts the attempts quickly and surfaces as
:class:`~repro.exceptions.RetryExhaustedError` chaining the corruption."""

_log = get_logger("repro.serving.service")

Ranking = List[Tuple[int, float]]
"""A top-k answer: ``(candidate index, score)`` pairs, best first."""


class LinkPredictionService:
    """Serve link-prediction queries from the latest store artifact.

    Parameters
    ----------
    store:
        An :class:`~repro.serving.artifacts.ArtifactStore` or the path of
        one; the latest version is loaded at construction.
    cache_size:
        Capacity of the per-user ranking cache.
    tracer:
        Telemetry sink; a fresh
        :class:`~repro.observability.sampling.SamplingTracer` (striped
        counters, head-sampled spans) is created when omitted so
        ``stats()`` always has counters to report while the hot path
        stays lock-free.  Pass a plain :class:`Tracer` to capture every
        span unconditionally.
    version:
        Pin an explicit artifact version instead of the latest.
    registry:
        Scrapeable metrics sink
        (:class:`~repro.observability.metrics.MetricsRegistry`); a fresh
        live registry is created when omitted so ``/metrics`` always has
        series to expose.  Pass a
        :class:`~repro.observability.metrics.NullRegistry` (paired with a
        :class:`~repro.observability.NullTracer`) for the zero-overhead
        uninstrumented path.
    cells:
        Optional shared :class:`~repro.observability.cells.CellBank` for
        the hot-tier striped metrics; a private bank over ``registry``
        is created when omitted.  Pass one explicitly to share cells
        between the service, its tracer and a
        :class:`~repro.observability.cells.CellAggregator`.

    Examples
    --------
    >>> import tempfile
    >>> import numpy as np
    >>> from repro.models.persistence import FrozenPredictor
    >>> from repro.serving.artifacts import ArtifactStore
    >>> store = ArtifactStore(tempfile.mkdtemp())
    >>> _ = store.publish(FrozenPredictor(np.arange(9.0).reshape(3, 3)))
    >>> service = LinkPredictionService(store)
    >>> service.top_k(0, k=1)
    [(2, 2.0)]
    """

    def __init__(
        self,
        store: Union[ArtifactStore, str],
        cache_size: int = 1024,
        tracer: Optional[Tracer] = None,
        version: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        load_retry: Optional[RetryPolicy] = None,
        reload_breaker: Optional[CircuitBreaker] = None,
        cells: Optional[CellBank] = None,
        enable_degraded_tier: bool = False,
    ):
        self.store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cells = cells if cells is not None else CellBank(self.registry)
        self.tracer = (
            tracer
            if tracer is not None
            else SamplingTracer(self.registry, cells=self.cells)
        )
        if self.tracer.registry is None and self.tracer.enabled:
            self.tracer.registry = self.registry
        self.cache = RankingCache(
            cache_size, registry=self.registry, cells=self.cells
        )
        # Pre-bound hot-path counter handles: one attribute read + one
        # ``.inc()`` per request instead of dict lookups in ``count``.
        self._c_requests = self.tracer.hot_counter("serve.requests")
        self._c_topk = self.tracer.hot_counter("serve.topk_requests")
        self._c_score = self.tracer.hot_counter("serve.score_requests")
        self._c_hit = self.tracer.hot_counter("serve.cache_hit")
        self._c_miss = self.tracer.hot_counter("serve.cache_miss")
        self._lock = threading.RLock()
        self._artifact: LoadedArtifact = None
        self._candidates: np.ndarray = None
        # Monotonic clock for all duration math: NTP/wall-clock jumps must
        # never corrupt uptime or latency numbers.
        self._started_at = time.monotonic()
        self._last_reload_error: Optional[str] = None
        self._m_reload_success = self.registry.counter(
            "serving.reload.success", help="Successful hot-swap reloads."
        )
        self._m_reload_failure = self.registry.counter(
            "serving.reload.failure",
            help="Reloads rejected by integrity validation.",
        )
        self._m_reload_noop = self.registry.counter(
            "serving.reload.noop",
            help="Reload calls that found no newer version.",
        )
        self._m_uptime = self.registry.gauge(
            "serving.uptime_seconds", help="Seconds since service start."
        )
        self._m_version = self.registry.gauge(
            "serving.artifact_version", help="Artifact version being served."
        )
        self._load_retry = (
            load_retry if load_retry is not None else DEFAULT_LOAD_RETRY
        )
        # Degraded tier (DESIGN.md §16.5): a common-neighbor scorer built
        # from the published adjacency, served while the reload breaker is
        # open or a caller (the streaming pipeline) engaged it explicitly.
        self._enable_degraded = bool(enable_degraded_tier)
        self._degraded_scorer = None
        self._degraded_reason: Optional[str] = None
        self._m_degraded = self.registry.gauge(
            "serving.degraded_mode",
            help="1 while answers come from the degraded common-neighbor tier.",
        )
        self._m_degraded_requests = self.registry.counter(
            "serving.degraded.requests",
            help="Requests answered by the degraded tier.",
        )
        # The breaker only guards *reloads*: once it trips, reload calls
        # short-circuit and the already-installed artifact keeps serving
        # (stale-serve) until the recovery probe finds a healthy store.
        self._reload_breaker = reload_breaker or CircuitBreaker(
            "reload",
            failure_threshold=3,
            recovery_timeout=5.0,
            registry=self.registry,
        )
        self._install(self._load(version))

    def _load(self, version: Optional[int]) -> LoadedArtifact:
        """One retried, metric-counted artifact read from the store."""
        return call_with_retry(
            lambda: self.store.load(version),
            self._load_retry,
            name="artifact.load",
            registry=self.registry,
        )

    # -- artifact state -------------------------------------------------
    def _install(self, artifact: LoadedArtifact) -> None:
        """Swap in a validated artifact and rebuild the candidate source.

        Dense artifacts pre-mask the full score matrix as before.
        Factored artifacts install a :class:`_FactoredCandidates` view
        instead: rows are computed on demand from the O(nk) factors (one
        ``u_i Vᵀ`` matvec each), so install cost and resident memory stay
        O(nk) at any user count.
        """
        predictor = artifact.predictor
        if getattr(predictor, "factored", False):
            candidates = _FactoredCandidates(
                predictor.factored_estimate, artifact.adjacency
            )
        else:
            scores = predictor.score_matrix
            candidates = np.array(scores, dtype=float)
            adjacency = artifact.adjacency
            if adjacency is not None:
                if sparse.issparse(adjacency):
                    # Sparse published graphs (the streaming pipeline's
                    # shape) mask via coordinates — no dense expansion.
                    coo = adjacency.tocoo()
                    known = coo.data > 0
                    candidates[coo.row[known], coo.col[known]] = -np.inf
                else:
                    candidates[adjacency > 0] = -np.inf
            np.fill_diagonal(candidates, -np.inf)
        scorer = None
        if self._enable_degraded and artifact.adjacency is not None:
            from repro.serving.degraded import CommonNeighborScorer

            scorer = CommonNeighborScorer(artifact.adjacency)
        with self._lock:
            self._artifact = artifact
            self._candidates = candidates
            if scorer is not None:
                self._degraded_scorer = scorer
        self._m_version.set(artifact.version)

    @property
    def version(self) -> int:
        """The artifact version currently being served."""
        return self._artifact.version

    @property
    def n_users(self) -> int:
        """Number of users covered by the current artifact."""
        return self._artifact.n_users

    @property
    def artifact(self) -> LoadedArtifact:
        """The currently-served artifact (predictor, manifest, adjacency)."""
        return self._artifact

    def reload(self) -> bool:
        """Hot-swap to the store's newest version; ``True`` if swapped.

        A no-op when the served version is already the newest.  When the
        newest version fails validation (checksum mismatch, unreadable
        archive) even after the retry policy, the previous artifact keeps
        serving, the failure is counted (``serve.reload_failed``), recorded
        in ``stats()`` and reported to the reload circuit breaker, and
        ``False`` is returned.  Once the breaker trips open, reload calls
        short-circuit entirely (``serve.reload_shortcircuit``) — the stale
        artifact keeps answering queries — until the breaker's recovery
        probe lets an attempt through again.  A fault armed at the
        ``serving.reload`` chaos site exercises exactly this degradation
        path.
        """
        with self.tracer.span("serve.reload"):
            if not self._reload_breaker.allow():
                self.tracer.count("serve.reload_shortcircuit")
                self._last_reload_error = (
                    "reload circuit breaker is open; serving stale version "
                    f"{self.version}"
                )
                return False
            try:
                fault_point("serving.reload")
                latest = self.store.resolve_latest()
                if latest == self.version:
                    self.tracer.count("serve.reload_noop")
                    self._m_reload_noop.inc()
                    self._reload_breaker.record_success()
                    return False
                artifact = self._load(latest)
            except (SerializationError, RetryExhaustedError) as exc:
                self._reload_breaker.record_failure()
                self.tracer.count("serve.reload_failed")
                self._m_reload_failure.inc()
                self._last_reload_error = str(exc)
                _log.warning(
                    "artifact reload failed; keeping served version",
                    served_version=self.version,
                    error=str(exc),
                )
                return False
            previous = self.version
            self._install(artifact)
            self.cache.invalidate()
            self._last_reload_error = None
            self._reload_breaker.record_success()
            self.tracer.count("serve.reloads")
            self._m_reload_success.inc()
            _log.info(
                "artifact hot-swapped",
                previous_version=previous,
                version=artifact.version,
                n_users=artifact.n_users,
            )
            return True

    # -- degraded tier --------------------------------------------------
    def engage_degraded(self, reason: str = "engaged") -> bool:
        """Explicitly switch answers to the degraded common-neighbor tier.

        Called by the streaming pipeline when its refit breaker opens.
        Returns ``False`` (and stays on the model) when the tier is
        disabled or no published adjacency exists to build it from.
        """
        if not self._enable_degraded or self._degraded_scorer is None:
            return False
        self._degraded_reason = str(reason)
        self._degraded()
        _log.warning("degraded tier engaged", reason=reason)
        return True

    def disengage_degraded(self) -> None:
        """Clear an explicit engagement (breaker-driven entry may remain)."""
        self._degraded_reason = None
        self._degraded()

    def _degraded(self) -> bool:
        """Whether this request should be answered by the degraded tier.

        True while the tier is enabled, buildable, and either explicitly
        engaged or forced by an **open** reload breaker (the store is
        misbehaving, so the installed model's staleness is unbounded).
        Also refreshes the ``serving.degraded_mode`` gauge so scrapes see
        transitions without waiting for a query.
        """
        active = (
            self._enable_degraded
            and self._degraded_scorer is not None
            and (
                self._degraded_reason is not None
                or self._reload_breaker.state == OPEN
            )
        )
        self._m_degraded.set(1.0 if active else 0.0)
        return active

    @property
    def degraded_active(self) -> bool:
        """Public read of the degraded-tier state (refreshes the gauge)."""
        return self._degraded()

    # -- readiness ------------------------------------------------------
    @property
    def reload_breaker(self) -> CircuitBreaker:
        """The circuit breaker guarding artifact reloads."""
        return self._reload_breaker

    def ready(self) -> bool:
        """Whether the service should receive traffic (``/readyz``).

        Liveness (``/healthz``) stays true as long as the process can
        answer at all; readiness additionally requires an installed
        artifact and a reload breaker that is not open — an open breaker
        means the store is misbehaving and this replica is serving stale
        data, so orchestrators should prefer healthier replicas.
        """
        return self._artifact is not None and (
            self._reload_breaker.state != OPEN
        )

    # -- queries --------------------------------------------------------
    def _check_user(self, user: int) -> int:
        user = int(user)
        if not 0 <= user < self.n_users:
            raise UnknownNodeError(
                f"user index {user} out of range (0..{self.n_users - 1})"
            )
        return user

    def score(self, u: int, v: int) -> float:
        """The raw model confidence for the pair ``(u, v)``.

        Routed through the predictor's pair-scoring API: an O(1) matrix
        read for dense artifacts, an O(k) factor dot for factored ones —
        never a dense materialization.
        """
        with self.tracer.span("serve.score"):
            self._c_requests.inc()
            self._c_score.inc()
            u, v = self._check_user(u), self._check_user(v)
            if self._degraded():
                self._m_degraded_requests.inc()
                return self._degraded_scorer.score(u, v)
            return float(self._artifact.predictor.score_pairs([(u, v)])[0])

    def is_known_link(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` is already connected in the published graph.

        ``False`` when the artifact was published without a graph.  Works
        for both dense and scipy-sparse published adjacencies.
        """
        u, v = self._check_user(u), self._check_user(v)
        adjacency = self._artifact.adjacency
        return bool(adjacency is not None and adjacency[u, v] > 0)

    def top_k(self, user: int, k: int = 10) -> Ranking:
        """The ``k`` best candidate links for ``user``, best first.

        Self-loops and already-known links never appear; users connected to
        everyone get an empty list.  Answers are cached per
        ``(version, user, k)``.
        """
        with self.tracer.span("serve.top_k"):
            self._c_requests.inc()
            self._c_topk.inc()
            user = self._check_user(user)
            k = check_integer(k, "k", minimum=1)
            if self._degraded():
                # Degraded answers are not model answers: never read from
                # or write to the version-keyed ranking cache.
                self._m_degraded_requests.inc()
                return self._degraded_scorer.top_k(user, k)
            key = (self.version, user, k)
            cached = self.cache.get(key)
            if cached is not None:
                self._c_hit.inc()
                return cached
            self._c_miss.inc()
            with self._lock:
                ranking = _rank_row(self._candidates[user], k)
            self.cache.put(key, ranking)
            return ranking

    def batch_top_k(
        self, users: Sequence[int], k: int = 10
    ) -> List[Ranking]:
        """Top-``k`` answers for many users in one vectorized scoring pass.

        Cached users are answered from the cache; the remaining rows are
        ranked together with a single ``argpartition`` call, which is what
        the micro-batcher relies on for throughput.
        """
        return self.batch_top_k_mixed(users, [k] * len(users))

    def batch_top_k_mixed(
        self, users: Sequence[int], ks: Sequence[int]
    ) -> List[Ranking]:
        """Per-request ``k`` values answered in one vectorized pass.

        The heavy numpy work — row extraction, one ``argpartition`` and
        one stable ``argsort`` at the batch's largest ``k`` — is shared
        by every request; only the final per-row list materialization is
        trimmed to each request's own ``k``.  This is what lets the
        micro-batcher coalesce mixed-``k`` traffic into a single scoring
        pass without building oversized answers.
        """
        with self.tracer.span("serve.batch_top_k"):
            if len(users) != len(ks):
                raise ConfigurationError(
                    f"{len(users)} users but {len(ks)} k values"
                )
            ks = [check_integer(k, "k", minimum=1) for k in ks]
            users = [self._check_user(u) for u in users]
            self._c_requests.inc(len(users))
            self._c_topk.inc(len(users))
            if self._degraded():
                self._m_degraded_requests.inc(len(users))
                return self._degraded_scorer.batch_top_k_mixed(users, ks)
            version = self.version
            answers: Dict[Tuple[int, int], Ranking] = {}
            missing: List[Tuple[int, int]] = []
            for user, k in zip(users, ks):
                pair = (user, k)
                cached = self.cache.get((version, user, k))
                if cached is not None:
                    self._c_hit.inc()
                    answers[pair] = cached
                elif pair not in answers:
                    self._c_miss.inc()
                    answers[pair] = None
                    missing.append(pair)
            if missing:
                with self._lock:
                    rows = self._candidates[[user for user, _ in missing]]
                    rankings = _rank_rows(
                        rows,
                        max(k for _, k in missing),
                        ks=[k for _, k in missing],
                    )
                for pair, ranking in zip(missing, rankings):
                    answers[pair] = ranking
                    self.cache.put((version, pair[0], pair[1]), ranking)
            return [answers[(user, k)] for user, k in zip(users, ks)]

    # -- introspection --------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        """Seconds since construction, immune to wall-clock jumps."""
        return time.monotonic() - self._started_at

    def observe_uptime(self) -> float:
        """Refresh the uptime gauge (called before every scrape)."""
        uptime = self.uptime_seconds
        self._m_uptime.set(uptime)
        return uptime

    def metrics_text(self) -> str:
        """The registry rendered as Prometheus text (uptime refreshed).

        Hot-tier cells are drained first, so a scrape always sees the
        merged striped totals even when no background aggregator runs.
        """
        self.observe_uptime()
        self.cells.drain()
        tracer_drain = getattr(self.tracer, "drain", None)
        if tracer_drain is not None:
            tracer_drain()
        return self.registry.render()

    def stats(self) -> Dict:
        """A JSON-compatible snapshot of the service's state and counters."""
        manifest = self._artifact.manifest
        return {
            "version": self.version,
            "model": manifest.get("name"),
            "n_users": self.n_users,
            "store": self.store.root,
            "uptime_seconds": self.observe_uptime(),
            "cache": self.cache.stats(),
            "counters": dict(self.tracer.counters),
            "last_reload_error": self._last_reload_error,
            "ready": self.ready(),
            "reload_breaker": self._reload_breaker.state,
            "degraded": self._degraded(),
            "degraded_reason": self._degraded_reason,
        }


class _FactoredCandidates:
    """On-demand masked candidate rows backed by a factored estimate.

    The factored analogue of the dense pre-masked candidate matrix:
    ``self[user]`` (or ``self[list_of_users]``) computes the requested
    score rows from the O(nk) factors — ``(u_i ∘ σ) Vᵀ`` plus the CSR
    residual row, clipped at zero to match the factored scoring
    convention — and writes ``-inf`` over the diagonal entry and every
    already-known link before ranking sees them.  Nothing n×n is ever
    resident; each query touches O(n) per requested row.
    """

    def __init__(self, estimate, adjacency=None):
        from scipy import sparse

        self.estimate = estimate
        if adjacency is None:
            self._known = None
        else:
            known = sparse.csr_matrix(adjacency)
            # Keep only positive entries so explicit zeros never mask.
            known = (known > 0).tocsr()
            self._known = known

    def _rows(self, users: np.ndarray) -> np.ndarray:
        rows = self.estimate.rows(users)
        np.maximum(rows, 0.0, out=rows)
        for offset, user in enumerate(users):
            if self._known is not None:
                start, end = (
                    self._known.indptr[user],
                    self._known.indptr[user + 1],
                )
                rows[offset, self._known.indices[start:end]] = -np.inf
            rows[offset, user] = -np.inf
        return rows

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return self._rows(np.array([int(key)]))[0]
        return self._rows(np.asarray(key, dtype=int))

    def __repr__(self) -> str:
        return f"_FactoredCandidates(n={self.estimate.n_users})"


def _rank_row(row: np.ndarray, k: int) -> Ranking:
    """Rank one candidate row: finite entries only, best first."""
    finite = np.flatnonzero(np.isfinite(row))
    if finite.size == 0:
        return []
    kth = min(k, finite.size)
    top = finite[np.argpartition(-row[finite], kth - 1)[:kth]]
    top = top[np.argsort(-row[top], kind="stable")]
    return [(int(j), float(row[j])) for j in top]


def _rank_rows(
    rows: np.ndarray, k: int, ks: Optional[Sequence[int]] = None
) -> List[Ranking]:
    """Rank a stack of candidate rows in two vectorized passes.

    One ``argpartition`` narrows every row to its top ``k`` columns, one
    ``axis=1`` stable argsort orders all of them together; the only
    per-row work left is materializing the output lists.  -inf (masked)
    entries sort last and are dropped per row.  With ``ks`` given, row
    ``i``'s output list is trimmed to ``ks[i]`` entries (each at most
    ``k``) — the shared numpy passes still run once at ``k``, but no row
    materializes more tuples than its own request asked for.
    """
    n = rows.shape[1]
    kth = min(k, n)
    part = np.argpartition(-rows, kth - 1, axis=1)[:, :kth]
    values = np.take_along_axis(rows, part, axis=1)
    order = np.argsort(-values, axis=1, kind="stable")
    cols = np.take_along_axis(part, order, axis=1)
    values = np.take_along_axis(values, order, axis=1)
    finite = np.isfinite(values)
    limits = repeat(kth) if ks is None else ks
    rankings: List[Ranking] = []
    for row_cols, row_values, row_finite, limit in zip(
        cols, values, finite, limits
    ):
        row_cols = row_cols[row_finite][:limit]
        row_values = row_values[row_finite][:limit]
        rankings.append(
            [(int(j), float(v)) for j, v in zip(row_cols, row_values)]
        )
    return rankings
