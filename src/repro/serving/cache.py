"""LRU cache for per-user ranking results.

Top-k answers are tiny (k index/score pairs) but computing one touches an
entire row of the score matrix, so the service keeps the most recently
served rankings in a bounded LRU map keyed by ``(artifact version, user,
k)``.  The cache keeps its own hit/miss/eviction counters — surfaced in
``/v1/stats`` — and is invalidated wholesale on every successful hot-swap
reload, so stale rankings can never outlive the artifact that produced
them.  All operations are thread-safe (the HTTP front-end is a threading
server).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from repro.observability.cells import CellBank
from repro.observability.metrics import NULL_REGISTRY, MetricsRegistry
from repro.utils.validation import check_integer

_MISS = object()


class RankingCache:
    """A bounded, thread-safe LRU map with observable counters.

    Parameters
    ----------
    capacity:
        Maximum number of cached rankings; the least recently used entry is
        evicted once the bound is exceeded.
    registry:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`;
        when given, hit/miss/eviction/invalidation counters and a size
        gauge are published as ``serving.cache.*`` series alongside the
        cache's own integer counters.
    cells:
        Optional :class:`~repro.observability.cells.CellBank`.  When
        given, the hot get/put path skips the registry entirely (the
        cache's own lock-guarded integers remain the source of truth)
        and the ``serving.cache.*`` series are overwrite-synced from
        those integers at every bank drain — same exposed numbers, no
        extra lock traffic per request.

    Examples
    --------
    >>> cache = RankingCache(capacity=2)
    >>> cache.put(("v1", 0, 10), [(3, 0.9)])
    >>> cache.get(("v1", 0, 10))
    [(3, 0.9)]
    >>> cache.get(("v1", 1, 10)) is None
    True
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (1, 1)
    """

    def __init__(
        self,
        capacity: int = 1024,
        registry: Optional[MetricsRegistry] = None,
        cells: Optional[CellBank] = None,
    ):
        self.capacity = check_integer(capacity, "capacity", minimum=1)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        if cells is not None and registry is not None and registry.enabled:
            # Hot tier: no per-request registry writes; the bank drain
            # overwrite-syncs the series from the integers below.
            cells.add_source(self._sync_registry)
            registry = NULL_REGISTRY
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_hits = registry.counter(
            "serving.cache.hits", help="Ranking cache hits."
        )
        self._m_misses = registry.counter(
            "serving.cache.misses", help="Ranking cache misses."
        )
        self._m_evictions = registry.counter(
            "serving.cache.evictions", help="LRU evictions."
        )
        self._m_invalidations = registry.counter(
            "serving.cache.invalidations",
            help="Wholesale invalidations (artifact reloads).",
        )
        self._m_size = registry.gauge(
            "serving.cache.size", help="Entries currently cached."
        )

    def _sync_registry(self, registry: MetricsRegistry) -> None:
        """Overwrite the ``serving.cache.*`` series to match the integers."""
        with self._lock:
            hits, misses = self._hits, self._misses
            evictions = self._evictions
            invalidations = self._invalidations
            size = len(self._entries)
        registry.counter(
            "serving.cache.hits", help="Ranking cache hits."
        )._unlabeled()._set_total(hits)
        registry.counter(
            "serving.cache.misses", help="Ranking cache misses."
        )._unlabeled()._set_total(misses)
        registry.counter(
            "serving.cache.evictions", help="LRU evictions."
        )._unlabeled()._set_total(evictions)
        registry.counter(
            "serving.cache.invalidations",
            help="Wholesale invalidations (artifact reloads).",
        )._unlabeled()._set_total(invalidations)
        registry.gauge(
            "serving.cache.size", help="Entries currently cached."
        ).set(size)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value for ``key`` (marking it most recently used)."""
        with self._lock:
            value = self._entries.get(key, _MISS)
            if value is _MISS:
                self._misses += 1
                hit = False
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                hit = True
        if hit:
            self._m_hits.inc()
            return value
        self._m_misses.inc()
        return default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1
                evicted += 1
            size = len(self._entries)
        if evicted:
            self._m_evictions.inc(evicted)
        self._m_size.set(size)

    def invalidate(self) -> int:
        """Drop every entry (called on artifact reload); returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._invalidations += 1
        self._m_invalidations.inc()
        self._m_size.set(0)
        return dropped

    def stats(self) -> Dict[str, Any]:
        """Counters and occupancy: size, capacity, hits, misses, evictions…"""
        with self._lock:
            total = self._hits + self._misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "hit_rate": (self._hits / total) if total else 0.0,
            }
