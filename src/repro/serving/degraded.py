"""Degraded-tier scorer: cheap structural answers when the model is sick.

When artifact reloads or streaming refits fail repeatedly, the serving
layer should keep answering *something* rather than 5xx-ing — but the
installed model may be arbitrarily stale, and during a prolonged outage
even installing one may be impossible.  The degraded tier is the last
rung of that ladder: a :class:`CommonNeighborScorer` built from nothing
but the published adjacency, serving the classic common-neighbor count
(the unweighted LinkProp/CN baseline every link-prediction survey uses as
its floor).  It needs no factors, no SVD and no solver — one sparse
row-matvec per query — so it survives any failure mode that leaves the
graph readable.

:class:`~repro.serving.service.LinkPredictionService` engages it in two
ways (see DESIGN.md §16.5):

* automatically, while its reload circuit breaker is **open** — repeated
  reload failures mean the store is misbehaving and the installed model's
  age is unbounded;
* explicitly, via :meth:`LinkPredictionService.engage_degraded`, which
  the streaming pipeline calls when *its* refit breaker opens.

Answers from this tier bypass the version-keyed ranking cache (they are
not model answers and must never be cached as such).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import ConfigurationError

Ranking = List[Tuple[int, float]]


class CommonNeighborScorer:
    """Rank candidate links by common-neighbor count over a fixed graph.

    Parameters
    ----------
    adjacency:
        The known-link structure (dense array or scipy sparse); any
        positive entry is an edge.  Stored as a binary CSR.

    Examples
    --------
    >>> import numpy as np
    >>> adj = np.array([[0, 1, 1, 0], [1, 0, 1, 0], [1, 1, 0, 1], [0, 0, 1, 0]])
    >>> scorer = CommonNeighborScorer(adj)
    >>> scorer.top_k(0, k=1)  # 0 and 3 share the neighbor 2
    [(3, 1.0)]
    """

    def __init__(self, adjacency):
        known = sparse.csr_matrix(adjacency)
        if known.shape[0] != known.shape[1]:
            raise ConfigurationError(
                f"adjacency must be square, got {known.shape}"
            )
        self._known = (known > 0).tocsr().astype(float)
        self.n_users = int(known.shape[0])

    def score(self, u: int, v: int) -> float:
        """Number of neighbors ``u`` and ``v`` share (O(deg) per call)."""
        row_u = self._known.getrow(int(u))
        row_v = self._known.getrow(int(v))
        return float(row_u.multiply(row_v).sum())

    def _candidate_rows(self, users: np.ndarray) -> np.ndarray:
        """Common-neighbor counts with self and known links masked out."""
        rows = np.asarray(
            (self._known[users] @ self._known).todense(), dtype=float
        )
        for offset, user in enumerate(users):
            start, end = self._known.indptr[user], self._known.indptr[user + 1]
            rows[offset, self._known.indices[start:end]] = -np.inf
            rows[offset, user] = -np.inf
        return rows

    def top_k(self, user: int, k: int = 10) -> Ranking:
        """Best ``k`` unlinked candidates for ``user`` by shared neighbors."""
        return self.batch_top_k_mixed([user], [k])[0]

    def batch_top_k_mixed(
        self, users: Sequence[int], ks: Sequence[int]
    ) -> List[Ranking]:
        """Per-request ``k`` rankings in one sparse matmul pass."""
        users = np.asarray(list(users), dtype=int)
        rows = self._candidate_rows(users)
        rankings: List[Ranking] = []
        for row, k in zip(rows, ks):
            finite = np.flatnonzero(np.isfinite(row) & (row > 0))
            if finite.size == 0:
                rankings.append([])
                continue
            kth = min(int(k), finite.size)
            top = finite[np.argpartition(-row[finite], kth - 1)[:kth]]
            top = top[np.argsort(-row[top], kind="stable")]
            rankings.append([(int(v), float(row[v])) for v in top])
        return rankings
