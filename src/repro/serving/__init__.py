"""Model serving: versioned artifacts + a low-latency top-k service.

The deployment half of the reproduction — everything a serving process
needs, and nothing from the training stack:

* :mod:`repro.serving.artifacts` — :class:`ArtifactStore`, the
  directory-per-version on-disk store with ``manifest.json`` checksums and
  integrity-validated ``publish``/``resolve_latest``/``load``;
* :mod:`repro.serving.service` — :class:`LinkPredictionService` with
  ``score``/``top_k``/``batch_top_k`` and hot-swap ``reload()`` that falls
  back to the previous artifact when a new one fails validation;
* :mod:`repro.serving.cache` — the LRU :class:`RankingCache` with
  hit/miss/eviction counters;
* :mod:`repro.serving.batcher` — :class:`MicroBatcher`, coalescing
  concurrent queries into single vectorized scoring passes;
* :mod:`repro.serving.http` — the stdlib-only JSON endpoint
  (``/healthz``, ``/readyz``, ``/v1/topk``, ``/v1/score``, ``/v1/stats``)
  plus the Prometheus ``/metrics`` exposition, with optional load
  shedding (``max_inflight``) and per-request deadlines; its
  :class:`~repro.serving.http.EndpointRouter` is the shared,
  transport-independent dispatch core;
* :mod:`repro.serving.aio` — the asyncio front end (the ``serve``
  default): keep-alive/pipelined HTTP parsing on one event loop,
  scoring offloaded to a bounded worker pool, graceful SIGTERM drain;
  the threaded server stays available behind ``serve --legacy`` as the
  parity oracle.

Resilience (DESIGN.md §11): artifact reads are retried under a
:class:`~repro.reliability.RetryPolicy` and ``reload()`` sits behind a
:class:`~repro.reliability.CircuitBreaker` — a corrupt publish or a
flapping store degrades to stale-serving with ``/readyz`` flipping to 503,
never to an outage.  ``REPRO_CHAOS=1`` arms fault injection at the
``artifact.*``/``serving.*`` sites to rehearse exactly that.

Operate it from the command line::

    python -m repro.serving publish --store artifacts --scale 60 --seed 7
    python -m repro.serving inspect --store artifacts
    python -m repro.serving serve   --store artifacts --port 8080

Every request path is instrumented twice over: per-run spans/counters on a
:class:`repro.observability.Tracer`, and scrapeable series (route latency
histograms, cache and reload counters, batcher coalesce sizes) on a
:class:`repro.observability.MetricsRegistry` served from ``/metrics``,
with a request id propagated through every layer.  See DESIGN.md §8, §10
and §11.
"""

from repro.serving.aio import AsyncLinkPredictionServer, make_async_server
from repro.serving.artifacts import (
    MANIFEST_SCHEMA_VERSION,
    ArtifactStore,
    LoadedArtifact,
    file_sha256,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import RankingCache
from repro.serving.http import (
    EndpointRouter,
    LinkPredictionServer,
    make_server,
    serve,
)
from repro.serving.service import LinkPredictionService

__all__ = [
    "ArtifactStore",
    "LoadedArtifact",
    "MANIFEST_SCHEMA_VERSION",
    "file_sha256",
    "LinkPredictionService",
    "RankingCache",
    "MicroBatcher",
    "EndpointRouter",
    "LinkPredictionServer",
    "AsyncLinkPredictionServer",
    "make_server",
    "make_async_server",
    "serve",
]
