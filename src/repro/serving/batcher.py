"""Micro-batching front-end: coalesce concurrent queries into one pass.

Under concurrent load, many independent ``top_k`` calls each pay a full
row-partition; stacking them into a single
:meth:`~repro.serving.service.LinkPredictionService.batch_top_k` call
amortizes the numpy dispatch and partitions all rows in one vectorized
pass.  :class:`MicroBatcher` implements the classic pattern: callers block
on :meth:`submit`, a single worker thread drains the queue — waiting at
most ``max_wait_ms`` after the first request to let a batch accumulate, up
to ``max_batch`` — and distributes the batch's answers back to the
waiters.  Batch sizes and coalescing counters are recorded on the
service's tracer (``batcher.batches``, ``batcher.requests``, and the
``batcher.batch_size`` metric stream).
"""

from __future__ import annotations

import queue
import threading
import time
from typing import List, Optional

from repro.exceptions import ConfigurationError, DeadlineExceededError
from repro.observability.logging import current_request_id, get_logger
from repro.observability.metrics import BATCH_SIZE_BUCKETS
from repro.observability.propagation import current_trace
from repro.serving.service import LinkPredictionService, Ranking
from repro.utils.validation import check_integer

_log = get_logger("repro.serving.batcher")


class _Pending:
    """One waiting request: inputs, a completion event, and a result slot.

    The submitting thread's request id *and* active trace carrier are
    captured at construction so the worker thread — which runs outside
    any request context — can still attribute the batch's work to the
    HTTP requests it coalesced, and graft a ``batcher.batch`` span back
    onto each recording trace before waking its waiter.
    """

    __slots__ = (
        "user", "k", "event", "result", "error", "request_id", "trace"
    )

    def __init__(self, user: int, k: int):
        self.user = user
        self.k = k
        self.event = threading.Event()
        self.result: Optional[Ranking] = None
        self.error: Optional[BaseException] = None
        self.request_id = current_request_id()
        self.trace = current_trace()


class MicroBatcher:
    """Queue-backed batcher over a :class:`LinkPredictionService`.

    Parameters
    ----------
    service:
        The service whose ``batch_top_k`` executes the coalesced work.
    max_batch:
        Largest number of requests merged into one scoring pass.
    max_wait_ms:
        How long the worker waits after the first queued request for more
        to arrive; the latency cost of coalescing is bounded by this.

    Examples
    --------
    Use as a context manager so the worker thread is always joined::

        with MicroBatcher(service) as batcher:
            ranking = batcher.submit(user=0, k=10)
    """

    def __init__(
        self,
        service: LinkPredictionService,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
    ):
        self.service = service
        self.max_batch = check_integer(max_batch, "max_batch", minimum=1)
        if max_wait_ms < 0:
            raise ConfigurationError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}"
            )
        self.max_wait = float(max_wait_ms) / 1000.0
        self._queue: "queue.Queue[_Pending]" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        registry = service.registry
        self._m_batches = registry.counter(
            "serving.batcher.batches", help="Coalesced scoring passes."
        )
        self._m_requests = registry.counter(
            "serving.batcher.requests", help="Requests routed via the batcher."
        )
        self._m_batch_size = registry.histogram(
            "serving.batcher.batch_size",
            help="Requests coalesced per batch.",
            buckets=BATCH_SIZE_BUCKETS,
        )

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the worker thread is alive."""
        return self._worker is not None and self._worker.is_alive()

    def start(self) -> "MicroBatcher":
        """Launch the worker thread (idempotent); returns ``self``."""
        if not self.running:
            self._stopping.clear()
            self._worker = threading.Thread(
                target=self._run, name="repro-serving-batcher", daemon=True
            )
            self._worker.start()
        return self

    def stop(self) -> None:
        """Stop the worker, draining already-queued requests first."""
        if self._worker is None:
            return
        self._stopping.set()
        self._worker.join()
        self._worker = None

    def flush(self, timeout: float = 5.0) -> bool:
        """Block until every queued request has been handed to a batch.

        Used by graceful drain: the front end stops admitting work, then
        flushes so no waiter is left blocked on an abandoned queue entry.
        Returns ``True`` when the queue emptied within ``timeout``
        seconds, ``False`` otherwise (the worker may be wedged).
        """
        deadline = time.perf_counter() + max(0.0, timeout)
        while not self._queue.empty():
            if not self.running or time.perf_counter() >= deadline:
                return self._queue.empty()
            time.sleep(0.001)
        return True

    def __enter__(self) -> "MicroBatcher":
        """Start on entry."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop (and join the worker) on exit."""
        self.stop()

    # -- request path ---------------------------------------------------
    def submit(self, user: int, k: int = 10, timeout: float = 30.0) -> Ranking:
        """Enqueue one top-k query and block until its batch completes.

        ``timeout`` is the caller's remaining deadline budget; an answer
        that does not arrive in time raises
        :class:`~repro.exceptions.DeadlineExceededError`, which the HTTP
        layer maps to a 503.
        """
        if not self.running:
            raise ConfigurationError(
                "MicroBatcher is not running; call start() or use it as a "
                "context manager"
            )
        if timeout <= 0:
            raise DeadlineExceededError(
                "request deadline exhausted before the query was batched"
            )
        pending = _Pending(int(user), int(k))
        self._queue.put(pending)
        if not pending.event.wait(timeout):
            raise DeadlineExceededError(
                f"batched query timed out after {timeout}s"
            )
        if pending.error is not None:
            raise pending.error
        return pending.result

    # -- worker ---------------------------------------------------------
    def _run(self) -> None:
        """Worker loop: collect a batch, execute it, wake the waiters."""
        while True:
            batch = self._collect()
            if not batch:
                if self._stopping.is_set() and self._queue.empty():
                    return
                continue
            self._execute(batch)

    def _collect(self) -> List[_Pending]:
        """Block for the first request, then coalesce briefly arriving ones."""
        try:
            first = self._queue.get(timeout=0.05)
        except queue.Empty:
            return []
        batch = [first]
        deadline = time.monotonic() + self.max_wait
        while len(batch) < self.max_batch:
            timeout = deadline - time.monotonic()
            try:
                if timeout > 0:
                    batch.append(self._queue.get(timeout=timeout))
                else:
                    batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return batch

    def _execute(self, batch: List[_Pending]) -> None:
        """Run one coalesced pass and distribute answers (or the error)."""
        tracer = self.service.tracer
        tracer.count("batcher.batches")
        tracer.count("batcher.requests", len(batch))
        tracer.metric("batcher.batch_size", len(batch))
        self._m_batches.inc()
        self._m_requests.inc(len(batch))
        self._m_batch_size.observe(len(batch))
        if _log.isEnabledFor(10):  # logging.DEBUG; avoid building the id list
            _log.debug(
                "executing coalesced batch",
                batch_size=len(batch),
                request_ids=[p.request_id for p in batch if p.request_id],
            )
        # One true coalesced pass: mixed-k requests share a single
        # scoring pass at the batch's largest k — every request's answer
        # is a prefix of its top-max_k list (same descending order, same
        # tie-break), so per-request trimming is exact and happens inside
        # the service before any oversized list is materialized.  Grouping
        # by k here used to issue one scoring pass per distinct k, which
        # under mixed load made the batcher *slower* than sequential
        # queries.
        start = time.perf_counter()
        try:
            rankings = self.service.batch_top_k_mixed(
                [pending.user for pending in batch],
                [pending.k for pending in batch],
            )
        except BaseException as exc:  # propagate to every waiter
            message = f"{type(exc).__name__}: {exc}"
            for pending in batch:
                self._graft_span(pending, start, len(batch), error=message)
                pending.error = exc
                pending.event.set()
            return
        for pending, ranking in zip(batch, rankings):
            self._graft_span(pending, start, len(batch))
            pending.result = ranking
            pending.event.set()

    @staticmethod
    def _graft_span(
        pending: _Pending,
        start: float,
        batch_size: int,
        error: Optional[str] = None,
    ) -> None:
        """Attach the batch pass as a child span of the request's trace.

        Runs on the worker thread *before* ``event.set()``, so the
        submitting thread never races the graft; recording traces end up
        with one ``batcher.batch`` span carrying the coalesced batch
        size — the cross-thread half of the stitched span tree.
        """
        trace = pending.trace
        if trace is None or not getattr(trace, "is_recording", False):
            return
        if not (trace.sampled or error):
            return
        trace.add_span(
            "batcher.batch",
            time.perf_counter() - start,
            attrs={"batch_size": batch_size},
            error=error,
        )
        if error:
            trace.mark_error(error)
