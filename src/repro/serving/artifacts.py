"""Versioned on-disk store for fitted link-prediction artifacts.

An :class:`ArtifactStore` is a plain directory holding one sub-directory per
published version::

    store/
    ├── v0001/
    │   ├── manifest.json    schema version, model name, hyper-parameters,
    │   │                    per-file sha256 checksums
    │   ├── model.npz        the predictor (save_predictor format)
    │   └── graph.npz        optional: known-link adjacency for exclusion
    └── v0002/
        └── …

Versions are immutable once published: ``publish`` writes into a hidden
staging directory and renames it into place, so readers never observe a
half-written version, and ``load`` re-hashes every file against the
manifest before deserializing.  All failure modes surface as
:class:`~repro.exceptions.SerializationError` with the offending path in
the message.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import time
import zipfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ArtifactCorruptError, SerializationError
from repro.models.base import MatrixPredictor
from repro.models.persistence import (
    FACTORED_LAYOUT_MODEL_JSON,
    FrozenPredictor,
    load_factored_layout,
    load_predictor,
    save_factored_layout,
    save_predictor,
)
from repro.reliability.faults import fault_point

MANIFEST_SCHEMA_VERSION = 1
"""Bumped whenever the manifest.json layout changes incompatibly."""

_MANIFEST = "manifest.json"
_MODEL_FILE = "model.npz"
_GRAPH_FILE = "graph.npz"
_VERSION_DIR = re.compile(r"^v(\d{4,})$")
_STAGING_PREFIX = ".staging-"


_HASH_CHUNK_BYTES = 1 << 17
"""Read window for :func:`file_sha256` — one reused 128 KiB buffer, so
verifying arbitrarily large artifact files never allocates more than this
on the heap (part of the zero-copy ``reload()`` budget)."""


def file_sha256(path: str) -> str:
    """Sha256 hex digest of a file's bytes (streamed, constant memory).

    Reads into one preallocated buffer via ``readinto`` instead of
    allocating a fresh ``bytes`` per chunk, keeping the peak heap cost of
    hashing a multi-gigabyte factor file at :data:`_HASH_CHUNK_BYTES`.
    """
    hasher = hashlib.sha256()
    buffer = bytearray(_HASH_CHUNK_BYTES)
    view = memoryview(buffer)
    with open(path, "rb", buffering=0) as handle:
        while True:
            read = handle.readinto(buffer)
            if not read:
                break
            hasher.update(view[:read])
    return hasher.hexdigest()


@dataclass
class LoadedArtifact:
    """One fully-validated artifact pulled out of the store.

    Attributes
    ----------
    version:
        The integer version number that was loaded.
    manifest:
        The parsed ``manifest.json`` of that version.
    predictor:
        The deserialized (refit-proof) predictor.
    adjacency:
        The known-link adjacency published alongside the model, or ``None``
        when the publisher provided no graph.
    """

    version: int
    manifest: Dict
    predictor: FrozenPredictor
    adjacency: Optional[np.ndarray] = field(default=None, repr=False)
    """Dense ndarray for dense artifacts; a scipy CSR matrix when the
    publisher provided a sparse graph (factored artifacts)."""

    @property
    def n_users(self) -> int:
        """Number of users covered by the predictor.

        Reads the predictor's ``n_users`` property — O(1) for factored
        artifacts, which never materialize a dense score matrix.
        """
        return int(self.predictor.n_users)


class ArtifactStore:
    """Directory-per-version artifact store with integrity validation.

    Parameters
    ----------
    root:
        The store directory; created (with parents) on first use.

    Parameters
    ----------
    layout:
        On-disk shape of *factored* publishes.  ``"npz"`` (default) keeps
        the single compressed ``model.npz`` archive; ``"npy"`` writes one
        uncompressed ``.npy`` file per factor array plus a ``model.json``
        header, which is the only layout numpy can memory-map.  Dense
        publishes always use ``model.npz``.  Loading is layout-agnostic:
        every store reads both layouts, so the flag only shapes what this
        store *writes*.
    mmap:
        Whether ``load`` maps npy-layout factor arrays with
        ``np.load(..., mmap_mode="r")`` (default) instead of copying them
        onto the heap.  Pass ``False`` — the opt-out for writable paths —
        to materialize ordinary arrays.  Has no effect on ``.npz``
        versions, which numpy cannot map.

    Examples
    --------
    >>> import tempfile
    >>> from repro.models.persistence import FrozenPredictor
    >>> store = ArtifactStore(tempfile.mkdtemp())
    >>> version = store.publish(FrozenPredictor(np.eye(3)))
    >>> store.resolve_latest() == version == 1
    True
    >>> store.load().predictor.score_matrix.shape
    (3, 3)
    """

    def __init__(self, root: str, layout: str = "npz", mmap: bool = True):
        self.root = str(root)
        if layout not in ("npz", "npy"):
            raise SerializationError(
                f"layout must be 'npz' or 'npy', got {layout!r}"
            )
        self.layout = layout
        self.mmap = bool(mmap)
        os.makedirs(self.root, exist_ok=True)

    # -- layout ---------------------------------------------------------
    def path(self, version: int) -> str:
        """Directory holding the given version."""
        return os.path.join(self.root, f"v{int(version):04d}")

    def versions(self) -> List[int]:
        """All published version numbers, ascending."""
        found = []
        for entry in os.listdir(self.root):
            match = _VERSION_DIR.match(entry)
            if match and os.path.isfile(
                os.path.join(self.root, entry, _MANIFEST)
            ):
                found.append(int(match.group(1)))
        return sorted(found)

    def resolve_latest(self) -> int:
        """The highest published version number.

        Raises
        ------
        SerializationError
            If the store holds no published versions.
        """
        versions = self.versions()
        if not versions:
            raise SerializationError(
                f"artifact store {self.root} holds no published versions"
            )
        return versions[-1]

    # -- publish --------------------------------------------------------
    def publish(
        self,
        model: MatrixPredictor,
        graph=None,
        meta: Optional[Dict] = None,
    ) -> int:
        """Write a fitted predictor as the next version; returns its number.

        Parameters
        ----------
        model:
            Any fitted matrix predictor (raises ``NotFittedError`` before
            any disk state is touched if it is not).
        graph:
            Optional known-link structure — a
            :class:`~repro.networks.social.SocialGraph`, a square binary
            adjacency ndarray, or a scipy sparse matrix matching the
            predictor's user count.  Serving uses it to exclude
            already-connected pairs from top-k answers.  Sparse inputs
            stay sparse on disk (CSR arrays), which is how factored
            publishes keep the whole artifact O(nk).
        meta:
            Extra JSON-compatible metadata recorded in the manifest
            (experiment name, training scale, …).
        """
        from scipy import sparse as _sparse

        factored = bool(getattr(model, "factored", False))
        if factored:
            # Fitted check before touching disk; never densifies.
            n_users = int(model.factored_estimate.n_users)
        else:
            n_users = int(model.score_matrix.shape[0])
        adjacency = None
        if graph is not None:
            adjacency = getattr(graph, "adjacency", graph)
            if _sparse.issparse(adjacency):
                adjacency = _sparse.csr_matrix(adjacency, dtype=float)
            else:
                adjacency = np.asarray(adjacency, dtype=float)
            if adjacency.shape != (n_users, n_users):
                raise SerializationError(
                    f"graph adjacency {adjacency.shape} does not match the "
                    f"predictor's {(n_users, n_users)}"
                )
        version = (self.versions() or [0])[-1] + 1
        staging = os.path.join(
            self.root, f"{_STAGING_PREFIX}v{version:04d}-{os.getpid()}"
        )
        os.makedirs(staging)
        try:
            if factored and self.layout == "npy":
                # Memory-mappable layout: one raw .npy per factor array.
                written = save_factored_layout(model, staging)
                files = {
                    name: self._file_entry(path)
                    for name, path in sorted(written.items())
                }
            else:
                model_path = os.path.join(staging, _MODEL_FILE)
                save_predictor(model, model_path)
                files = {_MODEL_FILE: self._file_entry(model_path)}
            if adjacency is not None:
                graph_path = os.path.join(staging, _GRAPH_FILE)
                if _sparse.issparse(adjacency):
                    np.savez_compressed(
                        graph_path,
                        format=np.frombuffer(b"csr", dtype=np.uint8),
                        data=adjacency.data,
                        indices=adjacency.indices,
                        indptr=adjacency.indptr,
                        shape=np.asarray(adjacency.shape, dtype=np.int64),
                    )
                else:
                    np.savez_compressed(graph_path, adjacency=adjacency)
                files[_GRAPH_FILE] = self._file_entry(graph_path)
            manifest = {
                "schema_version": MANIFEST_SCHEMA_VERSION,
                "version": version,
                "name": model.name,
                "model_class": type(model).__name__,
                "kind": "factored" if factored else "dense",
                "layout": (
                    "npy" if factored and self.layout == "npy" else "npz"
                ),
                "n_users": n_users,
                "created_at": time.time(),  # wall-clock: a timestamp, not a duration
                "hyper_parameters": _scalar_params(model),
                "meta": dict(meta or {}),
                "files": files,
            }
            with open(
                os.path.join(staging, _MANIFEST), "w", encoding="utf-8"
            ) as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            final = self.path(version)
            if os.path.exists(final):
                raise SerializationError(
                    f"version directory {final} already exists; "
                    "concurrent publishers must use distinct stores"
                )
            os.rename(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return version

    @staticmethod
    def _file_entry(path: str) -> Dict:
        return {
            "sha256": file_sha256(path),
            "bytes": os.path.getsize(path),
        }

    # -- read -----------------------------------------------------------
    def manifest(self, version: Optional[int] = None) -> Dict:
        """The parsed, schema-checked manifest of a version (default: latest)."""
        version = self.resolve_latest() if version is None else int(version)
        manifest_path = os.path.join(self.path(version), _MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as exc:
            raise SerializationError(
                f"version {version} not found in {self.root}: {exc}"
            ) from exc
        except ValueError as exc:
            raise SerializationError(
                f"corrupt manifest {manifest_path}: {exc}"
            ) from exc
        schema = manifest.get("schema_version")
        if schema != MANIFEST_SCHEMA_VERSION:
            raise SerializationError(
                f"manifest {manifest_path} has schema version {schema}; "
                f"this build reads version {MANIFEST_SCHEMA_VERSION}"
            )
        return manifest

    def verify(self, version: Optional[int] = None) -> Dict:
        """Re-hash every file of a version against its manifest.

        Returns the manifest on success; raises
        :class:`~repro.exceptions.ArtifactCorruptError` (a
        :class:`~repro.exceptions.SerializationError`) naming the first
        file whose checksum or size diverges.
        """
        version = self.resolve_latest() if version is None else int(version)
        manifest = self.manifest(version)
        directory = self.path(version)
        for filename, entry in manifest.get("files", {}).items():
            path = os.path.join(directory, filename)
            if not os.path.isfile(path):
                raise ArtifactCorruptError(
                    f"artifact v{version:04d} is missing {filename}"
                )
            actual = file_sha256(path)
            if actual != entry.get("sha256"):
                raise ArtifactCorruptError(
                    f"artifact file {path} failed its integrity check: "
                    f"manifest says sha256 {entry.get('sha256', '?')[:12]}… "
                    f"but the file hashes to {actual[:12]}…"
                )
        return manifest

    def load(self, version: Optional[int] = None) -> LoadedArtifact:
        """Load and validate a version (default: latest).

        Every file is checksum-verified against the manifest before
        deserialization, and the model archive additionally verifies its
        own embedded content digest.

        Two chaos sites cover this path: ``artifact.slow_read`` (a
        delay-only site modelling a stalled disk or network mount) and
        ``artifact.read`` (raises
        :class:`~repro.exceptions.ArtifactCorruptError`, modelling a read
        that fails integrity validation).
        """
        version = self.resolve_latest() if version is None else int(version)
        fault_point("artifact.slow_read")
        fault_point("artifact.read")
        manifest = self.verify(version)
        directory = self.path(version)
        if FACTORED_LAYOUT_MODEL_JSON in manifest.get("files", {}):
            # Raw-.npy factored layout: map the factor arrays read-only
            # (unless this store opted out), so installing the artifact
            # never copies the O(nk) payload onto the heap.
            predictor = load_factored_layout(
                directory, mmap_mode="r" if self.mmap else None
            )
        else:
            predictor = load_predictor(os.path.join(directory, _MODEL_FILE))
        adjacency = None
        if _GRAPH_FILE in manifest.get("files", {}):
            graph_path = os.path.join(directory, _GRAPH_FILE)
            adjacency = _load_graph(graph_path)
            n_users = int(predictor.n_users)
            if adjacency.shape != (n_users, n_users):
                raise SerializationError(
                    f"graph adjacency {adjacency.shape} does not match the "
                    f"predictor's {(n_users, n_users)}"
                )
        return LoadedArtifact(
            version=version,
            manifest=manifest,
            predictor=predictor,
            adjacency=adjacency,
        )


def _load_graph(graph_path: str):
    """Read a published graph archive — dense ndarray or sparse CSR.

    The archive self-describes: a ``format`` marker (b"csr") selects the
    sparse layout, otherwise the legacy dense ``adjacency`` array is read.
    """
    from scipy import sparse

    try:
        with np.load(graph_path) as data:
            if "format" in data.files:
                marker = bytes(np.asarray(data["format"])).decode("ascii")
                if marker != "csr":
                    raise SerializationError(
                        f"unknown graph format {marker!r} in {graph_path}"
                    )
                shape = tuple(int(v) for v in data["shape"])
                return sparse.csr_matrix(
                    (data["data"], data["indices"], data["indptr"]),
                    shape=shape,
                )
            return np.asarray(data["adjacency"], dtype=float)
    except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
        raise SerializationError(
            f"cannot load graph archive {graph_path}: {exc}"
        ) from exc


def _scalar_params(model: MatrixPredictor) -> Dict:
    """JSON-safe scalar hyper-parameters of a model (same rule as persistence)."""
    params = {}
    for key, value in vars(model).items():
        if key.startswith("_") or key in ("metadata",):
            continue
        if isinstance(value, (int, float, str, bool)) or value is None:
            params[key] = value
        elif isinstance(value, (list, tuple)) and all(
            isinstance(v, (int, float, str, bool)) for v in value
        ):
            params[key] = list(value)
    if isinstance(model, FrozenPredictor):
        params.update(
            {
                k: v
                for k, v in model.metadata.items()
                if isinstance(v, (int, float, str, bool, list)) or v is None
            }
        )
    return params
