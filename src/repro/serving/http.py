"""Stdlib-only JSON/HTTP front-end for the link-prediction service.

A thin :class:`ThreadingHTTPServer` exposing six endpoints:

========================  =====================================================
``GET /healthz``          liveness + served artifact version
``GET /v1/topk``          ``?user=U&k=K`` → ranked candidate links for ``U``
``POST /v1/topk``         JSON ``{"users": [...], "k": K}`` → batch answers
``GET /v1/score``         ``?u=U&v=V`` → raw pair confidence
``GET /v1/stats``         cache/queue counters, uptime, reload state
``GET /metrics``          the whole registry in Prometheus text format
========================  =====================================================

Every request is traced end to end: the handler binds a **request id**
(honouring an incoming ``X-Request-Id`` header, generating one otherwise)
into the logging context, so records emitted anywhere down the stack —
service, cache, micro-batcher — carry the same id, and the response echoes
it back as ``X-Request-Id``.  Per-route latency lands in the
``serving.http.request_seconds{route,method,status}`` histogram, errors in
``serving.http.errors{route}``, and each request is additionally traced on
the service's :class:`~repro.observability.Tracer` (an ``http.<route>``
span plus ``http.requests`` / ``http.errors`` counters).  When the server
was built with a running :class:`~repro.serving.batcher.MicroBatcher`,
single-user ``GET /v1/topk`` queries are routed through it so concurrent
HTTP threads coalesce into shared vectorized scoring passes.

Only the standard library is used — a serving container needs numpy and
nothing else.
"""

from __future__ import annotations

import json
import logging
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.exceptions import ReproError
from repro.observability.logging import (
    get_logger,
    new_request_id,
    request_context,
)
from repro.serving.batcher import MicroBatcher
from repro.serving.service import LinkPredictionService

_log = get_logger("repro.serving.http")

_ROUTE_LABELS = {
    "/healthz": "healthz",
    "/v1/topk": "topk",
    "/v1/score": "score",
    "/v1/stats": "stats",
    "/metrics": "metrics",
}
"""Fixed route-label vocabulary — unknown paths collapse to ``other`` so a
scanner cannot explode the metric cardinality."""

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class LinkPredictionServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one service (and optional batcher)."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: LinkPredictionService,
        batcher: Optional[MicroBatcher] = None,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.batcher = batcher
        registry = service.registry
        self.request_latency = registry.histogram(
            "serving.http.request_seconds",
            help="HTTP request wall-clock by route, method and status.",
            labels=("route", "method", "status"),
        )
        self.request_errors = registry.counter(
            "serving.http.errors",
            help="Requests answered 400 (bad input) by route.",
            labels=("route",),
        )
        self.not_found = registry.counter(
            "serving.http.not_found", help="Requests for unknown endpoints."
        )


def make_server(
    service: LinkPredictionService,
    host: str = "127.0.0.1",
    port: int = 8080,
    batcher: Optional[MicroBatcher] = None,
) -> LinkPredictionServer:
    """Build (but do not start) a server; ``port=0`` picks a free port."""
    return LinkPredictionServer((host, port), service, batcher)


def serve(
    service: LinkPredictionService,
    host: str = "127.0.0.1",
    port: int = 8080,
    batcher: Optional[MicroBatcher] = None,
) -> None:
    """Serve forever (blocking); Ctrl-C shuts down cleanly."""
    server = make_server(service, host, port, batcher)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


class _Handler(BaseHTTPRequestHandler):
    """Route table + JSON plumbing for :class:`LinkPredictionServer`."""

    server: LinkPredictionServer

    _request_id: Optional[str] = None
    _started: Optional[float] = None
    _last_status: Optional[int] = None

    # -- routing --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        url = urlparse(self.path)
        query = parse_qs(url.query)
        routes = {
            "/healthz": lambda: self._healthz(),
            "/v1/stats": lambda: self._stats(),
            "/v1/topk": lambda: self._topk_get(query),
            "/v1/score": lambda: self._score(query),
            "/metrics": lambda: self._metrics(),
        }
        self._dispatch(url.path, routes)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        url = urlparse(self.path)
        routes = {"/v1/topk": lambda: self._topk_post()}
        self._dispatch(url.path, routes)

    def _dispatch(self, path: str, routes: Dict) -> None:
        service = self.server.service
        tracer = service.tracer
        incoming = self.headers.get("X-Request-Id")
        self._request_id = (incoming or new_request_id())[:64]
        self._started = time.perf_counter()
        self._last_status = None
        route = _ROUTE_LABELS.get(path, "other")
        with request_context(self._request_id):
            handler = routes.get(path)
            if handler is None:
                tracer.count("http.not_found")
                self.server.not_found.inc()
                status, payload = 404, {"error": f"no such endpoint: {path}"}
            else:
                with tracer.span(
                    f"http.{path.lstrip('/').replace('/', '.')}"
                ):
                    tracer.count("http.requests")
                    try:
                        status, payload = handler()
                    except (ReproError, ValueError) as exc:
                        tracer.count("http.errors")
                        self.server.request_errors.labels(route=route).inc()
                        status, payload = 400, {"error": str(exc)}
            self._send(status, payload)
        self.server.request_latency.labels(
            route=route, method=self.command, status=str(status)
        ).observe(time.perf_counter() - self._started)

    # -- endpoints ------------------------------------------------------
    def _healthz(self) -> Tuple[int, Dict]:
        service = self.server.service
        return 200, {
            "status": "ok",
            "version": service.version,
            "model": service.artifact.manifest.get("name"),
            "n_users": service.n_users,
        }

    def _stats(self) -> Tuple[int, Dict]:
        return 200, self.server.service.stats()

    def _metrics(self) -> Tuple[int, str]:
        return 200, self.server.service.metrics_text()

    def _topk_get(self, query: Dict) -> Tuple[int, Dict]:
        user = _int_param(query, "user")
        k = _int_param(query, "k", default=10)
        batcher = self.server.batcher
        if batcher is not None and batcher.running:
            ranking = batcher.submit(user, k)
        else:
            ranking = self.server.service.top_k(user, k)
        return 200, _topk_payload(self.server.service, user, k, ranking)

    def _topk_post(self) -> Tuple[int, Dict]:
        body = self._read_json()
        k = int(body.get("k", 10))
        service = self.server.service
        if "users" in body:
            users = [int(u) for u in body["users"]]
            rankings = service.batch_top_k(users, k)
            return 200, {
                "k": k,
                "version": service.version,
                "results": [
                    _topk_payload(service, user, k, ranking)
                    for user, ranking in zip(users, rankings)
                ],
            }
        if "user" not in body:
            raise ValueError("POST /v1/topk requires 'user' or 'users'")
        user = int(body["user"])
        ranking = service.top_k(user, k)
        return 200, _topk_payload(service, user, k, ranking)

    def _score(self, query: Dict) -> Tuple[int, Dict]:
        u = _int_param(query, "u")
        v = _int_param(query, "v")
        service = self.server.service
        return 200, {
            "u": u,
            "v": v,
            "score": service.score(u, v),
            "known_link": service.is_known_link(u, v),
            "version": service.version,
        }

    # -- plumbing -------------------------------------------------------
    def _read_json(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    def _send(self, status: int, payload: Union[Dict, str]) -> None:
        if isinstance(payload, str):
            blob = payload.encode("utf-8")
            content_type = _PROMETHEUS_CONTENT_TYPE
        else:
            blob = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        if self._request_id is not None:
            self.send_header("X-Request-Id", self._request_id)
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, format: str, *args) -> None:
        """Per-request logs as structured DEBUG records (never stderr)."""
        if not _log.isEnabledFor(logging.DEBUG):
            return
        duration_ms = (
            (time.perf_counter() - self._started) * 1e3
            if self._started is not None
            else None
        )
        _log.debug(
            format % args,
            method=getattr(self, "command", None),
            path=getattr(self, "path", None),
            status=self._last_status,
            duration_ms=duration_ms,
            client=self.client_address[0] if self.client_address else None,
            request_id=self._request_id,
        )


def _topk_payload(service, user: int, k: int, ranking) -> Dict:
    """The JSON shape of one top-k answer."""
    return {
        "user": user,
        "k": k,
        "version": service.version,
        "candidates": [
            {"user": candidate, "score": score} for candidate, score in ranking
        ],
    }


def _int_param(query: Dict, name: str, default: Optional[int] = None) -> int:
    """Parse one required/defaulted integer query parameter."""
    values = query.get(name)
    if not values:
        if default is not None:
            return default
        raise ValueError(f"missing required query parameter {name!r}")
    try:
        return int(values[0])
    except ValueError:
        raise ValueError(
            f"query parameter {name!r} must be an integer, got {values[0]!r}"
        ) from None
