"""Stdlib-only JSON/HTTP front-end for the link-prediction service.

A thin :class:`ThreadingHTTPServer` exposing eight endpoints:

========================  =====================================================
``GET /healthz``          liveness + served artifact version
``GET /readyz``           readiness: 503 while the reload breaker is open
``GET /v1/topk``          ``?user=U&k=K`` → ranked candidate links for ``U``
``POST /v1/topk``         JSON ``{"users": [...], "k": K}`` → batch answers
``GET /v1/score``         ``?u=U&v=V`` → raw pair confidence
``GET /v1/stats``         cache/queue counters, uptime, reload state
``GET /metrics``          the whole registry in Prometheus text format
``GET /debug/profile``    the continuous profiler's attributed sample table
========================  =====================================================

Every request is traced end to end: the handler binds a **request id**
(honouring an incoming ``X-Request-Id`` header, generating one otherwise)
into the logging context, so records emitted anywhere down the stack —
service, cache, micro-batcher, per-shard workers — carry the same id, the
response echoes it back as ``X-Request-Id``, and top-k/score payloads
carry it in-band.  The handler is also the **trace edge**: it parses an
incoming ``X-Trace-Context`` header (or mints a fresh
:class:`~repro.observability.propagation.TraceContext`), opens one
request trace on the service's tracer — head-sampled when that tracer is
a :class:`~repro.observability.sampling.SamplingTracer`, with any 5xx
promoting the trace to always-captured error status — and echoes the
context back as ``X-Trace-Context``.  Per-route latency lands in the
``serving.http.request_seconds{route,method,status}`` histogram, errors in
``serving.http.errors{route}``, and each request is additionally traced on
the service's :class:`~repro.observability.Tracer` (an ``http.<route>``
span plus ``http.requests`` / ``http.errors`` counters).  When the server
was built with a running :class:`~repro.serving.batcher.MicroBatcher`,
single-user ``GET /v1/topk`` queries are routed through it so concurrent
HTTP threads coalesce into shared vectorized scoring passes.

Degradation is explicit, never accidental (DESIGN.md §11):

* every 4xx/5xx body is a JSON object ``{"error", "status", "request_id"}``
  — clients never have to parse an HTML traceback;
* an optional in-flight bound (``max_inflight``) sheds excess load with a
  clean 503 (``reliability.shed_requests``) instead of queueing without
  bound;
* an optional per-request deadline (``request_deadline_s``) propagates as
  the batcher's wait budget and maps
  :class:`~repro.exceptions.DeadlineExceededError` to 503;
* any unexpected exception — including faults armed at the
  ``serving.request`` chaos site — is answered as a JSON 500, so a bug in
  one handler can never leak a raw stack trace or tear the worker down.

The endpoint logic itself lives in :class:`EndpointRouter`, a
transport-independent dispatcher shared verbatim with the asyncio front
end (:mod:`repro.serving.aio`): both servers parse bytes their own way,
then hand ``(method, path, query, body, request_id, deadline)`` to the
same router so route tables, exception→status mapping and metric series
cannot drift between the two.

Only the standard library is used — a serving container needs numpy and
nothing else.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlparse

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    ReproError,
)
from repro.observability.logging import (
    get_logger,
    new_request_id,
    request_context,
)
from repro.observability.profiler import global_profiler
from repro.observability.propagation import TraceContext
from repro.reliability.faults import InjectedFaultError, fault_point
from repro.serving.batcher import MicroBatcher
from repro.serving.service import LinkPredictionService

_log = get_logger("repro.serving.http")

ROUTE_LABELS = {
    "/healthz": "healthz",
    "/readyz": "readyz",
    "/v1/topk": "topk",
    "/v1/score": "score",
    "/v1/stats": "stats",
    "/metrics": "metrics",
    "/debug/profile": "debug",
}
"""Fixed route-label vocabulary — unknown paths collapse to ``other`` so a
scanner cannot explode the metric cardinality."""

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

SHED_MESSAGE = (
    "overloaded: too many requests in flight; retry with backoff"
)
"""The uniform 503 body text for load-shed answers on every front end."""


class EndpointRouter:
    """Transport-independent endpoint dispatch for one service.

    Owns the route tables, the exception→status ladder, the per-request
    deadline budget and every HTTP-level metric series.  The threaded
    server's handler and the asyncio server's executor workers both call
    :meth:`dispatch` with already-parsed request pieces, so the two front
    ends answer byte-identical JSON for the same request and account it
    into the same metric families.
    """

    def __init__(
        self,
        service: LinkPredictionService,
        batcher: Optional[MicroBatcher] = None,
        request_deadline_s: Optional[float] = None,
    ):
        if request_deadline_s is not None and request_deadline_s <= 0:
            raise ValueError(
                f"request_deadline_s must be positive, got {request_deadline_s}"
            )
        self.service = service
        self.batcher = batcher
        self.request_deadline_s = request_deadline_s
        registry = service.registry
        self.request_latency = registry.histogram(
            "serving.http.request_seconds",
            help="HTTP request wall-clock by route, method and status.",
            labels=("route", "method", "status"),
        )
        self.request_errors = registry.counter(
            "serving.http.errors",
            help="Requests answered 400 (bad input) by route.",
            labels=("route",),
        )
        self.not_found = registry.counter(
            "serving.http.not_found", help="Requests for unknown endpoints."
        )
        self.shed_requests = registry.counter(
            "reliability.shed_requests",
            help="Requests answered 503 because max_inflight was exceeded.",
        )
        self.server_errors = registry.counter(
            "serving.http.server_errors",
            help="Requests answered 5xx (internal error or degradation).",
            labels=("route",),
        )

    # -- shared plumbing -------------------------------------------------
    def observe(
        self, route: str, method: str, status: int, seconds: float
    ) -> None:
        """Record one answered request into the labeled latency histogram."""
        self.request_latency.labels(
            route=route, method=method, status=str(status)
        ).observe(seconds)

    def error_payload(
        self, status: int, message: str, request_id: Optional[str]
    ) -> Dict:
        """The uniform JSON body of every 4xx/5xx answer."""
        return {
            "error": message,
            "status": status,
            "request_id": request_id,
        }

    def shed(self, request_id: Optional[str]) -> Tuple[int, Dict]:
        """Account one load-shed request and build its 503 answer."""
        self.service.tracer.count("http.shed")
        self.shed_requests.inc()
        return 503, self.error_payload(503, SHED_MESSAGE, request_id)

    def remaining_budget(
        self, deadline: Optional[float], fallback: float = 30.0
    ) -> float:
        """Seconds left before ``deadline`` (``fallback`` when unbounded).

        ``deadline`` is an absolute :func:`time.perf_counter` instant.
        Raises :class:`~repro.exceptions.DeadlineExceededError` — mapped
        to 503 by :meth:`dispatch` — once the budget is already spent.
        """
        if deadline is None:
            return fallback
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            raise DeadlineExceededError(
                f"request exceeded its {self.request_deadline_s}s deadline"
            )
        return remaining

    # -- dispatch --------------------------------------------------------
    def dispatch(
        self,
        method: str,
        path: str,
        query: Dict,
        body: bytes,
        request_id: Optional[str],
        deadline: Optional[float],
    ) -> Tuple[int, Union[Dict, str]]:
        """Answer one admitted request; every failure maps to a JSON error.

        ``query`` is the already-parsed query dict, ``body`` the raw POST
        bytes (empty for GET) and ``deadline`` an absolute
        :func:`time.perf_counter` instant or ``None``.  The caller is
        expected to have bound the request id into the logging context
        and opened the request trace; spans emitted here attach to it.
        """
        tracer = self.service.tracer
        route = ROUTE_LABELS.get(path, "other")
        if method == "GET":
            routes = {
                "/healthz": lambda: self._healthz(),
                "/readyz": lambda: self._readyz(request_id),
                "/v1/stats": lambda: self._stats(),
                "/v1/topk": lambda: self._topk_get(
                    query, request_id, deadline
                ),
                "/v1/score": lambda: self._score(query),
                "/metrics": lambda: self._metrics(),
                "/debug/profile": lambda: self._profile(query),
            }
        elif method == "POST":
            routes = {
                "/v1/topk": lambda: self._topk_post(body, request_id)
            }
        else:
            return 501, self.error_payload(
                501, f"unsupported method: {method}", request_id
            )
        handler = routes.get(path)
        if handler is None:
            tracer.count("http.not_found")
            self.not_found.inc()
            return 404, self.error_payload(
                404, f"no such endpoint: {path}", request_id
            )
        with tracer.span(f"http.{path.lstrip('/').replace('/', '.')}"):
            tracer.count("http.requests")
            try:
                fault_point("serving.request")
                return handler()
            except (DeadlineExceededError, CircuitOpenError) as exc:
                # Degradation, not caller error: the request was valid but
                # cannot be answered in time / the dependency is fenced off.
                tracer.count("http.degraded")
                self.server_errors.labels(route=route).inc()
                return 503, self.error_payload(503, str(exc), request_id)
            except InjectedFaultError as exc:
                # Chaos faults stand in for arbitrary internal crashes, so
                # they take the same path a real unhandled error would.
                tracer.count("http.failures")
                self.server_errors.labels(route=route).inc()
                return 500, self.error_payload(
                    500,
                    f"internal error: {type(exc).__name__}: {exc}",
                    request_id,
                )
            except (ReproError, ValueError) as exc:
                tracer.count("http.errors")
                self.request_errors.labels(route=route).inc()
                return 400, self.error_payload(400, str(exc), request_id)
            except Exception as exc:  # the contract: never an unhandled 500
                tracer.count("http.failures")
                self.server_errors.labels(route=route).inc()
                _log.error(
                    "unhandled error answering request",
                    route=route,
                    error=f"{type(exc).__name__}: {exc}",
                    request_id=request_id,
                )
                return 500, self.error_payload(
                    500,
                    f"internal error: {type(exc).__name__}: {exc}",
                    request_id,
                )

    # -- endpoints -------------------------------------------------------
    def _healthz(self) -> Tuple[int, Dict]:
        """Liveness plus the currently-served artifact version."""
        service = self.service
        return 200, {
            "status": "ok",
            "version": service.version,
            "model": service.artifact.manifest.get("name"),
            "n_users": service.n_users,
        }

    def _readyz(self, request_id: Optional[str]) -> Tuple[int, Dict]:
        """Readiness — liveness stays on ``/healthz``; this gate flips to
        503 while the reload breaker is open (stale-serving replica)."""
        service = self.service
        breaker_state = service.reload_breaker.state
        if service.ready():
            return 200, {
                "status": "ready",
                "version": service.version,
                "reload_breaker": breaker_state,
            }
        payload = self.error_payload(
            503,
            f"not ready: reload circuit breaker is {breaker_state}; "
            "serving stale artifact",
            request_id,
        )
        payload["reload_breaker"] = breaker_state
        return 503, payload

    def _stats(self) -> Tuple[int, Dict]:
        """Cache/queue counters, uptime and reload state."""
        return 200, self.service.stats()

    def _metrics(self) -> Tuple[int, str]:
        """The whole registry rendered as Prometheus text 0.0.4."""
        return 200, self.service.metrics_text()

    def _profile(self, query: Dict) -> Tuple[int, Dict]:
        """The continuous profiler's aggregate table (``?top=N``)."""
        top = _int_param(query, "top", default=50)
        return 200, global_profiler().snapshot(top=top)

    def _topk_get(
        self,
        query: Dict,
        request_id: Optional[str],
        deadline: Optional[float],
    ) -> Tuple[int, Dict]:
        """Single-user ranked candidates, batched when a batcher runs."""
        user = _int_param(query, "user")
        k = _int_param(query, "k", default=10)
        batcher = self.batcher
        if batcher is not None and batcher.running:
            # The remaining request budget becomes the batcher wait bound,
            # so a deadline overrun surfaces as a 503 instead of a stall.
            ranking = batcher.submit(
                user, k, timeout=self.remaining_budget(deadline)
            )
        else:
            # Shed instead of serving a dead request.
            self.remaining_budget(deadline)
            ranking = self.service.top_k(user, k)
        payload = _topk_payload(self.service, user, k, ranking)
        payload["request_id"] = request_id
        return 200, payload

    def _topk_post(
        self, body: bytes, request_id: Optional[str]
    ) -> Tuple[int, Dict]:
        """Single- or multi-user top-k from a JSON body."""
        parsed = _read_json(body)
        k = int(parsed.get("k", 10))
        service = self.service
        if "users" in parsed:
            users = [int(u) for u in parsed["users"]]
            rankings = service.batch_top_k(users, k)
            return 200, {
                "k": k,
                "version": service.version,
                "request_id": request_id,
                "results": [
                    _topk_payload(service, user, k, ranking)
                    for user, ranking in zip(users, rankings)
                ],
            }
        if "user" not in parsed:
            raise ValueError("POST /v1/topk requires 'user' or 'users'")
        user = int(parsed["user"])
        ranking = service.top_k(user, k)
        payload = _topk_payload(service, user, k, ranking)
        payload["request_id"] = request_id
        return 200, payload

    def _score(self, query: Dict) -> Tuple[int, Dict]:
        """Raw pair confidence plus the known-link flag."""
        u = _int_param(query, "u")
        v = _int_param(query, "v")
        service = self.service
        return 200, {
            "u": u,
            "v": v,
            "score": service.score(u, v),
            "known_link": service.is_known_link(u, v),
            "version": service.version,
        }


class LinkPredictionServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one service (and optional batcher)."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: LinkPredictionService,
        batcher: Optional[MicroBatcher] = None,
        max_inflight: Optional[int] = None,
        request_deadline_s: Optional[float] = None,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.batcher = batcher
        if max_inflight is not None and int(max_inflight) < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.router = EndpointRouter(
            service, batcher, request_deadline_s=request_deadline_s
        )
        self.request_deadline_s = self.router.request_deadline_s
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        # Metric handles stay addressable on the server for callers that
        # predate the router split.
        self.request_latency = self.router.request_latency
        self.request_errors = self.router.request_errors
        self.not_found = self.router.not_found
        self.shed_requests = self.router.shed_requests
        self.server_errors = self.router.server_errors

    # -- load-shedding accounting ---------------------------------------
    def inflight_acquire(self) -> bool:
        """Count one request in; ``False`` means it must be shed."""
        with self._inflight_lock:
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                return False
            self._inflight += 1
            return True

    def inflight_release(self) -> None:
        """Count one admitted request out."""
        with self._inflight_lock:
            self._inflight -= 1


def make_server(
    service: LinkPredictionService,
    host: str = "127.0.0.1",
    port: int = 8080,
    batcher: Optional[MicroBatcher] = None,
    max_inflight: Optional[int] = None,
    request_deadline_s: Optional[float] = None,
) -> LinkPredictionServer:
    """Build (but do not start) a server; ``port=0`` picks a free port.

    ``max_inflight`` bounds concurrently-admitted requests (excess is shed
    with 503); ``request_deadline_s`` bounds each request's wall-clock
    (overrun answers 503).  Both default to off, preserving the previous
    behaviour.
    """
    return LinkPredictionServer(
        (host, port),
        service,
        batcher,
        max_inflight=max_inflight,
        request_deadline_s=request_deadline_s,
    )


def serve(
    service: LinkPredictionService,
    host: str = "127.0.0.1",
    port: int = 8080,
    batcher: Optional[MicroBatcher] = None,
    max_inflight: Optional[int] = None,
    request_deadline_s: Optional[float] = None,
) -> None:
    """Serve forever (blocking); Ctrl-C shuts down cleanly."""
    server = make_server(
        service,
        host,
        port,
        batcher,
        max_inflight=max_inflight,
        request_deadline_s=request_deadline_s,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


class _Handler(BaseHTTPRequestHandler):
    """Socket/bytes plumbing around the shared :class:`EndpointRouter`."""

    server: LinkPredictionServer

    _request_id: Optional[str] = None
    _started: Optional[float] = None
    _last_status: Optional[int] = None
    _trace_context: Optional[TraceContext] = None

    # -- routing --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Answer one GET through the shared router."""
        self._dispatch(b"")

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler naming)
        """Read the framed body, then answer through the shared router."""
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        self._dispatch(body)

    def _dispatch(self, body: bytes) -> None:
        router = self.server.router
        tracer = self.server.service.tracer
        url = urlparse(self.path)
        query = parse_qs(url.query)
        incoming = self.headers.get("X-Request-Id")
        self._request_id = (incoming or new_request_id())[:64]
        self._started = time.perf_counter()
        deadline_s = self.server.request_deadline_s
        deadline = (
            None if deadline_s is None else self._started + deadline_s
        )
        self._last_status = None
        self._trace_context = None
        route = ROUTE_LABELS.get(url.path, "other")
        parent = TraceContext.from_header(
            self.headers.get("X-Trace-Context")
        )
        admitted = self.server.inflight_acquire()
        try:
            with request_context(self._request_id):
                if not admitted:
                    status, payload = router.shed(self._request_id)
                    self._observe_latency(route, status)
                    self._send(status, payload)
                else:
                    with tracer.trace(
                        route, parent=parent, request_id=self._request_id
                    ) as req_trace:
                        status, payload = router.dispatch(
                            self.command,
                            url.path,
                            query,
                            body,
                            self._request_id,
                            deadline,
                        )
                        if status >= 500:
                            # dispatch answers every exception as JSON, so
                            # the watch spans never see one raise; promote
                            # the trace from the status code instead —
                            # this is what makes "errors always captured"
                            # hold at any sampling rate.
                            req_trace.mark_error(
                                payload.get("error", f"http {status}")
                                if isinstance(payload, dict)
                                else f"http {status}"
                            )
                        self._trace_context = req_trace.context
                        # Observe before the body hits the socket: a client
                        # that reads a response and immediately scrapes
                        # /metrics must see this request's sample (the send
                        # itself is microseconds of buffered writes and
                        # would race the next scrape).
                        self._observe_latency(route, status)
                    # The trace commits when the block above exits — also
                    # before the send, so a client that reads the response
                    # and immediately queries the trace buffer finds it.
                    self._send(status, payload)
        finally:
            if admitted:
                self.server.inflight_release()

    def _observe_latency(self, route: str, status: int) -> None:
        """Record this request into the labeled latency histogram."""
        self.server.router.observe(
            route, self.command, status, time.perf_counter() - self._started
        )

    # -- plumbing -------------------------------------------------------
    def _send(self, status: int, payload: Union[Dict, str]) -> None:
        if isinstance(payload, str):
            blob = payload.encode("utf-8")
            content_type = _PROMETHEUS_CONTENT_TYPE
        else:
            blob = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        if self._request_id is not None:
            self.send_header("X-Request-Id", self._request_id)
        if self._trace_context is not None:
            self.send_header(
                "X-Trace-Context", self._trace_context.to_header()
            )
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, format: str, *args) -> None:
        """Per-request logs as structured DEBUG records (never stderr)."""
        if not _log.isEnabledFor(logging.DEBUG):
            return
        duration_ms = (
            (time.perf_counter() - self._started) * 1e3
            if self._started is not None
            else None
        )
        _log.debug(
            format % args,
            method=getattr(self, "command", None),
            path=getattr(self, "path", None),
            status=self._last_status,
            duration_ms=duration_ms,
            client=self.client_address[0] if self.client_address else None,
            request_id=self._request_id,
        )


def _read_json(raw: bytes) -> Dict:
    """Decode one JSON-object request body (empty bytes → ``{}``)."""
    try:
        body = json.loads(raw.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise ValueError("request body must be a JSON object")
    return body


def _topk_payload(service, user: int, k: int, ranking) -> Dict:
    """The JSON shape of one top-k answer."""
    return {
        "user": user,
        "k": k,
        "version": service.version,
        "candidates": [
            {"user": candidate, "score": score} for candidate, score in ranking
        ],
    }


def _int_param(query: Dict, name: str, default: Optional[int] = None) -> int:
    """Parse one required/defaulted integer query parameter."""
    values = query.get(name)
    if not values:
        if default is not None:
            return default
        raise ValueError(f"missing required query parameter {name!r}")
    try:
        return int(values[0])
    except ValueError:
        raise ValueError(
            f"query parameter {name!r} must be an integer, got {values[0]!r}"
        ) from None
