"""Command-line entry point: ``python -m repro.serving <command>``.

Three subcommands cover the publish → inspect → serve lifecycle:

* ``publish`` — fit a SLAMPRED variant on a synthetic aligned world (or
  re-publish an existing ``save_predictor`` archive via ``--npz``) and
  write it into an :class:`~repro.serving.artifacts.ArtifactStore`.
* ``inspect`` — print a version's manifest (name, hyper-parameters,
  per-file checksums) after re-verifying its integrity.
* ``serve`` — start the JSON/HTTP endpoint on the store's latest version
  (asyncio front end by default; ``--legacy`` keeps the threaded server).
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time

from repro.models.base import TransferTask
from repro.models.persistence import load_predictor
from repro.models.slampred import SlamPred, SlamPredH, SlamPredT
from repro.networks.social import SocialGraph
from repro.observability.cells import CellAggregator, CellBank
from repro.observability.logging import configure_logging
from repro.observability.metrics import MetricsRegistry, NullRegistry
from repro.observability.profiler import global_profiler
from repro.observability.sampling import DEFAULT_SAMPLE_RATE, SamplingTracer
from repro.observability.tracer import NullTracer
from repro.reliability.faults import configure_from_env
from repro.serving.aio import make_async_server
from repro.serving.artifacts import ArtifactStore
from repro.serving.batcher import MicroBatcher
from repro.serving.http import make_server
from repro.serving.service import LinkPredictionService
from repro.synth.generator import generate_aligned_pair

_MODELS = {
    "slampred": SlamPred,
    "slampred-t": SlamPredT,
    "slampred-h": SlamPredH,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the serving CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Publish, inspect and serve link-prediction artifacts.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    publish = commands.add_parser(
        "publish", help="fit (or import) a predictor and publish a version"
    )
    publish.add_argument("--store", required=True, help="artifact store directory")
    publish.add_argument(
        "--npz",
        default=None,
        help="publish this save_predictor archive instead of fitting",
    )
    publish.add_argument(
        "--model",
        choices=sorted(_MODELS),
        default="slampred-t",
        help="model variant to fit (ignored with --npz)",
    )
    publish.add_argument("--scale", type=int, default=60, help="synthetic world size")
    publish.add_argument("--seed", type=int, default=7, help="random seed")
    publish.add_argument(
        "--inner-iterations", type=int, default=15, help="proximal iterations"
    )
    publish.add_argument(
        "--outer-iterations", type=int, default=10, help="CCCP rounds"
    )
    publish.add_argument(
        "--factored",
        action="store_true",
        help="fit the O(nk) factored estimate instead of the dense one "
        "(required for the memory-mappable npy layout)",
    )
    publish.add_argument(
        "--layout",
        choices=("npz", "npy"),
        default="npz",
        help="factored artifact layout: npz (compressed archive) or npy "
        "(one file per array, memory-mappable on load); dense publishes "
        "always use npz",
    )

    inspect = commands.add_parser(
        "inspect", help="verify and print a version's manifest"
    )
    inspect.add_argument("--store", required=True, help="artifact store directory")
    inspect.add_argument(
        "--version", type=int, default=None, help="version to inspect (default latest)"
    )
    inspect.add_argument(
        "--json", action="store_true", help="emit the raw manifest JSON"
    )

    serve = commands.add_parser("serve", help="serve the latest artifact over HTTP")
    serve.add_argument("--store", required=True, help="artifact store directory")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080, help="bind port (0 = free)")
    serve.add_argument(
        "--cache-size", type=int, default=1024, help="ranking cache capacity"
    )
    serve.add_argument(
        "--log-level",
        default="INFO",
        help="structured-log level (DEBUG logs every request)",
    )
    serve.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable metrics and tracing (NullRegistry/NullTracer fast path; "
        "/metrics serves an empty document)",
    )
    serve.add_argument(
        "--trace-sample-rate",
        type=float,
        default=DEFAULT_SAMPLE_RATE,
        help="head-sampling probability for request traces in [0, 1] "
        "(error traces are always captured)",
    )
    serve.add_argument(
        "--trace-route-rate",
        action="append",
        default=[],
        metavar="ROUTE=RATE",
        help="per-route sampling override, e.g. --trace-route-rate "
        "topk=1.0 (repeatable)",
    )
    serve.add_argument(
        "--aggregator-interval",
        type=float,
        default=1.0,
        help="seconds between background drains of the striped metric "
        "cells into the registry",
    )
    serve.add_argument(
        "--profile",
        action="store_true",
        help="run the continuous self-profiler (samples attributed to "
        "active span labels; inspect at /debug/profile)",
    )
    serve.add_argument(
        "--no-batcher",
        action="store_true",
        help="answer each request directly instead of micro-batching",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64, help="micro-batcher batch bound"
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batcher coalescing window",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="shed requests with 503 beyond this many in flight "
        "(default: unbounded)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline; overruns answer 503 (default: none)",
    )
    serve.add_argument(
        "--legacy",
        action="store_true",
        help="serve through the thread-per-connection front end instead "
        "of the asyncio one (the parity oracle)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="asyncio front end: scoring worker threads "
        "(default: min(32, cpus + 4); ignored with --legacy)",
    )
    return parser


def _parse_route_rates(pairs):
    """Parse repeated ``ROUTE=RATE`` flags into ``{route: float}``.

    The tracer samples by route *label* (``topk``, ``score``, …), so
    path-style keys (``/v1/topk``) are normalized through the server's
    route vocabulary; unknown paths abort rather than silently never
    matching.
    """
    from repro.serving.http import ROUTE_LABELS

    rates = {}
    for pair in pairs:
        route, _, rate = pair.partition("=")
        if not route or not rate:
            raise SystemExit(
                f"--trace-route-rate expects ROUTE=RATE, got {pair!r}"
            )
        if route.startswith("/"):
            label = ROUTE_LABELS.get(route)
            if label is None:
                known = ", ".join(sorted(ROUTE_LABELS))
                raise SystemExit(
                    f"--trace-route-rate: unknown route {route!r} "
                    f"(known: {known})"
                )
            route = label
        try:
            rates[route] = float(rate)
        except ValueError:
            raise SystemExit(
                f"--trace-route-rate rate must be a number, got {rate!r}"
            ) from None
    return rates


def run_publish(args: argparse.Namespace) -> int:
    """Fit or import a predictor and publish it; prints the new version."""
    store = ArtifactStore(args.store, layout=args.layout)
    if args.npz is not None:
        model = load_predictor(args.npz)
        graph = None
        meta = {"source": "npz", "path": args.npz}
    else:
        aligned = generate_aligned_pair(scale=args.scale, random_state=args.seed)
        task = TransferTask.from_aligned(aligned, random_state=args.seed)
        model = _MODELS[args.model](
            inner_iterations=args.inner_iterations,
            outer_iterations=args.outer_iterations,
            factored=args.factored,
        ).fit(task)
        graph = SocialGraph.from_network(aligned.target)
        meta = {
            "source": "synthetic",
            "scale": args.scale,
            "seed": args.seed,
            "variant": args.model,
            "factored": args.factored,
        }
    version = store.publish(model, graph=graph, meta=meta)
    print(f"published {model.name} as v{version:04d} -> {store.path(version)}")
    return 0


def run_inspect(args: argparse.Namespace) -> int:
    """Verify a version's checksums and print its manifest."""
    store = ArtifactStore(args.store)
    manifest = store.verify(args.version)
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    print(f"store     {store.root}")
    print(f"versions  {', '.join(f'v{v:04d}' for v in store.versions())}")
    print(f"inspected v{manifest['version']:04d} — integrity ok")
    print(f"model     {manifest['name']} ({manifest['model_class']})")
    print(f"users     {manifest['n_users']}")
    for filename, entry in sorted(manifest["files"].items()):
        print(
            f"file      {filename}  {entry['bytes']} bytes  "
            f"sha256 {entry['sha256'][:16]}…"
        )
    params = manifest.get("hyper_parameters", {})
    if params:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
        print(f"params    {rendered}")
    return 0


def run_serve(args: argparse.Namespace) -> int:
    """Start the HTTP endpoint (blocking) on the store's latest version.

    With ``REPRO_CHAOS=1`` in the environment, the global fault injector is
    armed before the service starts (see DESIGN.md §11) — the supported way
    to rehearse degradation against a live endpoint.
    """
    configure_logging(args.log_level)
    armed = configure_from_env()
    if armed:
        print(f"chaos mode: faults armed at {', '.join(sorted(armed))}")
    aggregator = None
    profiler = None
    if args.no_telemetry:
        # Null fast path: no registry locks, no striped cells, and — by
        # contract — no background telemetry threads at all.
        service_kwargs = {
            "tracer": NullTracer(),
            "registry": NullRegistry(),
        }
    else:
        registry = MetricsRegistry()
        cells = CellBank(registry)
        route_rates = _parse_route_rates(args.trace_route_rate)
        tracer = SamplingTracer(
            registry,
            default_rate=args.trace_sample_rate,
            route_rates=route_rates,
            cells=cells,
        )
        service_kwargs = {
            "tracer": tracer,
            "registry": registry,
            "cells": cells,
        }
        aggregator = CellAggregator(
            cells, interval_s=args.aggregator_interval
        ).start()
        if args.profile:
            profiler = global_profiler()
            profiler.start()
    service = LinkPredictionService(
        args.store, cache_size=args.cache_size, **service_kwargs
    )
    batcher = None
    if not args.no_batcher:
        batcher = MicroBatcher(
            service, max_batch=args.max_batch, max_wait_ms=args.max_wait_ms
        ).start()
    deadline_s = (
        None if args.deadline_ms is None else args.deadline_ms / 1000.0
    )
    try:
        if args.legacy:
            server = make_server(
                service,
                args.host,
                args.port,
                batcher,
                max_inflight=args.max_inflight,
                request_deadline_s=deadline_s,
            )
            host, port = server.server_address[:2]
            _print_banner(service, host, port, frontend="legacy")
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                server.server_close()
        else:
            server = make_async_server(
                service,
                args.host,
                args.port,
                batcher,
                max_inflight=args.max_inflight,
                request_deadline_s=deadline_s,
                max_workers=args.workers,
            )

            def _drain(signum, frame):
                """Begin graceful drain; the wait loop below observes exit."""
                server.shutdown(wait=False)

            # SIGTERM (and Ctrl-C) trigger the drain protocol: stop
            # accepting, finish in-flight within the deadline budget,
            # flush the batcher, then exit — never an abrupt close.
            signal.signal(signal.SIGTERM, _drain)
            signal.signal(signal.SIGINT, _drain)
            server.start()
            host, port = server.server_address
            _print_banner(service, host, port, frontend="asyncio")
            try:
                while server.running:
                    time.sleep(0.2)
            except KeyboardInterrupt:
                server.shutdown(wait=True)
            finally:
                server.server_close()
    finally:
        if batcher is not None:
            batcher.stop()
        if profiler is not None:
            profiler.stop()
        if aggregator is not None:
            aggregator.stop()
    return 0


def _print_banner(service, host, port, frontend: str) -> None:
    """The one startup line shared by both front ends."""
    print(
        f"serving {service.stats()['model']} v{service.version:04d} "
        f"({service.n_users} users) on http://{host}:{port} "
        f"[{frontend}] (metrics: http://{host}:{port}/metrics)"
    )


def main(argv=None) -> int:
    """Dispatch the chosen subcommand."""
    args = build_parser().parse_args(argv)
    runner = {
        "publish": run_publish,
        "inspect": run_inspect,
        "serve": run_serve,
    }[args.command]
    return runner(args)


if __name__ == "__main__":
    sys.exit(main())
