"""Asyncio front end: event-loop parsing, worker-pool scoring.

The threaded server in :mod:`repro.serving.http` spends a thread per
connection; under thousands of keep-alive clients the scheduler and the
per-request ``email.parser`` work dominate.  This module keeps the
*protocol* on a single event loop — accept, HTTP/1.1 parse (keep-alive
and pipelined requests included), framing, shedding — and offloads only
the *scoring* to a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
via ``loop.run_in_executor``.  Every serving contract is preserved by
construction, not by re-implementation: the executor worker calls the
same :class:`~repro.serving.http.EndpointRouter` the threaded server
uses, so the eight endpoints, the exception→status ladder, the
``X-Request-Id`` / ``X-Trace-Context`` propagation, per-request
deadlines, the degraded tier and the metric families are shared code.

Division of labour per request:

* **event loop** — read one framed request (``readuntil`` the blank
  line, ``readexactly`` the body), honour ``max_inflight`` with a plain
  counter (no lock: the loop is single-threaded), build the response
  bytes, write them back, keep the connection for the next request;
* **worker thread** — bind the request id into the logging context,
  open the request trace (context vars do not cross ``run_in_executor``,
  so the worker opens it itself), graft a ``serving.executor_hop`` span
  carrying the queue wait, run ``EndpointRouter.dispatch``, observe the
  latency sample *before* returning so a client that reads the response
  and immediately scrapes ``/metrics`` finds it.

Observability adds three series on top of the shared HTTP families:
``serving.loop_lag_seconds`` (a gauge sampled by a watchdog coroutine —
the canonical "is the loop blocked" signal), ``serving.executor.queue_depth``
(requests admitted but not yet answered) and
``serving.executor.wait_seconds`` (time a request sat between admission
and a worker picking it up).

Graceful drain (``shutdown()`` or SIGTERM wired by the CLI): stop
accepting, let in-flight requests finish within the deadline budget,
close idle keep-alive connections, flush the
:class:`~repro.serving.batcher.MicroBatcher`, then reap the executor.
Streaming publishes are not interrupted — see
:meth:`repro.streaming.pipeline.StreamingPipeline.close`.

Only the standard library is used, matching the threaded front end.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.observability.logging import (
    get_logger,
    new_request_id,
    request_context,
)
from repro.observability.propagation import TraceContext
from repro.serving.batcher import MicroBatcher
from repro.serving.http import (
    _PROMETHEUS_CONTENT_TYPE,
    ROUTE_LABELS,
    EndpointRouter,
)
from repro.serving.service import LinkPredictionService

# Access records must land on the same logger name as the threaded front
# end: downstream log routing (and the observability tests) key on it.
_access_log = get_logger("repro.serving.http")
_log = get_logger("repro.serving.aio")

MAX_HEADER_BYTES = 64 * 1024
"""Upper bound on one request head (request line + headers)."""

MAX_BODY_BYTES = 8 * 1024 * 1024
"""Upper bound on one request body — larger posts answer 400."""

_LAG_INTERVAL_S = 0.25
"""How often the watchdog coroutine samples event-loop lag."""


class _MalformedRequest(Exception):
    """One request this parser refuses; carries connection disposition.

    ``recoverable`` is ``True`` when the head was fully consumed and the
    framing of any body is known, so the connection can answer 400 and
    keep serving subsequent pipelined requests; ``False`` means the byte
    stream is unsynchronized and the connection must close after the 400.
    """

    def __init__(self, message: str, recoverable: bool):
        super().__init__(message)
        self.recoverable = recoverable


class _Request:
    """One parsed HTTP request as read off the event loop."""

    __slots__ = ("method", "target", "headers", "body", "keep_alive")

    def __init__(
        self,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        keep_alive: bool,
    ):
        self.method = method
        self.target = target
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive


def default_workers() -> int:
    """Executor sizing default: enough threads to hide scoring latency
    without GIL-thrashing — ``min(32, cpu_count + 4)``, mirroring the
    stdlib's own ``ThreadPoolExecutor`` heuristic."""
    return min(32, (os.cpu_count() or 4) + 4)


class AsyncLinkPredictionServer:
    """Asyncio HTTP server bound to one service (and optional batcher).

    Mirrors :class:`~repro.serving.http.LinkPredictionServer`'s
    constructor contract (same validation, same defaults) and its
    lifecycle surface — :meth:`serve_forever` blocks in the calling
    thread, :meth:`start` runs it on a daemon thread and returns once
    the socket is bound, :meth:`shutdown` drains gracefully and
    :meth:`server_close` reaps the thread and the executor — so tests
    and the CLI can swap the two front ends freely.
    """

    def __init__(
        self,
        service: LinkPredictionService,
        host: str = "127.0.0.1",
        port: int = 8080,
        batcher: Optional[MicroBatcher] = None,
        max_inflight: Optional[int] = None,
        request_deadline_s: Optional[float] = None,
        max_workers: Optional[int] = None,
        drain_grace_s: float = 5.0,
    ):
        if max_inflight is not None and int(max_inflight) < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_workers is not None and int(max_workers) < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.service = service
        self.batcher = batcher
        self.router = EndpointRouter(
            service, batcher, request_deadline_s=request_deadline_s
        )
        self.request_deadline_s = self.router.request_deadline_s
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.max_workers = (
            default_workers() if max_workers is None else int(max_workers)
        )
        self.drain_grace_s = float(drain_grace_s)
        self._host = host
        self._port = port
        self._address: Optional[Tuple[str, int]] = None
        self._inflight = 0
        self._draining = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._conn_tasks: "set" = set()
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        registry = service.registry
        self._loop_lag = registry.gauge(
            "serving.loop_lag_seconds",
            help="Event-loop scheduling lag sampled by the watchdog task.",
        )
        self._queue_depth = registry.gauge(
            "serving.executor.queue_depth",
            help="Requests admitted to the executor but not yet answered.",
        )
        self._executor_wait = registry.histogram(
            "serving.executor.wait_seconds",
            help="Queue wait between admission and a worker thread start.",
        )

    # -- lifecycle -------------------------------------------------------
    @property
    def server_address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — available once serving started."""
        if self._address is None:
            return (self._host, self._port)
        return self._address

    @property
    def running(self) -> bool:
        """Whether the daemon serving thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def serve_forever(self) -> None:
        """Run the event loop in the calling thread until :meth:`shutdown`."""
        asyncio.run(self._main())

    def start(self) -> "AsyncLinkPredictionServer":
        """Serve on a daemon thread; returns once the socket is bound."""
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-aio-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("asyncio server failed to start within 10s")
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise self._startup_error
        return self

    def _thread_main(self) -> None:
        """Daemon-thread entry: surface bind errors to :meth:`start`."""
        try:
            self.serve_forever()
        except BaseException as exc:  # re-raised from start()
            self._startup_error = exc
        finally:
            self._ready.set()

    def shutdown(self, wait: bool = True) -> None:
        """Begin graceful drain; with ``wait`` block until serving ended.

        Threadsafe: stops accepting, lets in-flight requests finish
        within ``max(drain_grace_s, request_deadline_s)``, closes idle
        keep-alive connections, flushes the batcher's queue and shuts
        the executor down.
        """
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        if (
            wait
            and self._thread is not None
            and self._thread is not threading.current_thread()
        ):
            self._thread.join(
                timeout=max(self.drain_grace_s, 1.0) + 30.0
            )

    def _signal_stop(self) -> None:
        """Flip the stop event from inside the loop."""
        if self._stop_event is not None:
            self._stop_event.set()

    def server_close(self) -> None:
        """Drain (if still serving) and reap the daemon thread."""
        self.shutdown(wait=True)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    async def _main(self) -> None:
        """The whole server lifetime as one coroutine."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-aio-worker",
        )
        server = await asyncio.start_server(
            self._on_connection,
            self._host,
            self._port,
            limit=MAX_HEADER_BYTES,
        )
        self._server = server
        sockname = server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        lag_task = asyncio.ensure_future(self._lag_monitor())
        self._ready.set()
        _log.info(
            "asyncio server listening",
            host=self._address[0],
            port=self._address[1],
            workers=self.max_workers,
        )
        try:
            await self._stop_event.wait()
        finally:
            await self._drain(lag_task)

    async def _drain(self, lag_task: "asyncio.Future") -> None:
        """Stop accepting, finish in-flight, flush, reap — in that order."""
        self._draining = True
        assert self._server is not None and self._loop is not None
        self._server.close()
        await self._server.wait_closed()
        budget = self.drain_grace_s
        if self.request_deadline_s is not None:
            budget = max(budget, self.request_deadline_s)
        give_up = self._loop.time() + budget
        while self._inflight > 0 and self._loop.time() < give_up:
            await asyncio.sleep(0.01)
        # Give just-finished requests a beat to write their responses,
        # then cancel whatever is left: idle keep-alive readers.
        await asyncio.sleep(0.05)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )
        lag_task.cancel()
        await asyncio.gather(lag_task, return_exceptions=True)
        if self.batcher is not None and self.batcher.running:
            # The flush blocks; run it off-loop so lag sampling could
            # continue if it ever moves before the cancel above.
            await self._loop.run_in_executor(None, self.batcher.flush)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        _log.info("asyncio server drained", inflight=self._inflight)

    async def _lag_monitor(self) -> None:
        """Sample event-loop scheduling lag into the gauge forever."""
        while True:
            before = time.perf_counter()
            await asyncio.sleep(_LAG_INTERVAL_S)
            lag = max(0.0, time.perf_counter() - before - _LAG_INTERVAL_S)
            self._loop_lag.set(lag)

    # -- connection handling ---------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Accept callback: spawn (and track) one connection task."""
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve framed requests off one connection until close/drain."""
        peer = writer.get_extra_info("peername")
        client = peer[0] if peer else None
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _MalformedRequest as exc:
                    keep = exc.recoverable
                    await self._answer_malformed(writer, exc, client, keep)
                    if not keep:
                        break
                    continue
                if request is None:
                    break  # clean EOF between requests
                keep = request.keep_alive and not self._draining
                await self._answer(request, writer, client, keep)
                if not keep:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_Request]:
        """Read one framed request; ``None`` on clean EOF.

        Raises :class:`_MalformedRequest` for anything this server will
        not serve, flagged recoverable only when the connection's byte
        stream is still synchronized afterwards.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise _MalformedRequest(
                "truncated request head", recoverable=False
            ) from None
        except asyncio.LimitOverrunError:
            raise _MalformedRequest(
                f"request head exceeds {MAX_HEADER_BYTES} bytes",
                recoverable=False,
            ) from None
        lines = head.decode("latin-1").split("\r\n")
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep or not name.strip():
                # Without every header the body framing is unknowable.
                raise _MalformedRequest(
                    f"malformed header line: {line!r}", recoverable=False
                )
            headers[name.strip().lower()] = value.strip()
        parts = lines[0].split()
        bad_request_line = None
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            bad_request_line = _MalformedRequest(
                f"malformed request line: {lines[0]!r}", recoverable=True
            )
            method, target, version = "GET", "/", "HTTP/1.1"
        else:
            method, target, version = parts
        if "transfer-encoding" in headers:
            raise _MalformedRequest(
                "transfer-encoding is not supported; send Content-Length",
                recoverable=False,
            )
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            raise _MalformedRequest(
                f"invalid Content-Length: {raw_length!r}", recoverable=False
            ) from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise _MalformedRequest(
                f"unacceptable Content-Length: {length}", recoverable=False
            )
        body = b""
        if length:
            # Consume the body even for a bad request line so the 400
            # leaves the stream aligned on the next request.
            body = await reader.readexactly(length)
        if bad_request_line is not None:
            raise bad_request_line
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.1":
            keep_alive = connection != "close"
        else:
            keep_alive = connection == "keep-alive"
        return _Request(method, target, headers, body, keep_alive)

    async def _answer_malformed(
        self,
        writer: asyncio.StreamWriter,
        exc: _MalformedRequest,
        client: Optional[str],
        keep: bool,
    ) -> None:
        """400 with the uniform JSON error body; maybe keep the stream."""
        started = time.perf_counter()
        request_id = new_request_id()
        self.router.request_errors.labels(route="other").inc()
        payload = self.router.error_payload(400, str(exc), request_id)
        self.router.observe(
            "other", "INVALID", 400, time.perf_counter() - started
        )
        # Log before the body hits the socket (matching the legacy
        # handler): a client that reads the response must already be
        # able to find the access record.
        self._log_access("INVALID", "-", 400, started, client, request_id)
        writer.write(_format_response(400, payload, request_id, None, keep))
        await writer.drain()

    async def _answer(
        self,
        request: _Request,
        writer: asyncio.StreamWriter,
        client: Optional[str],
        keep: bool,
    ) -> None:
        """Admit, offload, respond — the per-request fast path."""
        started = time.perf_counter()
        incoming = request.headers.get("x-request-id")
        request_id = (incoming or new_request_id())[:64]
        url = urlsplit(request.target)
        route = ROUTE_LABELS.get(url.path, "other")
        deadline = (
            None
            if self.request_deadline_s is None
            else started + self.request_deadline_s
        )
        parent = TraceContext.from_header(
            request.headers.get("x-trace-context")
        )
        trace_context: Optional[TraceContext] = None
        if (
            self.max_inflight is not None
            and self._inflight >= self.max_inflight
        ):
            status, payload = self.router.shed(request_id)
            self.router.observe(
                route, request.method, status, time.perf_counter() - started
            )
        else:
            self._inflight += 1
            self._queue_depth.set(float(self._inflight))
            submitted = time.perf_counter()
            try:
                status, payload, trace_context = await self._loop.run_in_executor(
                    self._executor,
                    self._execute,
                    request.method,
                    url.path,
                    url.query,
                    request.body,
                    request_id,
                    parent,
                    route,
                    started,
                    submitted,
                    deadline,
                )
            except RuntimeError:
                # Executor already shut down: the server is draining.
                status, payload = 503, self.router.error_payload(
                    503, "server is draining; retry elsewhere", request_id
                )
            except Exception as exc:  # the contract: never an unhandled 500
                _log.error(
                    "executor hop failed",
                    route=route,
                    error=f"{type(exc).__name__}: {exc}",
                    request_id=request_id,
                )
                status, payload = 500, self.router.error_payload(
                    500,
                    f"internal error: {type(exc).__name__}: {exc}",
                    request_id,
                )
            finally:
                self._inflight -= 1
                self._queue_depth.set(float(self._inflight))
        # Log before the body hits the socket (matching the legacy
        # handler, which logs from send_response): once the client has
        # read the response, the access record must already exist.
        self._log_access(
            request.method, url.path, status, started, client, request_id
        )
        writer.write(
            _format_response(status, payload, request_id, trace_context, keep)
        )
        await writer.drain()

    def _execute(
        self,
        method: str,
        path: str,
        query_string: str,
        body: bytes,
        request_id: str,
        parent: Optional[TraceContext],
        route: str,
        started: float,
        submitted: float,
        deadline: Optional[float],
    ) -> Tuple[int, Union[Dict, str], Optional[TraceContext]]:
        """Worker-thread half of one request.

        Context variables do not cross ``run_in_executor``, so the
        worker re-binds the request id and opens the request trace
        itself; the queue wait becomes a ``serving.executor_hop`` span
        so a sampled trace shows exactly where admission-to-start time
        went.  The latency sample is observed here, before the event
        loop writes the response — same ordering contract as the
        threaded front end.
        """
        queue_wait = time.perf_counter() - submitted
        self._executor_wait.observe(queue_wait)
        tracer = self.service.tracer
        query = parse_qs(query_string)
        with request_context(request_id):
            with tracer.trace(
                route, parent=parent, request_id=request_id
            ) as req_trace:
                if req_trace.is_recording:
                    req_trace.add_span(
                        "serving.executor_hop",
                        queue_wait,
                        attrs={"queue_wait_s": round(queue_wait, 6)},
                    )
                status, payload = self.router.dispatch(
                    method, path, query, body, request_id, deadline
                )
                if status >= 500:
                    req_trace.mark_error(
                        payload.get("error", f"http {status}")
                        if isinstance(payload, dict)
                        else f"http {status}"
                    )
                context = req_trace.context
                self.router.observe(
                    route, method, status, time.perf_counter() - started
                )
            # The trace committed when the block exited — before the
            # event loop can possibly write the response bytes.
        return status, payload, context

    def _log_access(
        self,
        method: str,
        path: str,
        status: int,
        started: float,
        client: Optional[str],
        request_id: str,
    ) -> None:
        """Structured DEBUG access record, same shape as the threaded server."""
        if not _access_log.isEnabledFor(logging.DEBUG):
            return
        _access_log.debug(
            f'"{method} {path}" {status}',
            method=method,
            path=path,
            status=status,
            duration_ms=(time.perf_counter() - started) * 1e3,
            client=client,
            request_id=request_id,
        )


def _format_response(
    status: int,
    payload: Union[Dict, str],
    request_id: Optional[str],
    trace_context: Optional[TraceContext],
    keep: bool,
) -> bytes:
    """One fully-framed HTTP/1.1 response as bytes."""
    if isinstance(payload, str):
        blob = payload.encode("utf-8")
        content_type = _PROMETHEUS_CONTENT_TYPE
    else:
        blob = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    try:
        phrase = HTTPStatus(status).phrase
    except ValueError:
        phrase = "Unknown"
    head = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(blob)}",
    ]
    if request_id is not None:
        head.append(f"X-Request-Id: {request_id}")
    if trace_context is not None:
        head.append(f"X-Trace-Context: {trace_context.to_header()}")
    head.append(f"Connection: {'keep-alive' if keep else 'close'}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + blob


def make_async_server(
    service: LinkPredictionService,
    host: str = "127.0.0.1",
    port: int = 8080,
    batcher: Optional[MicroBatcher] = None,
    max_inflight: Optional[int] = None,
    request_deadline_s: Optional[float] = None,
    max_workers: Optional[int] = None,
) -> AsyncLinkPredictionServer:
    """Build (but do not start) an asyncio server; ``port=0`` picks a port.

    Mirrors :func:`repro.serving.http.make_server` so call sites can
    switch front ends by swapping one constructor.
    """
    return AsyncLinkPredictionServer(
        service,
        host=host,
        port=port,
        batcher=batcher,
        max_inflight=max_inflight,
        request_deadline_s=request_deadline_s,
        max_workers=max_workers,
    )
