"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class NetworkError(ReproError):
    """A network container was queried or mutated inconsistently."""


class UnknownNodeError(NetworkError):
    """A node identifier does not exist in the network."""


class DuplicateNodeError(NetworkError):
    """A node identifier was added twice to the same network."""


class AlignmentError(ReproError):
    """Anchor links reference unknown users or violate one-to-one-ness."""


class FeatureError(ReproError):
    """Feature extraction was asked for something it cannot produce."""


class OptimizationError(ReproError):
    """An optimization routine diverged or was configured inconsistently."""


class NotFittedError(ReproError):
    """A model was asked to predict before :meth:`fit` was called."""


class EvaluationError(ReproError):
    """An evaluation routine received degenerate or inconsistent input."""


class SerializationError(ReproError):
    """A network or model could not be serialized or deserialized."""


class ArtifactCorruptError(SerializationError):
    """A stored artifact failed its integrity validation.

    Raised when a checksum/digest mismatch, a truncated file, or an
    undeserializable payload is detected *before* the artifact is handed to
    any consumer.  Subclasses :class:`SerializationError` so every existing
    fallback path (serving's stale-serve reload, the CLI) already handles
    it; the distinct type lets chaos tests and HTTP handlers tell corruption
    apart from configuration mistakes.
    """


class WalCorruptError(SerializationError):
    """A write-ahead-log segment failed validation *before* its tail.

    Torn or half-written records at the very tail of the newest segment are
    expected after a crash and are silently truncated during recovery; a
    checksum/framing failure anywhere *earlier* means the log lost already
    durable records and recovery must stop loudly rather than replay a
    hole."""


class ReliabilityError(ReproError):
    """Base class for the failures of the reliability layer itself."""


class BackpressureError(ReliabilityError):
    """The streaming ingest queue stayed full past the caller's timeout.

    Raised *before* anything is written to the write-ahead log, so a shed
    delta is never acknowledged and never replayed; callers retry with
    backoff or drop the delta knowingly."""


class RetryExhaustedError(ReliabilityError):
    """Every attempt permitted by a :class:`~repro.reliability.RetryPolicy`
    failed; the last underlying error is chained as ``__cause__``."""


class DeadlineExceededError(ReliabilityError):
    """A request or retry loop ran out of its wall-clock budget."""


class CircuitOpenError(ReliabilityError):
    """A call was refused because its circuit breaker is open."""


class TruncatedSVTWarning(RuntimeWarning):
    """The truncated SVT dropped singular values above the threshold.

    The rank-``r`` Lanczos path of
    :func:`~repro.optim.proximal.truncated_singular_value_threshold` equals
    the exact prox only when the (r+1)-th singular value falls below the
    shrinkage threshold; this warning signals the run where it did not, so
    the approximation was lossy.  The lost mass is also recorded on the
    active tracer as the ``svt.tail_excess`` metric.
    """
