"""Solving the joint mapping-function inference (Theorem 1).

Minimizing ``(Cost_A + Cost_S) / Cost_D`` over linear maps amounts to the
generalized eigenproblem::

    Z(μL_A + L_S)Zᵀ x = λ Z L_D Zᵀ x

where ``Z`` is the block-diagonal matrix of per-network feature columns.
The projection matrix ``F`` stacks the ``c`` generalized eigenvectors with
the smallest non-zero eigenvalues; splitting ``F`` by network blocks yields
the per-network maps ``F^t, F^1, …, F^K``.

Both sides are made numerically symmetric positive semi-definite before the
solve, and a small ridge is added to the right-hand side (``Z L_D Zᵀ`` can be
rank-deficient when the sampled instances don't span the feature space).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
import scipy.linalg

from repro.exceptions import AlignmentError
from repro.adaptation.indicators import LinkInstanceSample, build_joint_indicators
from repro.adaptation.laplacian import laplacian_matrix
from repro.networks.aligned import AnchorLinks
from repro.utils.validation import check_integer, check_non_negative


@dataclass
class ProjectionResult:
    """The inferred per-network projection matrices.

    Attributes
    ----------
    projections:
        ``F^k`` for each network (target first), each of shape ``(d_k, c)``.
    eigenvalues:
        The ``c`` selected generalized eigenvalues (ascending).
    """

    projections: List[np.ndarray]
    eigenvalues: np.ndarray

    @property
    def latent_dimension(self) -> int:
        """The shared latent dimension ``c``."""
        return self.projections[0].shape[1]


def solve_projections(
    samples: Sequence[LinkInstanceSample],
    anchors_to_target: Sequence[AnchorLinks],
    latent_dimension: int,
    mu: float = 1.0,
    ridge: float = 1e-8,
    zero_tolerance: float = 1e-10,
) -> ProjectionResult:
    """Infer the projection matrices ``F^k`` from sampled link instances.

    Parameters
    ----------
    samples:
        Target sample first, then one per source.
    anchors_to_target:
        Anchor links from the target to each source.
    latent_dimension:
        The shared dimension ``c``.
    mu:
        Weight of the anchor-alignment cost (the paper uses μ = 1.0).
    ridge:
        Ridge added to the right-hand side for numerical definiteness.
    zero_tolerance:
        Eigenvalues below this are treated as the theorem's "zero"
        eigenvalues and skipped.
    """
    latent_dimension = check_integer(latent_dimension, "latent_dimension", minimum=1)
    mu = check_non_negative(mu, "mu")
    ridge = check_non_negative(ridge, "ridge")
    dims = [s.n_features for s in samples]
    total_dim = sum(dims)
    if latent_dimension > total_dim:
        raise AlignmentError(
            f"latent_dimension ({latent_dimension}) exceeds the stacked "
            f"feature dimension ({total_dim})"
        )
    w_a, w_s, w_d = build_joint_indicators(samples, anchors_to_target)
    l_a = laplacian_matrix(w_a)
    l_s = laplacian_matrix(w_s)
    l_d = laplacian_matrix(w_d)
    z = _block_diagonal_features(samples)
    left = z @ (mu * l_a + l_s) @ z.T
    right = z @ l_d @ z.T
    left = (left + left.T) / 2.0
    right = (right + right.T) / 2.0 + ridge * np.eye(total_dim)
    eigenvalues, eigenvectors = scipy.linalg.eigh(left, right)
    order = np.argsort(eigenvalues)
    selected = [
        idx for idx in order if eigenvalues[idx] > zero_tolerance
    ][:latent_dimension]
    if len(selected) < latent_dimension:
        # Fall back to the smallest eigenvalues regardless of the zero cut
        # (happens when the left-hand side is itself near-singular).
        selected = list(order[:latent_dimension])
    chosen = eigenvectors[:, selected]
    eigvals = eigenvalues[selected]
    projections = []
    offset = 0
    for dim in dims:
        projections.append(chosen[offset:offset + dim, :].copy())
        offset += dim
    return ProjectionResult(projections=projections, eigenvalues=eigvals)


def _block_diagonal_features(
    samples: Sequence[LinkInstanceSample],
) -> np.ndarray:
    """The paper's block matrix ``Z`` ((Σ d_k) × (Σ m_k))."""
    dims = [s.n_features for s in samples]
    sizes = [s.n_instances for s in samples]
    z = np.zeros((sum(dims), sum(sizes)))
    row, col = 0, 0
    for sample in samples:
        z[row:row + sample.n_features, col:col + sample.n_instances] = (
            sample.features
        )
        row += sample.n_features
        col += sample.n_instances
    return z
