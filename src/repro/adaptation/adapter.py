"""High-level domain adapter: fit projections, project tensors, re-index.

:class:`DomainAdapter` packages the Section III-C pipeline:

1. sample link instances from each network (anchor-images of the target's
   sampled pairs are injected into each source sample so ``W_A`` has support);
2. solve the generalized eigenproblem for the per-network maps ``F^k``;
3. project each network's feature tensor into the shared latent space;
4. re-index each projected *source* tensor onto the target's user pairs via
   the anchor links (the paper's "users in X̂^k are organized in the same
   order as X^t") — unanchored pairs transfer nothing.

Because the latent space is built to place link instances close together and
far from non-link instances, the natural *intimacy* readout of an embedded
pair is its nearest-centroid margin — distance to the pooled non-link
centroid minus distance to the pooled link centroid, computed across all
networks' fitted instances (they share the space).
:meth:`DomainAdapter.affinity_matrix` exposes that readout min-max
normalized to [0, 1]; SLAMPRED consumes it as the adapted intimacy tensor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.adaptation.indicators import LinkInstanceSample, sample_link_instances
from repro.adaptation.projection import ProjectionResult, solve_projections
from repro.exceptions import AlignmentError, NotFittedError
from repro.features.tensor import FeatureTensor
from repro.networks.aligned import AnchorLinks
from repro.networks.social import SocialGraph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_integer, check_non_negative


def align_source_to_target(
    projected_source: FeatureTensor,
    anchors: AnchorLinks,
    n_target_users: int,
) -> FeatureTensor:
    """Re-index a projected source tensor onto the target's user pairs.

    For a target pair ``(i, j)`` whose endpoints are both anchored to source
    users ``(a, b)``, the output carries the source's latent features of
    ``(a, b)``; other pairs get zeros (no information transfers for them).
    """
    c = projected_source.n_features
    out = np.zeros((c, n_target_users, n_target_users))
    source_values = projected_source.values
    anchored = [
        (t, s)
        for t, s in anchors.pairs
        if 0 <= t < n_target_users and 0 <= s < projected_source.n_users
    ]
    for t_i, s_i in anchored:
        for t_j, s_j in anchored:
            if t_i == t_j:
                continue
            out[:, t_i, t_j] = source_values[:, s_i, s_j]
    return FeatureTensor(out, projected_source.feature_names)


class DomainAdapter:
    """Fit and apply the shared-latent-space feature projection.

    Parameters
    ----------
    latent_dimension:
        The shared dimension ``c``.
    mu:
        Weight of the anchor-alignment cost term (paper: 1.0).
    instances_per_network:
        Link-instance sample size per network used to fit the projections
        and the pooled latent classifier.  ``None`` (default) scales with
        the target: ``clip(4 · n_target_users, 150, 1200)``.
    random_state:
        Seed for the instance sampling.

    Examples
    --------
    >>> from repro.synth import generate_aligned_pair
    >>> from repro.features import IntimacyFeatureExtractor
    >>> from repro.networks import SocialGraph
    >>> aligned = generate_aligned_pair(scale=60, random_state=1)
    >>> extractor = IntimacyFeatureExtractor()
    >>> tensors = [extractor.extract(n) for n in aligned.networks]
    >>> graphs = [SocialGraph.from_network(n) for n in aligned.networks]
    >>> adapter = DomainAdapter(latent_dimension=4, random_state=1)
    >>> adapted = adapter.fit_transform(tensors, graphs, aligned.anchors)
    >>> [t.n_features for t in adapted]
    [4, 4]
    """

    def __init__(
        self,
        latent_dimension: int = 5,
        mu: float = 1.0,
        instances_per_network: Optional[int] = None,
        random_state: RandomState = None,
    ):
        self.latent_dimension = check_integer(
            latent_dimension, "latent_dimension", minimum=1
        )
        self.mu = check_non_negative(mu, "mu")
        if instances_per_network is None:
            self.instances_per_network = None
        else:
            self.instances_per_network = check_integer(
                instances_per_network, "instances_per_network", minimum=2
            )
        self.random_state = random_state
        self._result: Optional[ProjectionResult] = None
        self._samples: Optional[List[LinkInstanceSample]] = None

    # ------------------------------------------------------------------
    @property
    def result(self) -> ProjectionResult:
        """The fitted projections; raises if :meth:`fit` has not run."""
        if self._result is None:
            raise NotFittedError("DomainAdapter has not been fitted")
        return self._result

    def fit(
        self,
        tensors: Sequence[FeatureTensor],
        graphs: Sequence[SocialGraph],
        anchors_to_target: Sequence[AnchorLinks],
    ) -> "DomainAdapter":
        """Fit the per-network projection matrices.

        Parameters
        ----------
        tensors:
            Feature tensors, target first then sources.
        graphs:
            Training social graphs in the same order (labels come from
            these, so pass training views during evaluation).
        anchors_to_target:
            Anchor links from the target to each source.
        """
        if len(tensors) != len(graphs):
            raise AlignmentError(
                f"{len(tensors)} tensors but {len(graphs)} graphs"
            )
        if len(tensors) != len(anchors_to_target) + 1:
            raise AlignmentError(
                f"{len(tensors)} networks need {len(tensors) - 1} anchor "
                f"sets, got {len(anchors_to_target)}"
            )
        rng = ensure_rng(self.random_state)
        n_instances = self.instances_per_network
        if n_instances is None:
            n_instances = int(np.clip(4 * graphs[0].n_users, 150, 1200))
        target_sample = sample_link_instances(
            graphs[0], tensors[0], n_instances, rng
        )
        samples: List[LinkInstanceSample] = [target_sample]
        for tensor, graph, anchors in zip(
            tensors[1:], graphs[1:], anchors_to_target
        ):
            forced = _anchor_images(target_sample, anchors, graph.n_users)
            samples.append(
                sample_link_instances(
                    graph,
                    tensor,
                    n_instances,
                    rng,
                    forced_pairs=forced,
                )
            )
        self._result = solve_projections(
            samples,
            anchors_to_target,
            latent_dimension=self.latent_dimension,
            mu=self.mu,
        )
        self._samples = samples
        return self

    def transform(self, tensor: FeatureTensor, network_index: int) -> FeatureTensor:
        """Project one network's tensor with its fitted ``F^k``."""
        projections = self.result.projections
        if not 0 <= network_index < len(projections):
            raise AlignmentError(
                f"network_index {network_index} out of range "
                f"(fitted {len(projections)} networks)"
            )
        return tensor.project(projections[network_index])

    def pooled_centroids(self) -> Tuple[np.ndarray, np.ndarray]:
        """Latent centroids of link and non-link instances across networks.

        Returns ``(link_centroid, non_link_centroid)``, each of length ``c``.
        Instances from every fitted network contribute — they live in the
        shared space, which is the point of the alignment.
        """
        result = self.result
        if self._samples is None:
            raise NotFittedError("DomainAdapter has not been fitted")
        latent_columns = []
        labels = []
        for projection, sample in zip(result.projections, self._samples):
            latent_columns.append(projection.T @ sample.features)  # (c, m)
            labels.append(sample.labels)
        latent = np.hstack(latent_columns)
        labels = np.concatenate(labels)
        if not np.any(labels == 1.0) or not np.any(labels == 0.0):
            raise AlignmentError(
                "fitted instances must include both links and non-links"
            )
        link_centroid = latent[:, labels == 1.0].mean(axis=1)
        non_link_centroid = latent[:, labels == 0.0].mean(axis=1)
        return link_centroid, non_link_centroid

    def pooled_latent_classifier(self):
        """Logistic model separating links from non-links in latent space.

        Trained on the *pooled* projected instances of every fitted network.
        This is the payoff of the alignment: source-network link labels
        supervise a classifier that is directly applicable to target pairs
        because all networks share the latent space.
        """
        from repro.models.classifiers import LogisticRegression

        result = self.result
        if self._samples is None:
            raise NotFittedError("DomainAdapter has not been fitted")
        latent_rows = []
        labels = []
        for projection, sample in zip(result.projections, self._samples):
            latent_rows.append((projection.T @ sample.features).T)  # (m, c)
            labels.append(sample.labels)
        features = np.vstack(latent_rows)
        labels = np.concatenate(labels)
        model = LogisticRegression(l2=1.0)
        model.fit(features, labels)
        return model

    def affinity_matrix(
        self, tensor: FeatureTensor, network_index: int
    ) -> np.ndarray:
        """Per-pair link affinity of one network in [0, 1].

        Projects the tensor with the network's fitted ``F^k`` and scores
        every pair with the pooled latent classifier
        (:meth:`pooled_latent_classifier`).  Scores are quantile-transformed
        to [0, 1] (uniform spread, outlier-proof) with the diagonal zeroed.
        """
        from scipy.stats import rankdata

        latent = self.transform(tensor, network_index)
        model = self.pooled_latent_classifier()
        n = latent.n_users
        flat = latent.values.reshape(latent.n_features, -1).T  # (n², c)
        logits = model.decision_function(flat).reshape(n, n)
        logits = (logits + logits.T) / 2.0
        affinity = rankdata(logits.ravel()).reshape(n, n)
        affinity = (affinity - 1.0) / max(1, affinity.size - 1)
        np.fill_diagonal(affinity, 0.0)
        return affinity

    def fit_transform(
        self,
        tensors: Sequence[FeatureTensor],
        graphs: Sequence[SocialGraph],
        anchors_to_target: Sequence[AnchorLinks],
    ) -> List[FeatureTensor]:
        """Fit, project every tensor, and re-index sources to target pairs.

        Returns adapted tensors ``[X̂^t, X̂^1, …, X̂^K]``, every one shaped
        ``(c, n_t, n_t)`` over the *target's* users.
        """
        self.fit(tensors, graphs, anchors_to_target)
        n_target = tensors[0].n_users
        adapted = [self.transform(tensors[0], 0)]
        for k, (tensor, anchors) in enumerate(
            zip(tensors[1:], anchors_to_target), start=1
        ):
            projected = self.transform(tensor, k)
            adapted.append(
                align_source_to_target(projected, anchors, n_target)
            )
        return adapted


def _anchor_images(
    target_sample: LinkInstanceSample,
    anchors: AnchorLinks,
    n_source_users: int,
) -> List:
    """Source pairs that are anchor-images of the target's sampled pairs."""
    forced = []
    for i, j in target_sample.pairs:
        a, b = anchors.map_forward(i), anchors.map_forward(j)
        if a is None or b is None:
            continue
        if 0 <= a < n_source_users and 0 <= b < n_source_users and a != b:
            forced.append((min(a, b), max(a, b)))
    return forced
