"""Graph Laplacians of the indicator matrices."""

from __future__ import annotations

import numpy as np

from repro.exceptions import AlignmentError
from repro.utils.matrices import is_square


def laplacian_matrix(weights: np.ndarray) -> np.ndarray:
    """Unnormalized Laplacian ``L = D − W`` of a symmetric weight matrix.

    ``D`` is the diagonal row-sum matrix, exactly as the paper defines
    ``L_A = D_A − W_A``.
    """
    weights = np.asarray(weights, dtype=float)
    if not is_square(weights):
        raise AlignmentError(
            f"weight matrix must be square, got shape {weights.shape}"
        )
    if not np.allclose(weights, weights.T, atol=1e-9):
        raise AlignmentError("weight matrix must be symmetric")
    degrees = weights.sum(axis=1)
    return np.diag(degrees) - weights
