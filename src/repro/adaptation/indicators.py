"""Link-instance sampling and the W_A / W_S / W_D indicator matrices.

The paper defines the indicators over *all* potential links, which is
quadratic in users and quartic in the joint matrices — intractable even at
the paper's scale.  Like the original evaluation, we work with a sampled set
of link instances per network, balanced between existing links (label 1) and
non-links (label 0).  To guarantee the aligned-link indicator ``W_A`` has
support, the source samples deliberately include the anchor-images of the
target's sampled pairs (when both endpoints are anchored) before topping up
with random source pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import AlignmentError
from repro.features.tensor import FeatureTensor
from repro.networks.aligned import AnchorLinks
from repro.networks.social import SocialGraph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_integer


@dataclass
class LinkInstanceSample:
    """Sampled link instances of one network.

    Attributes
    ----------
    pairs:
        The sampled ``(i, j)`` user index pairs (i < j).
    labels:
        Link-existence label per pair (Definition 5): 1 if the pair is a
        link in the (training) graph, else 0.
    features:
        Feature matrix ``Z^k`` of shape ``(d_k, m_k)`` — one column per
        instance, as in the paper's block matrix ``Z``.
    """

    pairs: List[Tuple[int, int]]
    labels: np.ndarray
    features: np.ndarray

    @property
    def n_instances(self) -> int:
        """Number of sampled instances ``m_k``."""
        return len(self.pairs)

    @property
    def n_features(self) -> int:
        """Feature dimensionality ``d_k``."""
        return self.features.shape[0]


def sample_link_instances(
    graph: SocialGraph,
    tensor: FeatureTensor,
    n_instances: int,
    random_state: RandomState = None,
    forced_pairs: Sequence[Tuple[int, int]] = (),
) -> LinkInstanceSample:
    """Sample a balanced set of link instances from one network.

    Parameters
    ----------
    graph:
        Training social structure supplying labels.
    tensor:
        The network's intimacy feature tensor (supplies feature columns).
    n_instances:
        Target sample size; split half/half between links and non-links
        where availability allows.
    forced_pairs:
        Pairs that must be included (used to inject anchor-images of the
        target's sample into source samples); they count toward the budget.
    """
    n_instances = check_integer(n_instances, "n_instances", minimum=1)
    if tensor.n_users != graph.n_users:
        raise AlignmentError(
            f"tensor covers {tensor.n_users} users but graph has {graph.n_users}"
        )
    rng = ensure_rng(random_state)
    chosen: List[Tuple[int, int]] = []
    seen = set()
    for i, j in forced_pairs:
        pair = (int(min(i, j)), int(max(i, j)))
        if pair not in seen:
            seen.add(pair)
            chosen.append(pair)
    links = sorted(graph.links() - seen)
    non_links = sorted(set(graph.non_links()) - seen)
    remaining = max(0, n_instances - len(chosen))
    want_links = min(remaining // 2, len(links))
    want_non = min(remaining - want_links, len(non_links))
    if want_links:
        idx = rng.choice(len(links), size=want_links, replace=False)
        chosen.extend(links[i] for i in sorted(idx.tolist()))
    if want_non:
        idx = rng.choice(len(non_links), size=want_non, replace=False)
        chosen.extend(non_links[i] for i in sorted(idx.tolist()))
    adjacency = graph.adjacency
    labels = np.array([adjacency[i, j] for i, j in chosen], dtype=float)
    features = tensor.pair_vectors(chosen).T  # (d, m)
    return LinkInstanceSample(chosen, labels, features)


def aligned_indicator(
    sample_a: LinkInstanceSample,
    sample_b: LinkInstanceSample,
    anchors: AnchorLinks,
) -> np.ndarray:
    """The aligned-social-link indicator ``W_A`` between two samples.

    Entry ``(p, q)`` is 1 iff both endpoints of pair ``p`` in the first
    network are anchored to the endpoints of pair ``q`` in the second
    (Definition 4).  ``anchors`` maps first-network ids to second-network ids.
    """
    image = {}
    for idx, (i, j) in enumerate(sample_a.pairs):
        a, b = anchors.map_forward(i), anchors.map_forward(j)
        if a is not None and b is not None:
            image[(min(a, b), max(a, b))] = idx
    indicator = np.zeros((sample_a.n_instances, sample_b.n_instances))
    for q, pair in enumerate(sample_b.pairs):
        p = image.get(pair)
        if p is not None:
            indicator[p, q] = 1.0
    return indicator


def similar_indicator(
    sample_a: LinkInstanceSample, sample_b: LinkInstanceSample
) -> np.ndarray:
    """``W_S``: 1 where two instances share the same link-existence label."""
    return (
        sample_a.labels[:, None] == sample_b.labels[None, :]
    ).astype(float)


def dissimilar_indicator(
    sample_a: LinkInstanceSample, sample_b: LinkInstanceSample
) -> np.ndarray:
    """``W_D``: 1 where two instances have different link-existence labels."""
    return (
        sample_a.labels[:, None] != sample_b.labels[None, :]
    ).astype(float)


def build_joint_indicators(
    samples: Sequence[LinkInstanceSample],
    anchors_to_target: Sequence[AnchorLinks],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Assemble the joint block matrices ``W_A``, ``W_S``, ``W_D``.

    Parameters
    ----------
    samples:
        Target sample first, then one sample per source (the paper's
        ordering ``L = L^t ∪ L^1 ∪ … ∪ L^K``).
    anchors_to_target:
        One anchor set per source, mapping target ids to that source's ids.
        Anchor alignment between two *sources* is derived by composing
        through the target.

    Returns
    -------
    (W_A, W_S, W_D), each of shape ``(Σ m_k, Σ m_k)`` and symmetric.
    """
    if len(samples) != len(anchors_to_target) + 1:
        raise AlignmentError(
            f"{len(samples)} samples need {len(samples) - 1} anchor sets, "
            f"got {len(anchors_to_target)}"
        )
    sizes = [s.n_instances for s in samples]
    total = sum(sizes)
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    w_a = np.zeros((total, total))  # dense-ok: small sampled-instance space
    w_s = np.zeros((total, total))  # dense-ok: small sampled-instance space
    w_d = np.zeros((total, total))  # dense-ok: small sampled-instance space

    def block(matrix: np.ndarray, m: int, n: int, values: np.ndarray) -> None:
        matrix[offsets[m]:offsets[m + 1], offsets[n]:offsets[n + 1]] = values

    n_networks = len(samples)
    for m in range(n_networks):
        for n in range(n_networks):
            block(w_s, m, n, similar_indicator(samples[m], samples[n]))
            block(w_d, m, n, dissimilar_indicator(samples[m], samples[n]))
            if m == n:
                continue
            anchor = _anchor_between(m, n, anchors_to_target)
            if anchor is not None:
                block(w_a, m, n, aligned_indicator(samples[m], samples[n], anchor))
    # The diagonal of W_S would tie every instance to itself, which is vacuous
    # and dominates the Laplacian; zero the self-pairs.
    np.fill_diagonal(w_s, 0.0)
    w_a = np.maximum(w_a, w_a.T)
    return w_a, w_s, w_d


def _anchor_between(
    m: int, n: int, anchors_to_target: Sequence[AnchorLinks]
):
    """Anchor map from network index ``m`` to ``n`` (0 is the target)."""
    if m == 0:
        return anchors_to_target[n - 1]
    if n == 0:
        return anchors_to_target[m - 1].reversed()
    # source-to-source alignment composed through the target
    to_target = anchors_to_target[m - 1].reversed()
    from_target = anchors_to_target[n - 1]
    pairs = []
    for source_m_user, target_user in to_target.pairs:
        source_n_user = from_target.map_forward(target_user)
        if source_n_user is not None:
            pairs.append((source_m_user, source_n_user))
    return AnchorLinks(pairs)
