"""Cross-network domain adaptation by manifold alignment.

Section III-C of the paper: intimacy feature vectors of *link instances* from
the target and source networks are projected into a shared ``c``-dimensional
latent space.  Three supervision signals drive the projection:

* **aligned social links** (``W_A``) — pairs of link instances whose two
  endpoints are connected by anchor links must land close;
* **similar link-existence labels** (``W_S``) — instances that are both
  links (or both non-links) should land close;
* **dissimilar labels** (``W_D``) — link vs non-link instances should land
  far apart.

The optimal linear maps are the generalized eigenvectors of
``Z(μL_A + L_S)Zᵀ x = λ Z L_D Zᵀ x`` (Theorem 1), computed per network block
and applied to whole feature tensors.
"""

from repro.adaptation.indicators import (
    LinkInstanceSample,
    sample_link_instances,
    aligned_indicator,
    similar_indicator,
    dissimilar_indicator,
    build_joint_indicators,
)
from repro.adaptation.laplacian import laplacian_matrix
from repro.adaptation.projection import (
    ProjectionResult,
    solve_projections,
)
from repro.adaptation.adapter import DomainAdapter, align_source_to_target

__all__ = [
    "LinkInstanceSample",
    "sample_link_instances",
    "aligned_indicator",
    "similar_indicator",
    "dissimilar_indicator",
    "build_joint_indicators",
    "laplacian_matrix",
    "ProjectionResult",
    "solve_projections",
    "DomainAdapter",
    "align_source_to_target",
]
