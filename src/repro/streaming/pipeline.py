"""The streaming pipeline: ingest → WAL → apply → warm refit → publish.

:class:`StreamingPipeline` composes the subsystem's pieces around one
directory::

    <directory>/
    ├── wal/          segmented write-ahead log (the durability source)
    └── state.npz     latest StreamState snapshot (a replay accelerator)

**Recovery protocol** (runs in the constructor, and after any crash):

1. load ``state.npz`` if present and intact — a corrupt or torn snapshot
   is *discarded*, never trusted, because the WAL can always rebuild it;
2. open the WAL (which truncates a torn tail on the newest segment);
3. replay every record with ``seq > state.applied_seq`` into the state.

Because acknowledgement happens only after fsync, and apply is
idempotent per sequence number, the recovered state is bit-identical
(same :meth:`~repro.streaming.deltas.StreamState.digest`) to the state
an uninterrupted process would have reached over the acknowledged
prefix — that is the subsystem's headline guarantee, enforced by the
SIGKILL crash test.

**Continuous publish**: :meth:`tick` applies pending records, snapshots
and compacts on a cadence, then warm-refits and publishes through the
existing :class:`~repro.serving.artifacts.ArtifactStore` →
:meth:`~repro.serving.service.LinkPredictionService.reload` hot-swap
path.  Refit/publish failures feed a circuit breaker; once it opens the
pipeline engages the serving layer's degraded tier until a later tick
succeeds.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

from repro.exceptions import ArtifactCorruptError
from repro.observability.logging import get_logger
from repro.observability.metrics import NULL_REGISTRY
from repro.reliability.breaker import OPEN, CircuitBreaker
from repro.streaming.deltas import Delta, StreamState
from repro.streaming.ingest import StreamIngestor
from repro.streaming.refit import WarmRefitter
from repro.streaming.wal import WriteAheadLog

_log = get_logger("repro.streaming.pipeline")

_STAGES = ("apply", "snapshot", "refit", "publish", "reload")


class StreamingPipeline:
    """Durable ingest plus cadenced warm-refit-and-publish.

    Parameters
    ----------
    directory:
        Home of the WAL segments and the state snapshot.
    n_users:
        Fixed user population of the stream.
    store:
        Optional :class:`~repro.serving.artifacts.ArtifactStore`; when
        ``None`` the pipeline ingests and refits without publishing.
    refitter:
        The :class:`~repro.streaming.refit.WarmRefitter` to run each
        cadence tick (a small dense one is built when omitted).
    service:
        Optional :class:`~repro.serving.service.LinkPredictionService`
        to hot-swap after each publish (and to push into degraded mode
        when the refit breaker opens).
    registry:
        Metrics sink shared with the other streaming components.
    max_pending / submit_timeout:
        Backpressure window and default shed timeout of the ingest API.
    snapshot_every:
        Snapshot + compact the WAL every this many ticks.
    refit_breaker:
        Circuit breaker guarding refit+publish (3 consecutive failures
        open it by default).

    Examples
    --------
    >>> import tempfile
    >>> from repro.streaming.deltas import link_add
    >>> pipeline = StreamingPipeline(tempfile.mkdtemp(), n_users=6)
    >>> pipeline.submit(link_add(0, 1))
    1
    >>> pipeline.apply_pending()
    1
    >>> pipeline.state.n_links
    1
    """

    def __init__(
        self,
        directory: str,
        n_users: int,
        store=None,
        refitter: Optional[WarmRefitter] = None,
        service=None,
        registry=None,
        max_pending: int = 4096,
        submit_timeout: float = 0.5,
        snapshot_every: int = 1,
        refit_breaker: Optional[CircuitBreaker] = None,
        segment_max_bytes: int = 4 << 20,
    ):
        self.directory = str(directory)
        self.store = store
        self.service = service
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.submit_timeout = float(submit_timeout)
        self.snapshot_every = max(1, int(snapshot_every))
        self.state_path = os.path.join(self.directory, "state.npz")
        os.makedirs(self.directory, exist_ok=True)
        self.state = self._recover_state(int(n_users))
        self.wal = WriteAheadLog(
            os.path.join(self.directory, "wal"),
            segment_max_bytes=segment_max_bytes,
            registry=self.registry,
        )
        self._g_applied = self.registry.gauge(
            "streaming.applied_seq",
            help="Newest WAL sequence number folded into the stream state.",
        )
        self._g_staleness = self.registry.gauge(
            "streaming.staleness_seconds",
            help="Seconds the published model trails the acknowledged stream.",
        )
        self._h_stage = self.registry.histogram(
            "streaming.stage_seconds",
            help="Per-stage latency of the streaming tick.",
            labels=("stage",),
        )
        replayed = self._replay()
        if replayed:
            _log.info(
                "recovered stream state from WAL",
                replayed_records=replayed,
                applied_seq=self.state.applied_seq,
            )
        self.ingestor = StreamIngestor(
            self.wal,
            applied_seq_fn=lambda: self.state.applied_seq,
            max_pending=max_pending,
            registry=self.registry,
        )
        self.refitter = refitter if refitter is not None else WarmRefitter()
        self.refit_breaker = refit_breaker or CircuitBreaker(
            "streaming.refit",
            failure_threshold=3,
            recovery_timeout=5.0,
            registry=self.registry,
        )
        self.ticks = 0
        self.publishes = 0
        self.published_seq = 0
        self.last_refit_error: Optional[str] = None
        self._last_publish_at = time.monotonic()
        self._degraded_engaged = False
        self._tick_lock = threading.Lock()

    # -- recovery -------------------------------------------------------
    def _recover_state(self, n_users: int) -> StreamState:
        """Load the snapshot, discarding it when torn or corrupt."""
        if os.path.exists(self.state_path):
            try:
                state = StreamState.load(self.state_path)
                if state.n_users == n_users:
                    return state
                _log.warning(
                    "snapshot has wrong user count; rebuilding from WAL",
                    snapshot_users=state.n_users,
                    expected_users=n_users,
                )
            except ArtifactCorruptError as exc:
                _log.warning(
                    "discarding corrupt state snapshot; replaying full WAL",
                    error=str(exc),
                )
        return StreamState(n_users)

    def _replay(self) -> int:
        """Fold every WAL record newer than the state into the state."""
        applied = self.state.apply_many(
            (seq, Delta.decode(payload))
            for seq, payload in self.wal.replay(self.state.applied_seq)
        )
        self._g_applied.set(float(self.state.applied_seq))
        return applied

    # -- ingest ---------------------------------------------------------
    def submit(self, delta: Delta, timeout: Optional[float] = None) -> int:
        """Durably acknowledge one delta (see :meth:`StreamIngestor.submit`)."""
        return self.ingestor.submit(
            delta, timeout=self.submit_timeout if timeout is None else timeout
        )

    # -- the tick -------------------------------------------------------
    def apply_pending(self) -> int:
        """Fold acknowledged-but-unapplied WAL records into the state."""
        started = time.monotonic()
        applied = self._replay()
        if applied:
            self.ingestor.notify_applied()
        self._h_stage.labels(stage="apply").observe(time.monotonic() - started)
        return applied

    def snapshot(self) -> int:
        """Durably snapshot the state, then compact covered WAL segments."""
        started = time.monotonic()
        self.state.save(self.state_path)
        removed = self.wal.truncate_through(self.state.applied_seq)
        self._h_stage.labels(stage="snapshot").observe(
            time.monotonic() - started
        )
        return removed

    def update_staleness(self) -> float:
        """Refresh the staleness gauge.

        Zero while nothing acknowledged is unpublished; otherwise the time
        since the last successful publish (the published model's age
        relative to the stream's head).
        """
        if self.wal.last_seq <= self.published_seq:
            staleness = 0.0
        else:
            staleness = time.monotonic() - self._last_publish_at
        self._g_staleness.set(staleness)
        return staleness

    def refit_and_publish(self) -> Optional[int]:
        """Warm-refit on the current state and publish the new version.

        Returns the published version number, or ``None`` when the refit
        breaker refused the attempt or the refit/publish failed (the
        failure is recorded on the breaker; once it opens, the serving
        layer's degraded tier is engaged until a tick succeeds again).
        """
        if not self.refit_breaker.allow():
            self.last_refit_error = "refit circuit breaker is open"
            self._sync_degraded()
            return None
        try:
            started = time.monotonic()
            predictor = self.refitter.refit(self.state.to_csr())
            self._h_stage.labels(stage="refit").observe(
                time.monotonic() - started
            )
            version = None
            if self.store is not None:
                started = time.monotonic()
                version = self.store.publish(
                    predictor,
                    graph=self.state.to_csr(),
                    meta={
                        "source": "streaming",
                        "applied_seq": self.state.applied_seq,
                        "state_digest": self.state.digest(),
                    },
                )
                self._h_stage.labels(stage="publish").observe(
                    time.monotonic() - started
                )
        except Exception as exc:  # breaker boundary: count, degrade, report
            self.refit_breaker.record_failure()
            self.last_refit_error = str(exc)
            self._sync_degraded()
            _log.warning("streaming refit/publish failed", error=str(exc))
            return None
        self.refit_breaker.record_success()
        self.last_refit_error = None
        self.publishes += 1
        self.published_seq = self.state.applied_seq
        self._last_publish_at = time.monotonic()
        self._sync_degraded()
        if self.service is not None:
            started = time.monotonic()
            self.service.reload()
            self._h_stage.labels(stage="reload").observe(
                time.monotonic() - started
            )
        self.update_staleness()
        return version

    def _sync_degraded(self) -> None:
        """Engage/disengage the serving degraded tier from breaker state."""
        if self.service is None:
            return
        should_engage = self.refit_breaker.state == OPEN
        if should_engage and not self._degraded_engaged:
            engage = getattr(self.service, "engage_degraded", None)
            if engage is not None:
                engage("streaming refit breaker open")
                self._degraded_engaged = True
        elif not should_engage and self._degraded_engaged:
            disengage = getattr(self.service, "disengage_degraded", None)
            if disengage is not None:
                disengage()
            self._degraded_engaged = False

    def tick(self) -> Dict:
        """One cadence step: apply → (snapshot+compact) → refit → publish.

        Serialized against :meth:`close` (and concurrent ticks) by a
        lock, so a graceful drain can never observe a half-finished
        publish: either the tick's ``store.publish`` completed — the
        version directory was atomically renamed into place — or it
        never started.  mmap-safety rides on the same ordering: the
        store never deletes old version directories, so factor arrays
        mapped from a previous version stay valid pages while a new one
        is staged and swapped in.
        """
        with self._tick_lock:
            self.ticks += 1
            applied = self.apply_pending()
            compacted = 0
            if self.ticks % self.snapshot_every == 0:
                compacted = self.snapshot()
            version = self.refit_and_publish()
            return {
                "tick": self.ticks,
                "applied": applied,
                "compacted_segments": compacted,
                "published_version": version,
                "staleness_seconds": self.update_staleness(),
                "breaker": self.refit_breaker.state,
            }

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict:
        """JSON-compatible snapshot for tests and the chaos smoke."""
        return {
            "acked_seq": self.wal.last_seq,
            "applied_seq": self.state.applied_seq,
            "published_seq": self.published_seq,
            "publishes": self.publishes,
            "ticks": self.ticks,
            "n_links": self.state.n_links,
            "state_digest": self.state.digest(),
            "staleness_seconds": self.update_staleness(),
            "refit_breaker": self.refit_breaker.state,
            "last_refit_error": self.last_refit_error,
            "ingest": self.ingestor.stats(),
            "torn_tail_truncations": self.wal.torn_tail_truncations,
        }

    def close(self, drain: bool = True) -> None:
        """Release the WAL append handle (state stays recoverable on disk).

        With ``drain`` (the default) the call first takes the tick lock,
        blocking until any in-flight :meth:`tick` — including its
        publish-and-rename — has completed, so shutdown never abandons a
        staging directory or tears a publish mid-swap.
        """
        if drain:
            with self._tick_lock:
                self.wal.close()
        else:
            self.wal.close()
