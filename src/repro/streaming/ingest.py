"""Bounded-queue ingest front of the streaming subsystem.

:class:`StreamIngestor` is the only writer of the WAL: producers call
:meth:`StreamIngestor.submit` with a :class:`~repro.streaming.deltas.Delta`
and get back the monotone sequence number that *is* the durability
acknowledgement — when ``submit`` returns, the delta is framed, fsynced
and will survive ``kill -9``.

The queue being bounded is the backpressure story: the ingestor tracks
the lag between the newest acknowledged record and the newest record the
refit loop has applied.  When that lag reaches ``max_pending`` a submit
*blocks* (bounded by its ``timeout``) until the refit loop drains, and a
timeout sheds the delta by raising
:class:`~repro.exceptions.BackpressureError` **before** anything is
written — a shed delta is never acknowledged, so shedding can never
create a durability hole, only an explicit, retryable refusal.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.exceptions import BackpressureError
from repro.observability.logging import get_logger
from repro.observability.metrics import NULL_REGISTRY
from repro.streaming.deltas import Delta
from repro.streaming.wal import WriteAheadLog

_log = get_logger("repro.streaming.ingest")


class StreamIngestor:
    """Serialised, backpressured gateway from producers to the WAL.

    Parameters
    ----------
    wal:
        The :class:`~repro.streaming.wal.WriteAheadLog` every accepted
        delta is appended to.
    applied_seq_fn:
        Zero-argument callable returning the consumer's applied sequence
        number; lag is measured against it.  Defaults to "everything is
        applied" (no backpressure), which standalone WAL tools use.
    max_pending:
        Maximum acknowledged-but-unapplied records before submits block.
    registry:
        Metrics sink for the ack gauge / lag gauge / shed counter and the
        ack-latency histogram.

    Examples
    --------
    >>> import tempfile
    >>> from repro.streaming.deltas import link_add
    >>> ingestor = StreamIngestor(WriteAheadLog(tempfile.mkdtemp()))
    >>> ingestor.submit(link_add(0, 1))
    1
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        applied_seq_fn: Optional[Callable[[], int]] = None,
        max_pending: int = 4096,
        registry=None,
    ):
        self.wal = wal
        self._applied_seq_fn = applied_seq_fn or (lambda: self.wal.last_seq)
        self.max_pending = int(max_pending)
        registry = registry if registry is not None else NULL_REGISTRY
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self.submitted = 0
        self.shed = 0
        self._g_acked = registry.gauge(
            "streaming.acked_seq",
            help="Newest durably acknowledged WAL sequence number.",
        )
        self._g_lag = registry.gauge(
            "streaming.ingest.lag",
            help="Acknowledged-but-unapplied records (backpressure signal).",
        )
        self._c_shed = registry.counter(
            "streaming.ingest.shed",
            help="Deltas refused with BackpressureError before any write.",
        )
        self._h_ack = registry.histogram(
            "streaming.ingest.ack_seconds",
            help="Submit-to-durable-ack latency per delta.",
        )

    def lag(self) -> int:
        """Acknowledged records the consumer has not applied yet."""
        return max(0, self.wal.last_seq - int(self._applied_seq_fn()))

    def notify_applied(self) -> None:
        """Wake submitters blocked on backpressure (consumer made progress)."""
        with self._drained:
            self._g_lag.set(float(self.lag()))
            self._drained.notify_all()

    def submit(self, delta: Delta, timeout: float = 0.5) -> int:
        """Durably append one delta; returns its acknowledged seq.

        Blocks while the pending window is full, up to ``timeout``
        seconds, then sheds with
        :class:`~repro.exceptions.BackpressureError`.  The WAL append
        itself may raise (disk faults, armed chaos sites) — in every
        failure mode nothing was acknowledged and the caller may retry:
        replay dedup makes retried deltas harmless.
        """
        started = time.monotonic()
        deadline = started + max(0.0, float(timeout))
        with self._drained:
            while self.lag() >= self.max_pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.shed += 1
                    self._c_shed.inc()
                    raise BackpressureError(
                        f"ingest queue full ({self.max_pending} pending) "
                        f"for {timeout:.3f}s; delta shed before any write"
                    )
                self._drained.wait(remaining)
            seq = self.wal.append(delta.encode())
            self.submitted += 1
            self._g_acked.set(float(seq))
            self._g_lag.set(float(self.lag()))
        self._h_ack.observe(time.monotonic() - started)
        return seq

    def stats(self) -> dict:
        """Counters for tests and the chaos smoke."""
        return {
            "submitted": self.submitted,
            "shed": self.shed,
            "acked_seq": self.wal.last_seq,
            "lag": self.lag(),
            "max_pending": self.max_pending,
        }
