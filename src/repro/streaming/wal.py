"""Segmented, sha256-framed write-ahead log with fsync-on-ack.

Layout: a directory of append-only segment files, each named for the
sequence number of its first record::

    wal/
    ├── wal-000000000001.seg
    ├── wal-000000004097.seg
    └── …

Every record is framed as::

    magic  b"WAL1"                         4 bytes
    seq    uint64 little-endian            8 bytes
    length uint32 little-endian            4 bytes
    payload                                length bytes
    sha256(seq ‖ payload)                 32 bytes

and :meth:`WriteAheadLog.append` returns only after the record — and every
record before it — is flushed **and fsynced**: the returned sequence
number *is* the acknowledgement, so a ``kill -9`` immediately after an
append returns can never lose that record.

Recovery (:meth:`WriteAheadLog.open` scans on construction) validates
every frame and enforces strictly monotone, gapless sequence numbers.  A
frame that fails validation at the **tail of the newest segment** is the
expected signature of a crash mid-write and is truncated away (counted as
a torn-tail truncation); a validation failure anywhere earlier means
durable history was damaged and raises
:class:`~repro.exceptions.WalCorruptError` instead of silently replaying
a hole.

Two chaos sites cover the append path (armed via ``REPRO_CHAOS*``):

* ``streaming.wal.torn_write`` fires after the frame's first half is on
  disk, leaving a *real* torn tail that the next append (or the next
  recovery) truncates;
* ``streaming.wal.fsync`` fires between the buffered write and the fsync
  — the append is rolled back and the caller sees the failure before any
  acknowledgement, exactly like a disk that failed to sync.
"""

from __future__ import annotations

import hashlib
import os
import re
import struct
from typing import Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError, WalCorruptError
from repro.observability.logging import get_logger
from repro.reliability.faults import fault_point

_log = get_logger("repro.streaming.wal")

MAGIC = b"WAL1"
_HEADER = struct.Struct("<8sI")  # seq uint64 + length uint32 packed below
_SEQ = struct.Struct("<Q")
_LEN = struct.Struct("<I")
_DIGEST_BYTES = 32
_FRAME_OVERHEAD = len(MAGIC) + _SEQ.size + _LEN.size + _DIGEST_BYTES
MAX_PAYLOAD_BYTES = 1 << 24
"""Sanity bound on one record's payload: a length field beyond this is
treated as frame corruption, not an allocation request."""

_SEGMENT_FILE = re.compile(r"^wal-(\d{12})\.seg$")


def _record_digest(seq: int, payload: bytes) -> bytes:
    hasher = hashlib.sha256()
    hasher.update(_SEQ.pack(seq))
    hasher.update(payload)
    return hasher.digest()


def _frame(seq: int, payload: bytes) -> bytes:
    return b"".join(
        (
            MAGIC,
            _SEQ.pack(seq),
            _LEN.pack(len(payload)),
            payload,
            _record_digest(seq, payload),
        )
    )


class _ScanResult:
    """Outcome of validating one segment file's frames."""

    __slots__ = ("records", "clean_end", "torn")

    def __init__(self, records: List[Tuple[int, int, int]], clean_end: int, torn: bool):
        self.records = records  # (seq, payload_offset, payload_length)
        self.clean_end = clean_end
        self.torn = torn


def _scan_segment(data: bytes, expected_seq: Optional[int]) -> _ScanResult:
    """Validate frames in one segment; stop at the first bad one.

    ``expected_seq`` is the sequence number the first record must carry
    (``None`` accepts any, for the oldest surviving segment).
    """
    records: List[Tuple[int, int, int]] = []
    offset = 0
    size = len(data)
    while offset < size:
        start = offset
        if size - offset < len(MAGIC) + _SEQ.size + _LEN.size:
            return _ScanResult(records, start, True)
        if data[offset : offset + len(MAGIC)] != MAGIC:
            return _ScanResult(records, start, True)
        offset += len(MAGIC)
        (seq,) = _SEQ.unpack_from(data, offset)
        offset += _SEQ.size
        (length,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        if length > MAX_PAYLOAD_BYTES or size - offset < length + _DIGEST_BYTES:
            return _ScanResult(records, start, True)
        payload = data[offset : offset + length]
        digest = data[offset + length : offset + length + _DIGEST_BYTES]
        if digest != _record_digest(seq, payload):
            return _ScanResult(records, start, True)
        if expected_seq is not None and seq != expected_seq:
            return _ScanResult(records, start, True)
        records.append((seq, offset, length))
        offset += length + _DIGEST_BYTES
        expected_seq = seq + 1
    return _ScanResult(records, size, False)


class WriteAheadLog:
    """Durable, replayable, monotonically-sequenced delta log.

    Parameters
    ----------
    directory:
        Segment directory; created on first use and scanned (with
        torn-tail truncation) immediately.
    segment_max_bytes:
        Rotate to a fresh segment once the current one reaches this size.
    fsync:
        Fsync every append before acknowledging (the production default).
        ``False`` trades the crash guarantee for ingest throughput and is
        only for benchmarks.
    registry:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`
        receiving the append / torn-tail counters.

    Examples
    --------
    >>> import tempfile
    >>> wal = WriteAheadLog(tempfile.mkdtemp())
    >>> wal.append(b"hello")
    1
    >>> list(wal.replay())
    [(1, b'hello')]
    """

    def __init__(
        self,
        directory: str,
        segment_max_bytes: int = 4 << 20,
        fsync: bool = True,
        registry=None,
    ):
        self.directory = str(directory)
        self.segment_max_bytes = int(segment_max_bytes)
        if self.segment_max_bytes < _FRAME_OVERHEAD + 1:
            raise ConfigurationError(
                f"segment_max_bytes too small: {segment_max_bytes}"
            )
        self.fsync = bool(fsync)
        os.makedirs(self.directory, exist_ok=True)
        self._handle = None
        self._segment_path: Optional[str] = None
        self._clean_end = 0  # valid bytes in the open segment
        self._dirty = False  # an injected torn write left trailing garbage
        self.last_seq = 0
        self.torn_tail_truncations = 0
        if registry is not None:
            self._c_appends = registry.counter(
                "streaming.wal.appends", help="Records durably appended."
            )
            self._c_torn = registry.counter(
                "streaming.wal.torn_tails",
                help="Torn tails truncated during recovery or repair.",
            )
        else:
            self._c_appends = None
            self._c_torn = None
        self._recover()

    # -- layout ---------------------------------------------------------
    def _segment_paths(self) -> List[Tuple[int, str]]:
        """(first_seq, path) of every segment, ascending."""
        found = []
        for entry in os.listdir(self.directory):
            match = _SEGMENT_FILE.match(entry)
            if match:
                found.append(
                    (int(match.group(1)), os.path.join(self.directory, entry))
                )
        return sorted(found)

    @property
    def first_seq(self) -> int:
        """Lowest sequence number still replayable (0 when empty)."""
        segments = self._segment_paths()
        return segments[0][0] if segments else 0

    # -- recovery -------------------------------------------------------
    def _recover(self) -> None:
        """Scan every segment; truncate a torn tail on the newest one."""
        segments = self._segment_paths()
        expected: Optional[int] = None
        for index, (first_seq, path) in enumerate(segments):
            with open(path, "rb") as handle:
                data = handle.read()
            scan = _scan_segment(
                data, first_seq if expected is None else expected
            )
            is_last = index == len(segments) - 1
            if scan.torn or (scan.records and scan.records[0][0] != first_seq):
                if not is_last:
                    raise WalCorruptError(
                        f"WAL segment {path} is corrupt at offset "
                        f"{scan.clean_end} but is not the newest segment; "
                        "durable history is damaged"
                    )
                self._truncate_file(path, scan.clean_end)
            if scan.records:
                expected = scan.records[-1][0] + 1
            elif expected is None:
                expected = first_seq
        self.last_seq = (expected - 1) if expected is not None else 0
        if segments:
            path = segments[-1][1]
            self._segment_path = path
            self._clean_end = os.path.getsize(path)
            self._handle = open(path, "ab")
        self._dirty = False

    def _truncate_file(self, path: str, size: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
        self.torn_tail_truncations += 1
        if self._c_torn is not None:
            self._c_torn.inc()
        _log.warning(
            "truncated torn WAL tail", segment=path, clean_bytes=size
        )

    def _repair_tail(self) -> None:
        """Drop garbage an injected torn write left after ``_clean_end``."""
        self._handle.close()
        self._truncate_file(self._segment_path, self._clean_end)
        self._handle = open(self._segment_path, "ab")
        self._dirty = False

    # -- append ---------------------------------------------------------
    def _open_segment(self, first_seq: int) -> None:
        if self._handle is not None:
            self._handle.close()
        path = os.path.join(self.directory, f"wal-{first_seq:012d}.seg")
        self._segment_path = path
        self._handle = open(path, "ab")
        self._clean_end = os.path.getsize(path)

    def append(self, payload: bytes) -> int:
        """Durably append one record; the returned seq is the ack.

        The record is fully framed, flushed and (by default) fsynced
        before this method returns.  Any failure — including the
        ``streaming.wal.torn_write`` and ``streaming.wal.fsync`` chaos
        sites — rolls the segment back to its last clean byte and
        re-raises, so a failed append is never acknowledged and never
        replayed.
        """
        payload = bytes(payload)
        if len(payload) > MAX_PAYLOAD_BYTES:
            raise ConfigurationError(
                f"WAL payload of {len(payload)} bytes exceeds the "
                f"{MAX_PAYLOAD_BYTES}-byte record bound"
            )
        if self._dirty:
            self._repair_tail()
        seq = self.last_seq + 1
        if self._handle is None or self._clean_end >= self.segment_max_bytes:
            self._open_segment(seq)
        frame = _frame(seq, payload)
        half = len(frame) // 2
        try:
            self._handle.write(frame[:half])
            self._handle.flush()
            # An armed torn-write fault fires here, after real bytes hit
            # the file: the half-record is exactly what a crash mid-write
            # leaves behind, and the next append (or recovery) truncates it.
            try:
                fault_point("streaming.wal.torn_write")
            except BaseException:
                self._dirty = True
                raise
            self._handle.write(frame[half:])
            self._handle.flush()
            fault_point("streaming.wal.fsync")
            if self.fsync:
                os.fsync(self._handle.fileno())
        except BaseException:
            if self._dirty:
                # Torn write: leave the garbage for the repair path so the
                # truncation machinery is exercised, then surface the fault.
                raise
            # Fsync (or write) failure after a complete buffered frame: the
            # bytes may or may not be durable, so roll back to the last
            # clean offset before re-raising — the record was never acked.
            try:
                self._repair_tail()
            except OSError:
                self._dirty = True
            raise
        self._clean_end += len(frame)
        self.last_seq = seq
        if self._c_appends is not None:
            self._c_appends.inc()
        return seq

    def sync(self) -> None:
        """Flush and fsync the open segment (no-op when nothing is open)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the append handle (the log stays recoverable on disk)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- replay ---------------------------------------------------------
    def replay(self, after_seq: int = 0) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(seq, payload)`` for every record with ``seq > after_seq``.

        Reads the segments fresh from disk, so a replay sees exactly what
        recovery after a crash would see.
        """
        after_seq = int(after_seq)
        if self._handle is not None:
            self._handle.flush()
        segments = self._segment_paths()
        for index, (first_seq, path) in enumerate(segments):
            if index + 1 < len(segments) and segments[index + 1][0] <= after_seq + 1:
                continue  # every record here is at or below after_seq
            with open(path, "rb") as handle:
                data = handle.read()
            scan = _scan_segment(data, first_seq)
            for seq, offset, length in scan.records:
                if seq > after_seq:
                    yield seq, data[offset : offset + length]

    def record_count(self) -> int:
        """Number of replayable records currently on disk."""
        return sum(1 for _ in self.replay())

    # -- compaction -----------------------------------------------------
    def truncate_through(self, seq: int) -> int:
        """Delete whole segments whose records are all ``<= seq``.

        Called after a state snapshot covering ``seq`` is durably on disk;
        the newest segment is always retained so the next sequence number
        survives restarts.  Returns the number of segments removed.
        """
        seq = int(seq)
        segments = self._segment_paths()
        removed = 0
        for index in range(len(segments) - 1):
            next_first = segments[index + 1][0]
            if next_first - 1 <= seq:
                try:
                    os.unlink(segments[index][1])
                    removed += 1
                except OSError:
                    break  # compaction is best-effort
            else:
                break
        return removed
