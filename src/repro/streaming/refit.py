"""Warm refits: turn the current stream state into a publishable model.

:class:`WarmRefitter` owns the solver assembly the streaming pipeline runs
on every cadence tick.  Three warm-start channels make a refit cheaper
than a cold fit on the same adjacency:

* **checkpoint warm start** (dense path) — the initial CCCP iterate is
  the solution of the latest validated
  :class:`~repro.reliability.CheckpointManager` round, and each refit's
  final solution is saved back as the next round, so successive refits
  walk forward from the previous optimum instead of from ``A``;
* **retained SVT subspace** — one
  :class:`~repro.perf.warm_svt.WarmStartSVT` engine instance lives across
  refits, so the first prox of refit *t* reuses the singular subspace
  that converged in refit *t−1*;
* **factored warm start** (``factored=True``) — the previous
  :class:`~repro.factored.estimate.FactoredEstimate` seeds
  :meth:`FactoredSolver.solve(initial=…)` directly; no dense matrix is
  ever materialized.

The output is always a frozen predictor
(:class:`~repro.models.persistence.FrozenPredictor` or
:class:`~repro.models.persistence.FrozenFactoredPredictor`) ready for
``ArtifactStore.publish``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np
from scipy import sparse

from repro.observability.logging import get_logger
from repro.observability.metrics import NULL_REGISTRY
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.cccp import CCCPSolver
from repro.optim.forward_backward import (
    FactoredForwardBackwardSolver,
    ForwardBackwardSolver,
)
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx
from repro.models.persistence import FrozenFactoredPredictor, FrozenPredictor
from repro.perf.warm_svt import WarmStartSVT
from repro.utils.matrices import zero_diagonal

_log = get_logger("repro.streaming.refit")


class WarmRefitter:
    """Refit the sparse+low-rank estimate from the live stream state.

    Parameters
    ----------
    tau, gamma:
        Trace-norm and ℓ₁ regularization weights (paper notation).
    step_size, tolerance, inner_iterations, outer_iterations:
        Solver controls, deliberately small: a refit polishes the previous
        optimum rather than re-running a paper-scale fit.
    svd_rank:
        Rank cap shared by the SVT engine and the factored estimate.
    factored:
        Use the O(nk) factored solver (no dense allocation) instead of
        the dense CCCP path.
    checkpoint_manager:
        Optional :class:`~repro.reliability.CheckpointManager`; dense
        refits warm-start from its latest round and save their result
        back.  Ignored by the factored path (which warm-starts from the
        retained estimate instead).
    registry:
        Metrics sink for refit counters/latency.
    """

    def __init__(
        self,
        tau: float = 0.4,
        gamma: float = 0.05,
        step_size: float = 0.5,
        tolerance: float = 1e-4,
        inner_iterations: int = 30,
        outer_iterations: int = 3,
        svd_rank: int = 8,
        factored: bool = False,
        checkpoint_manager=None,
        registry=None,
    ):
        self.tau = float(tau)
        self.gamma = float(gamma)
        self.step_size = float(step_size)
        self.tolerance = float(tolerance)
        self.inner_iterations = int(inner_iterations)
        self.outer_iterations = int(outer_iterations)
        self.svd_rank = int(svd_rank)
        self.factored = bool(factored)
        self.checkpoint_manager = checkpoint_manager
        registry = registry if registry is not None else NULL_REGISTRY
        self._c_refits = registry.counter(
            "streaming.refits",
            help="Completed warm refits.",
            labels=("warm_source",),
        )
        self._h_refit = registry.histogram(
            "streaming.refit_seconds", help="Wall time of one warm refit."
        )
        # The retained engine is the warm-subspace channel: constructed
        # once, reused by every refit's TraceNormProx.
        self._svt_engine = WarmStartSVT(
            initial_rank=self.svd_rank, max_rank=self.svd_rank
        )
        self._prev_estimate = None  # factored warm start
        self.refit_count = 0
        self.last_warm_source = "cold"

    # -- warm-start sources ---------------------------------------------
    def _dense_initial(self, adjacency: np.ndarray) -> np.ndarray:
        """Latest shape-matched checkpoint solution, else ``A`` (cold)."""
        if self.checkpoint_manager is not None:
            latest = self.checkpoint_manager.latest()
            if latest is not None and latest.solution.shape == adjacency.shape:
                self.last_warm_source = "checkpoint"
                return np.array(latest.solution, dtype=float)
        self.last_warm_source = "cold"
        return adjacency

    def _assemble_prox(self):
        return [
            TraceNormProx(
                self.tau, max_rank=self.svd_rank, engine=self._svt_engine
            ),
            L1Prox(self.gamma),
            BoxProjection(0.0, None),
        ]

    # -- refit ----------------------------------------------------------
    def refit(self, adjacency, intimacy=None, tracer=None):
        """Solve on the given CSR adjacency; returns a frozen predictor.

        ``intimacy`` is an optional dense gradient matrix (dense path) or
        :class:`~repro.factored.estimate.FactoredEstimate` (factored
        path) carrying the cross-network term; the streaming pipeline
        passes ``None`` for the single-network refit loop.
        """
        started = time.monotonic()
        adjacency = sparse.csr_matrix(adjacency)
        if self.factored:
            predictor = self._refit_factored(adjacency, intimacy, tracer)
        else:
            predictor = self._refit_dense(adjacency, intimacy, tracer)
        self.refit_count += 1
        self._c_refits.labels(warm_source=self.last_warm_source).inc()
        self._h_refit.observe(time.monotonic() - started)
        return predictor

    def _metadata(self) -> Dict:
        return {
            "name": "StreamingRefit",
            "refit_index": self.refit_count,
            "warm_source": self.last_warm_source,
            "tau": self.tau,
            "gamma": self.gamma,
            "svd_rank": self.svd_rank,
            "factored": self.factored,
        }

    def _refit_dense(self, adjacency, intimacy, tracer) -> FrozenPredictor:
        dense = np.asarray(adjacency.todense(), dtype=float)  # dense-ok
        solver = CCCPSolver(
            loss=SquaredFrobeniusLoss(dense),
            prox_terms=self._assemble_prox(),
            intimacy_gradient=intimacy,
            inner_solver=ForwardBackwardSolver(
                step_size=self.step_size,
                criterion=ConvergenceCriterion(
                    tolerance=self.tolerance,
                    max_iterations=self.inner_iterations,
                ),
            ),
            outer_criterion=ConvergenceCriterion(
                tolerance=self.tolerance,
                max_iterations=self.outer_iterations,
            ),
            fuse_smooth=True,
        )
        result = solver.solve(self._dense_initial(dense), tracer=tracer)
        if self.checkpoint_manager is not None:
            self.checkpoint_manager.save(
                self.refit_count,
                result.solution,
                list(result.round_norms),
                meta={"source": "streaming.refit"},
            )
        scores = zero_diagonal(result.solution)
        peak = scores.max()
        if peak > 0:
            scores = scores / peak
        return FrozenPredictor(scores, metadata=self._metadata())

    def _refit_factored(
        self, adjacency, intimacy, tracer
    ) -> FrozenFactoredPredictor:
        from repro.factored.solver import FactoredSolver

        initial = self._prev_estimate
        if initial is not None and initial.n_users != adjacency.shape[0]:
            initial = None
        self.last_warm_source = "estimate" if initial is not None else "cold"
        solver = FactoredSolver(
            adjacency,
            self._assemble_prox(),
            intimacy=intimacy,
            inner_solver=FactoredForwardBackwardSolver(
                step_size=self.step_size,
                criterion=ConvergenceCriterion(
                    tolerance=self.tolerance,
                    max_iterations=self.inner_iterations,
                ),
            ),
            outer_criterion=ConvergenceCriterion(
                tolerance=self.tolerance,
                max_iterations=self.outer_iterations,
            ),
        )
        result = solver.solve(initial=initial, tracer=tracer)
        self._prev_estimate = result.estimate
        return FrozenFactoredPredictor(
            result.estimate, metadata=self._metadata()
        )
