"""Staleness-vs-AUC: measure what a refit cadence actually costs.

"Log-Normal Matrix Completion for Large Scale Link Prediction" motivates
evaluating link predictors on *temporal* held-out slices; here we apply
that discipline to the streaming refit loop instead of assuming freshness
equals quality.  The sweep drives the real streaming machinery — a
:class:`~repro.streaming.deltas.StreamState` fed snapshot-diff deltas and
a :class:`~repro.streaming.refit.WarmRefitter` producing the published
model — over a :func:`~repro.temporal.snapshots.evolve_snapshots`
sequence, refitting only every ``cadence`` steps.

At each step the **currently published** (possibly stale) model scores
that step's newly-formed links against sampled still-absent pairs; the
AUC per step is recorded together with the model's staleness in steps.
Sweeping the cadence turns "how often must we refit?" into a measured
trade-off curve: ingest cost per step falls linearly with cadence while
the AUC degrades (or doesn't — temporal persistence means a slightly
stale model often ranks nearly as well).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.evaluation.metrics import auc_score
from repro.exceptions import ConfigurationError, EvaluationError
from repro.streaming.deltas import StreamState, link_add, link_remove
from repro.streaming.refit import WarmRefitter
from repro.temporal.snapshots import SnapshotSequence, evolve_snapshots
from repro.utils.rng import RandomState, ensure_rng


def snapshot_deltas(
    previous: np.ndarray, current: np.ndarray
) -> List:
    """The link deltas that turn snapshot ``previous`` into ``current``."""
    previous = np.asarray(previous) > 0
    current = np.asarray(current) > 0
    born = np.triu(current & ~previous, k=1)
    died = np.triu(previous & ~current, k=1)
    deltas = [link_add(int(u), int(v)) for u, v in zip(*np.nonzero(born))]
    deltas += [link_remove(int(u), int(v)) for u, v in zip(*np.nonzero(died))]
    return deltas


def _sample_negatives(
    snapshot: np.ndarray,
    positives: Sequence[Tuple[int, int]],
    n_negatives: int,
    rng,
) -> List[Tuple[int, int]]:
    """Pairs absent both now and in the evaluated step's positives."""
    n = snapshot.shape[0]
    taken = {tuple(p) for p in positives}
    absent = np.triu((np.asarray(snapshot) <= 0), k=1)
    np.fill_diagonal(absent, False)
    rows, cols = np.nonzero(absent)
    candidates = [
        (int(u), int(v)) for u, v in zip(rows, cols) if (u, v) not in taken
    ]
    if not candidates:
        raise EvaluationError("no absent pairs left to sample negatives from")
    picks = rng.choice(
        len(candidates), size=min(n_negatives, len(candidates)), replace=False
    )
    return [candidates[int(i)] for i in picks]


def evaluate_cadence(
    sequence: SnapshotSequence,
    cadence: int,
    refitter: Optional[WarmRefitter] = None,
    n_negatives: int = 200,
    random_state: RandomState = 0,
) -> Dict:
    """Stream one snapshot sequence, refitting every ``cadence`` steps.

    The model published at step ``t`` is evaluated on the links that newly
    form at each later step until the next refit; returns per-step AUCs,
    their mean, and the mean staleness (steps since last refit) at
    evaluation time.
    """
    cadence = int(cadence)
    if cadence < 1:
        raise ConfigurationError(f"cadence must be >= 1, got {cadence}")
    if sequence.n_steps < 2:
        raise ConfigurationError("need at least 2 snapshots to evaluate")
    rng = ensure_rng(random_state)
    refitter = refitter or WarmRefitter(
        tau=0.3, gamma=0.02, inner_iterations=25, outer_iterations=3
    )
    n = sequence.n_nodes
    state = StreamState(n)
    seq_counter = 0
    # Seed the state with snapshot 0 and publish the first model.
    empty = np.zeros((n, n))  # dense-ok: temporal snapshots are dense at eval scale
    for delta in snapshot_deltas(empty, sequence.snapshots[0]):
        seq_counter += 1
        state.apply(seq_counter, delta)
    predictor = refitter.refit(state.to_csr())
    last_refit_step = 0
    aucs: List[float] = []
    staleness: List[int] = []
    refits = 1
    for step in range(1, sequence.n_steps):
        positives = sequence.new_links(step)
        if positives:
            negatives = _sample_negatives(
                sequence.snapshots[step - 1], positives, n_negatives, rng
            )
            pairs = list(positives) + list(negatives)
            scores = np.asarray(predictor.score_pairs(pairs), dtype=float)
            labels = np.concatenate(
                [np.ones(len(positives)), np.zeros(len(negatives))]
            )
            aucs.append(float(auc_score(scores, labels)))
            staleness.append(step - 1 - last_refit_step)
        # The step's deltas arrive after evaluation (the model cannot see
        # the links it is asked to predict).
        for delta in snapshot_deltas(
            sequence.snapshots[step - 1], sequence.snapshots[step]
        ):
            seq_counter += 1
            state.apply(seq_counter, delta)
        if step % cadence == 0 and step < sequence.n_steps - 1:
            predictor = refitter.refit(state.to_csr())
            last_refit_step = step
            refits += 1
    return {
        "cadence": cadence,
        "auc_per_step": aucs,
        "mean_auc": float(np.mean(aucs)) if aucs else float("nan"),
        "mean_staleness_steps": float(np.mean(staleness)) if staleness else 0.0,
        "refits": refits,
        "final_applied_seq": state.applied_seq,
    }


def staleness_auc_sweep(
    n_nodes: int = 48,
    n_steps: int = 6,
    cadences: Iterable[int] = (1, 2, 4),
    n_negatives: int = 200,
    persistence: float = 0.9,
    random_state: RandomState = 7,
    refitter_factory=None,
) -> Dict:
    """Sweep refit cadences over one evolving sequence; returns the curve.

    Every cadence replays the *same* snapshot sequence (same seed) so the
    rows differ only in how stale the published model is allowed to get.
    """
    sequence = evolve_snapshots(
        n_nodes=n_nodes,
        n_steps=n_steps,
        persistence=persistence,
        random_state=random_state,
    )
    rows = []
    for cadence in cadences:
        refitter = refitter_factory() if refitter_factory else None
        rows.append(
            evaluate_cadence(
                sequence,
                cadence,
                refitter=refitter,
                n_negatives=n_negatives,
                random_state=random_state,
            )
        )
    return {
        "n_nodes": int(n_nodes),
        "n_steps": int(n_steps),
        "persistence": float(persistence),
        "rows": rows,
    }
