"""Streaming deltas and the replayable graph state they mutate.

A :class:`Delta` is one immutable link or attribute mutation; the write
ahead log stores its canonical byte encoding, and a :class:`StreamState`
applies acknowledged deltas in sequence order.  Two properties carry the
crash-safety story:

* **idempotent per sequence number** — :meth:`StreamState.apply` skips any
  record whose sequence number is not strictly greater than
  ``applied_seq``, so replaying a WAL that overlaps an already-restored
  snapshot (the normal recovery shape) cannot double-apply;
* **idempotent per operation** — link adds/removes and attribute writes
  have *set* semantics (``add`` overwrites the weight, ``remove`` of an
  absent pair is a no-op), so an at-least-once producer that retries a
  failed append can never diverge the state.

:meth:`StreamState.digest` is the bit-exactness oracle: two states reach
the same digest iff every link weight, attribute value, user count and
applied sequence number are identical, which is what the SIGKILL recovery
test compares against an uninterrupted apply.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import ArtifactCorruptError, ConfigurationError

STATE_SCHEMA_VERSION = 1

LINK_ADD = "link.add"
LINK_REMOVE = "link.remove"
ATTR_SET = "attr.set"

_KINDS = (LINK_ADD, LINK_REMOVE, ATTR_SET)


@dataclass(frozen=True)
class Delta:
    """One immutable stream mutation.

    Attributes
    ----------
    kind:
        ``link.add`` / ``link.remove`` mutate the undirected edge
        ``{u, v}``; ``attr.set`` writes attribute index ``v`` of user
        ``u``.
    u, v:
        User index pair (``v`` is the attribute index for ``attr.set``).
    value:
        Link weight (``link.add``) or attribute value (``attr.set``);
        ignored by ``link.remove``.
    """

    kind: str
    u: int
    v: int
    value: float = 1.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown delta kind {self.kind!r}; known kinds: {_KINDS}"
            )
        if int(self.u) < 0 or int(self.v) < 0:
            raise ConfigurationError(
                f"delta indices must be non-negative, got ({self.u}, {self.v})"
            )
        if self.kind != ATTR_SET and int(self.u) == int(self.v):
            raise ConfigurationError(
                f"link deltas must not be self-loops, got ({self.u}, {self.v})"
            )
        object.__setattr__(self, "u", int(self.u))
        object.__setattr__(self, "v", int(self.v))
        object.__setattr__(self, "value", float(self.value))

    def encode(self) -> bytes:
        """Canonical byte payload (sorted-key JSON, repr-exact floats)."""
        return json.dumps(
            {"kind": self.kind, "u": self.u, "v": self.v, "value": self.value},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def decode(cls, payload: bytes) -> "Delta":
        """Parse :meth:`encode` output; corruption raises loudly."""
        try:
            body = json.loads(payload.decode("utf-8"))
            return cls(
                kind=body["kind"],
                u=body["u"],
                v=body["v"],
                value=body["value"],
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            raise ArtifactCorruptError(
                f"undecodable delta payload: {exc}"
            ) from exc


def link_add(u: int, v: int, weight: float = 1.0) -> Delta:
    """Convenience constructor for a ``link.add`` delta."""
    return Delta(LINK_ADD, u, v, weight)


def link_remove(u: int, v: int) -> Delta:
    """Convenience constructor for a ``link.remove`` delta."""
    return Delta(LINK_REMOVE, u, v, 0.0)


def attribute_set(user: int, attribute: int, value: float) -> Delta:
    """Convenience constructor for an ``attr.set`` delta."""
    return Delta(ATTR_SET, user, attribute, value)


class StreamState:
    """The deterministic fold of acknowledged deltas: links + attributes.

    Parameters
    ----------
    n_users:
        Fixed user population; deltas referencing users outside
        ``[0, n_users)`` are rejected at apply time.

    Examples
    --------
    >>> state = StreamState(4)
    >>> state.apply(1, link_add(0, 1))
    True
    >>> state.apply(1, link_add(0, 1))  # replayed seq: skipped
    False
    >>> state.applied_seq
    1
    """

    def __init__(self, n_users: int):
        self.n_users = int(n_users)
        if self.n_users < 2:
            raise ConfigurationError(
                f"streaming state needs n_users >= 2, got {n_users}"
            )
        self._links: Dict[Tuple[int, int], float] = {}
        self._attributes: Dict[Tuple[int, int], float] = {}
        self.applied_seq = 0

    # -- mutation -------------------------------------------------------
    def _check_user(self, index: int) -> int:
        if not 0 <= index < self.n_users:
            raise ConfigurationError(
                f"user index {index} out of range (0..{self.n_users - 1})"
            )
        return index

    def apply(self, seq: int, delta: Delta) -> bool:
        """Apply one sequenced delta; ``False`` when it was already applied.

        Sequence numbers must arrive in the order the WAL assigned them;
        anything at or below ``applied_seq`` is a replayed duplicate and
        is skipped without touching the state.
        """
        seq = int(seq)
        if seq <= self.applied_seq:
            return False
        if delta.kind == ATTR_SET:
            self._check_user(delta.u)
            self._attributes[(delta.u, delta.v)] = delta.value
        else:
            key = (min(delta.u, delta.v), max(delta.u, delta.v))
            self._check_user(key[0])
            self._check_user(key[1])
            if delta.kind == LINK_ADD:
                self._links[key] = delta.value
            else:
                self._links.pop(key, None)
        self.applied_seq = seq
        return True

    def apply_many(self, records: Iterable[Tuple[int, Delta]]) -> int:
        """Apply ``(seq, delta)`` records in order; returns how many applied."""
        applied = 0
        for seq, delta in records:
            if self.apply(seq, delta):
                applied += 1
        return applied

    # -- reads ----------------------------------------------------------
    @property
    def n_links(self) -> int:
        """Number of live undirected links."""
        return len(self._links)

    def link_weight(self, u: int, v: int) -> float:
        """Weight of the undirected link ``{u, v}`` (0.0 when absent)."""
        key = (min(int(u), int(v)), max(int(u), int(v)))
        return self._links.get(key, 0.0)

    def attribute(self, user: int, attribute: int) -> float:
        """Current value of one user attribute (0.0 when never written)."""
        return self._attributes.get((int(user), int(attribute)), 0.0)

    def to_csr(self) -> sparse.csr_matrix:
        """The symmetric adjacency as a deterministic CSR matrix."""
        if not self._links:
            return sparse.csr_matrix((self.n_users, self.n_users))
        keys = sorted(self._links)
        rows = np.fromiter((k[0] for k in keys), dtype=np.int64, count=len(keys))
        cols = np.fromiter((k[1] for k in keys), dtype=np.int64, count=len(keys))
        vals = np.fromiter(
            (self._links[k] for k in keys), dtype=float, count=len(keys)
        )
        matrix = sparse.coo_matrix(
            (
                np.concatenate([vals, vals]),
                (np.concatenate([rows, cols]), np.concatenate([cols, rows])),
            ),
            shape=(self.n_users, self.n_users),
        )
        return matrix.tocsr()

    def attribute_matrix(self, n_attributes: Optional[int] = None) -> sparse.csr_matrix:
        """Users × attributes CSR of every written attribute value."""
        if n_attributes is None:
            n_attributes = 1 + max(
                (idx for _, idx in self._attributes), default=-1
            )
        keys = sorted(self._attributes)
        rows = [k[0] for k in keys]
        cols = [k[1] for k in keys]
        vals = [self._attributes[k] for k in keys]
        return sparse.csr_matrix(
            (vals, (rows, cols)), shape=(self.n_users, max(0, n_attributes))
        )

    def digest(self) -> str:
        """Sha256 over the full state: the bit-exact recovery oracle."""
        hasher = hashlib.sha256()
        hasher.update(f"v{STATE_SCHEMA_VERSION}:{self.n_users}:".encode())
        hasher.update(f"seq={self.applied_seq};".encode())
        for (u, v), weight in sorted(self._links.items()):
            hasher.update(f"L{u},{v}={weight!r};".encode())
        for (u, a), value in sorted(self._attributes.items()):
            hasher.update(f"A{u},{a}={value!r};".encode())
        return hasher.hexdigest()

    # -- durability -----------------------------------------------------
    def save(self, path: str) -> str:
        """Atomically snapshot the state (staged write + ``os.replace``).

        The archive embeds the state digest; :meth:`load` refuses any file
        whose content does not hash back to it, so a torn snapshot write
        degrades to "replay more of the WAL", never to silent corruption.
        """
        links = sorted(self._links.items())
        attrs = sorted(self._attributes.items())
        payload = {
            "schema_version": STATE_SCHEMA_VERSION,
            "n_users": self.n_users,
            "applied_seq": self.applied_seq,
        }
        meta_json = json.dumps(payload, sort_keys=True)
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, staging = tempfile.mkstemp(dir=directory, suffix=".state-staging")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez_compressed(
                    handle,
                    meta=np.frombuffer(meta_json.encode("utf-8"), dtype=np.uint8),
                    link_keys=np.asarray(
                        [k for k, _ in links], dtype=np.int64
                    ).reshape(-1, 2),
                    link_values=np.asarray([w for _, w in links], dtype=float),
                    attr_keys=np.asarray(
                        [k for k, _ in attrs], dtype=np.int64
                    ).reshape(-1, 2),
                    attr_values=np.asarray([v for _, v in attrs], dtype=float),
                    digest=np.frombuffer(
                        self.digest().encode("ascii"), dtype=np.uint8
                    ),
                )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(staging, path)
        except BaseException:
            if os.path.exists(staging):
                os.unlink(staging)
            raise
        return path

    @classmethod
    def load(cls, path: str) -> "StreamState":
        """Load a snapshot, re-deriving and checking its embedded digest."""
        try:
            with np.load(path) as data:
                meta = json.loads(bytes(data["meta"]).decode("utf-8"))
                link_keys = np.asarray(data["link_keys"], dtype=np.int64)
                link_values = np.asarray(data["link_values"], dtype=float)
                attr_keys = np.asarray(data["attr_keys"], dtype=np.int64)
                attr_values = np.asarray(data["attr_values"], dtype=float)
                stored = bytes(data["digest"]).decode("ascii")
        except (
            KeyError,
            ValueError,
            OSError,
            EOFError,
            zipfile.BadZipFile,
            zlib.error,
            UnicodeDecodeError,
        ) as exc:
            raise ArtifactCorruptError(
                f"cannot read state snapshot {path}: {exc}"
            ) from exc
        state = cls(int(meta["n_users"]))
        for (u, v), weight in zip(link_keys, link_values):
            state._links[(int(u), int(v))] = float(weight)
        for (u, a), value in zip(attr_keys, attr_values):
            state._attributes[(int(u), int(a))] = float(value)
        state.applied_seq = int(meta["applied_seq"])
        actual = state.digest()
        if actual != stored:
            raise ArtifactCorruptError(
                f"state snapshot {path} failed its integrity check: stored "
                f"sha256 {stored[:12]}… but content hashes to {actual[:12]}…"
            )
        return state
