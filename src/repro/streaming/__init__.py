"""Crash-safe streaming ingestion and continuous publish (DESIGN.md §16).

The subsystem turns the offline fit→publish cycle into a durable loop:

* :mod:`repro.streaming.deltas` — sequenced link/attribute deltas and the
  replayable :class:`StreamState` they fold into;
* :mod:`repro.streaming.wal` — the segmented, sha256-framed write-ahead
  log whose fsync *is* the acknowledgement;
* :mod:`repro.streaming.ingest` — the bounded, backpressured submit API;
* :mod:`repro.streaming.refit` — warm refits (checkpoint + retained SVT
  subspace + factored estimate) producing publishable predictors;
* :mod:`repro.streaming.pipeline` — recovery, cadenced ticks, publish →
  hot-swap, and degraded-tier engagement;
* :mod:`repro.streaming.evaluation` — the staleness-vs-AUC cadence sweep
  over :mod:`repro.temporal` slices.

The headline guarantee: ``kill -9`` at any point after an acknowledged
submit loses nothing — recovery replays the WAL to a bit-identical state
digest.
"""

from repro.streaming.deltas import (
    ATTR_SET,
    Delta,
    LINK_ADD,
    LINK_REMOVE,
    StreamState,
    attribute_set,
    link_add,
    link_remove,
)
from repro.streaming.ingest import StreamIngestor
from repro.streaming.pipeline import StreamingPipeline
from repro.streaming.refit import WarmRefitter
from repro.streaming.wal import WriteAheadLog

__all__ = [
    "ATTR_SET",
    "Delta",
    "LINK_ADD",
    "LINK_REMOVE",
    "StreamState",
    "StreamIngestor",
    "StreamingPipeline",
    "WarmRefitter",
    "WriteAheadLog",
    "attribute_set",
    "link_add",
    "link_remove",
]
