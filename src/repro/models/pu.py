"""PL — PU-classification based link prediction (Zhang, Yu & Zhou, KDD'14).

Existing links are *positive* instances and everything else is *unlabeled*;
link prediction becomes positive-unlabeled learning.  The classical two-step
spy technique is used:

1. a fraction of the positives ("spies") is hidden among the unlabeled set
   and a first classifier is trained on positives-vs-unlabeled;
2. unlabeled instances scoring below (almost) every spy are taken as
   *reliable negatives* and a second classifier is trained on positives vs
   reliable negatives.

Features are the merged (non-adapted) target + source intimacy vectors, as
in :mod:`repro.models.scan`.  Variants: ``PLPredictor()`` (PL),
``PLPredictor.target_only()`` (PL-T), ``PLPredictor.source_only()`` (PL-S).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.features.intimacy import IntimacyFeatureExtractor
from repro.models._pair_features import (
    extract_task_tensors,
    merged_pair_features,
    sample_training_pairs,
)
from repro.models.base import LinkPredictor, TransferTask
from repro.models.classifiers import LogisticRegression
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_in_range, check_positive


class PLPredictor(LinkPredictor):
    """Spy-technique PU link predictor.

    Parameters
    ----------
    use_target, use_sources:
        Which feature blocks to include (see the -T / -S variants).
    unlabeled_ratio:
        Unlabeled non-link instances sampled per positive.
    spy_fraction:
        Fraction of positives hidden as spies in step one.
    spy_percentile:
        Spy-score percentile used as the reliable-negative threshold (5.0
        reproduces the classical "below almost every spy" rule).
    l2:
        Classifier regularization strength.
    """

    def __init__(
        self,
        use_target: bool = True,
        use_sources: bool = True,
        unlabeled_ratio: float = 5.0,
        spy_fraction: float = 0.15,
        spy_percentile: float = 5.0,
        l2: float = 1.0,
        extractor: IntimacyFeatureExtractor = None,
        display_name: str = None,
    ):
        super().__init__()
        if not use_target and not use_sources:
            raise ConfigurationError(
                "at least one of use_target / use_sources must be set"
            )
        self.use_target = bool(use_target)
        self.use_sources = bool(use_sources)
        self.unlabeled_ratio = check_positive(unlabeled_ratio, "unlabeled_ratio")
        self.spy_fraction = check_in_range(
            spy_fraction, "spy_fraction", 0.0, 1.0, inclusive=False
        )
        self.spy_percentile = check_in_range(
            spy_percentile, "spy_percentile", 0.0, 100.0
        )
        # The paper's PL [37] extracts its features from meta paths; the
        # default extractor mirrors that (common neighbors is the U-U-U
        # social meta path).  Pass a custom extractor for the full bank.
        self.extractor = extractor or IntimacyFeatureExtractor(
            features=(
                "common_neighbors",
                "metapath_UPWPU",
                "metapath_UPTPU",
                "metapath_UPLPU",
            )
        )
        self.l2 = l2
        self.classifier = LogisticRegression(l2=l2)
        self._display_name = display_name or self._default_name()
        self._target_tensor = None
        self._source_tensors = None
        self._anchors = None

    def _default_name(self) -> str:
        if self.use_target and self.use_sources:
            return "PL"
        return "PL-T" if self.use_target else "PL-S"

    @property
    def name(self) -> str:
        return self._display_name

    @classmethod
    def target_only(cls, **kwargs) -> "PLPredictor":
        """The PL-T variant (target features only)."""
        return cls(use_target=True, use_sources=False, **kwargs)

    @classmethod
    def source_only(cls, **kwargs) -> "PLPredictor":
        """The PL-S variant (source features only)."""
        return cls(use_target=False, use_sources=True, **kwargs)

    # ------------------------------------------------------------------
    def _fit(self, task: TransferTask) -> None:
        rng = ensure_rng(task.random_state)
        target_tensor, source_tensors = extract_task_tensors(task, self.extractor)
        self._target_tensor = target_tensor if self.use_target else None
        self._source_tensors = source_tensors if self.use_sources else []
        self._anchors = list(task.anchors) if self.use_sources else []
        pairs, labels = sample_training_pairs(task, self.unlabeled_ratio, rng)
        features = self._features(pairs)
        positives = features[labels == 1.0]
        unlabeled = features[labels == 0.0]
        if len(positives) == 0 or len(unlabeled) == 0:
            # Nothing to separate; fall back to a plain supervised fit.
            self.classifier.fit(features, labels)
            return
        reliable_negatives = self._select_reliable_negatives(
            positives, unlabeled, rng
        )
        self.classifier = LogisticRegression(l2=self.l2)
        stacked = np.vstack([positives, reliable_negatives])
        stacked_labels = np.concatenate(
            [np.ones(len(positives)), np.zeros(len(reliable_negatives))]
        )
        self.classifier.fit(stacked, stacked_labels)

    def _select_reliable_negatives(
        self,
        positives: np.ndarray,
        unlabeled: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n_spies = max(1, int(round(len(positives) * self.spy_fraction)))
        spy_idx = rng.choice(len(positives), size=n_spies, replace=False)
        spy_mask = np.zeros(len(positives), dtype=bool)
        spy_mask[spy_idx] = True
        spies = positives[spy_mask]
        remaining_positives = positives[~spy_mask]
        if len(remaining_positives) == 0:
            remaining_positives = positives
        step_one = LogisticRegression(l2=self.l2)
        step_one_features = np.vstack([remaining_positives, unlabeled, spies])
        step_one_labels = np.concatenate(
            [
                np.ones(len(remaining_positives)),
                np.zeros(len(unlabeled) + len(spies)),
            ]
        )
        step_one.fit(step_one_features, step_one_labels)
        threshold = float(
            np.percentile(step_one.predict_proba(spies), self.spy_percentile)
        )
        unlabeled_scores = step_one.predict_proba(unlabeled)
        reliable = unlabeled[unlabeled_scores < threshold]
        if len(reliable) == 0:
            # No unlabeled instance scored below the spies — keep the whole
            # unlabeled pool as (noisy) negatives rather than failing.
            reliable = unlabeled
        return reliable

    def _score_pairs(self, pairs: List[Tuple[int, int]]) -> np.ndarray:
        return self.classifier.predict_proba(self._features(pairs))

    def _features(self, pairs: List[Tuple[int, int]]) -> np.ndarray:
        return merged_pair_features(
            pairs,
            target_tensor=self._target_tensor,
            source_tensors=self._source_tensors,
            anchors=self._anchors,
        )
