"""Shared pair-feature construction for the classification baselines.

SCAN and PL (the ICDM'13 / KDD'14 baselines) describe link instances by
concatenating the intimacy feature vectors extracted from the target and the
source networks — *without* domain adaptation ("simply merging the extracted
feature vectors together", per the paper's related-work discussion).  A
target pair picks up a source's features only when both endpoints are
anchored; otherwise the source block is zero.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.features.intimacy import IntimacyFeatureExtractor
from repro.features.tensor import FeatureTensor
from repro.models.base import TransferTask
from repro.networks.aligned import AnchorLinks
from repro.utils.rng import RandomState, ensure_rng


def extract_task_tensors(
    task: TransferTask, extractor: IntimacyFeatureExtractor
) -> Tuple[FeatureTensor, List[FeatureTensor]]:
    """Extract the target tensor (training view) and all source tensors.

    Source structure is fully observed (only target links are held out), so
    source tensors use each source's complete social graph.
    """
    target_tensor = extractor.extract(task.target, task.training_graph)
    source_tensors = [extractor.extract(source) for source in task.sources]
    return target_tensor, source_tensors


def merged_pair_features(
    pairs: Sequence[Tuple[int, int]],
    target_tensor: FeatureTensor = None,
    source_tensors: Sequence[FeatureTensor] = (),
    anchors: Sequence[AnchorLinks] = (),
) -> np.ndarray:
    """Concatenated per-pair feature rows ``(len(pairs), d_total)``.

    Parameters
    ----------
    pairs:
        Target user index pairs.
    target_tensor:
        Target features, or ``None`` to omit the target block (SCAN-S/PL-S).
    source_tensors, anchors:
        One tensor and one anchor set per source; source features are mapped
        through the anchors and zero-filled for unanchored pairs.
    """
    blocks: List[np.ndarray] = []
    if target_tensor is not None:
        blocks.append(target_tensor.pair_vectors(pairs))
    for tensor, anchor in zip(source_tensors, anchors):
        block = np.zeros((len(pairs), tensor.n_features))
        for row, (i, j) in enumerate(pairs):
            a, b = anchor.map_forward(i), anchor.map_forward(j)
            if a is not None and b is not None and a != b:
                block[row] = tensor.pair_vector(a, b)
        blocks.append(block)
    if not blocks:
        raise ValueError("at least one feature block must be requested")
    return np.hstack(blocks)


def sample_training_pairs(
    task: TransferTask,
    negative_ratio: float,
    random_state: RandomState = None,
) -> Tuple[List[Tuple[int, int]], np.ndarray]:
    """Training pairs and labels: all training links plus sampled non-links.

    ``negative_ratio`` non-links are drawn per positive (capped by
    availability) — the class-imbalanced regime the paper says
    classification models struggle with.
    """
    rng = ensure_rng(random_state)
    positives = sorted(task.training_graph.links())
    negatives = task.training_graph.non_links()
    n_negative = min(len(negatives), int(round(len(positives) * negative_ratio)))
    if n_negative and negatives:
        idx = rng.choice(len(negatives), size=n_negative, replace=False)
        sampled_negatives = [negatives[i] for i in sorted(idx.tolist())]
    else:
        sampled_negatives = []
    pairs = positives + sampled_negatives
    labels = np.concatenate(
        [np.ones(len(positives)), np.zeros(len(sampled_negatives))]
    )
    return pairs, labels
