"""From-scratch regularized logistic regression.

The SCAN and PL baselines need a binary classifier.  scikit-learn is not a
dependency of this reproduction, so a small L2-regularized logistic
regression is implemented directly on numpy + scipy: features are
standardized, the negative log-likelihood is minimized with L-BFGS, and the
model exposes ``predict_proba`` scores used as link confidences.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.optimize

from repro.exceptions import NotFittedError, OptimizationError
from repro.utils.validation import check_non_negative


class LogisticRegression:
    """Binary logistic regression with L2 regularization.

    Parameters
    ----------
    l2:
        Regularization strength on the weights (the intercept is not
        penalized).
    max_iter:
        L-BFGS iteration cap.
    standardize:
        Whether to z-score features before fitting (recommended — feature
        families here have wildly different scales).
    """

    def __init__(
        self, l2: float = 1.0, max_iter: int = 200, standardize: bool = True
    ):
        self.l2 = check_non_negative(l2, "l2")
        self.max_iter = int(max_iter)
        self.standardize = bool(standardize)
        self.weights: Optional[np.ndarray] = None
        self.intercept: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Fit on ``(n_samples, n_features)`` features and 0/1 labels."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float).ravel()
        if features.ndim != 2:
            raise OptimizationError(
                f"features must be 2-D, got shape {features.shape}"
            )
        if features.shape[0] != labels.shape[0]:
            raise OptimizationError(
                f"{features.shape[0]} samples but {labels.shape[0]} labels"
            )
        if not np.all(np.isin(labels, (0.0, 1.0))):
            raise OptimizationError("labels must be binary 0/1")
        if features.shape[0] == 0:
            raise OptimizationError("cannot fit on zero samples")
        if self.standardize:
            self._mean = features.mean(axis=0)
            scale = features.std(axis=0)
            self._scale = np.where(scale > 0, scale, 1.0)
            features = (features - self._mean) / self._scale
        n_features = features.shape[1]
        # Degenerate single-class data: fall back to a constant predictor at
        # the empirical base rate rather than failing.
        if labels.min() == labels.max():
            self.weights = np.zeros(n_features)
            base = float(labels.mean())
            base = min(max(base, 1e-6), 1 - 1e-6)
            self.intercept = float(np.log(base / (1 - base)))
            return self
        theta0 = np.zeros(n_features + 1)

        def objective(theta: np.ndarray):
            weights, intercept = theta[:-1], theta[-1]
            logits = features @ weights + intercept
            # log(1 + exp(z)) computed stably
            log_partition = np.logaddexp(0.0, logits)
            nll = float(np.sum(log_partition - labels * logits))
            nll += 0.5 * self.l2 * float(weights @ weights)
            probs = _sigmoid(logits)
            grad_w = features.T @ (probs - labels) + self.l2 * weights
            grad_b = float(np.sum(probs - labels))
            return nll, np.concatenate([grad_w, [grad_b]])

        result = scipy.optimize.minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        self.weights = result.x[:-1]
        self.intercept = float(result.x[-1])
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Raw logits for samples."""
        if self.weights is None:
            raise NotFittedError("LogisticRegression has not been fitted")
        features = np.asarray(features, dtype=float)
        if self.standardize and self._mean is not None:
            features = (features - self._mean) / self._scale
        return features @ self.weights + self.intercept

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1) per sample."""
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at ``threshold``."""
        return (self.predict_proba(features) >= threshold).astype(float)


def _sigmoid(logits: np.ndarray) -> np.ndarray:
    out = np.empty_like(logits, dtype=float)
    positive = logits >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-logits[positive]))
    exp_l = np.exp(logits[~positive])
    out[~positive] = exp_l / (1.0 + exp_l)
    return out
