"""SLAMPRED — sparse and low-rank matrix estimation based link prediction.

The paper's full pipeline (Section III):

1. extract intimacy feature tensors for the target (from its *training*
   structure) and for every aligned source network;
2. when anchors exist, fit the :class:`~repro.adaptation.DomainAdapter` and
   obtain adapted tensors ``X̂^t, X̂^1, …, X̂^K`` re-indexed onto the target's
   user pairs;
3. form the constant intimacy gradient
   ``∇v = α_t · Σ_c |X̂^t(c,:,:)| + Σ_k α_k · Σ_c |X̂^k(c,:,:)|``
   (the paper's formula; absolute values make the ℓ1 intimacy term's
   gradient correct regardless of latent-feature signs — slices are
   max-normalized first so feature families contribute comparably);
4. run the proximal-operator CCCP (Algorithm 1) from ``S = A`` with the
   squared-Frobenius loss, the τ trace-norm prox, the γ ℓ1 prox and the
   projection onto the admissible set (the non-negative orthant; scores are
   rescaled into [0, 1] after optimization so the predictor is a confidence
   function as Definition 3 requires).

The regularization defaults are recalibrated to the synthetic substrate's
scale (the paper's γ = τ = 1 applies to its crawled Twitter matrix): see
DESIGN.md §5 and the ablation benchmarks for the sensitivity analysis.

Variants:

* :class:`SlamPred` — full model (structure + attributes + sources);
* :class:`SlamPredT` — target network only (structure + attributes);
* :class:`SlamPredH` — homogeneous: target structure only.

Every variant also accepts ``factored=True``, which swaps the dense n×n
iterate for the O(nk) :class:`~repro.factored.estimate.FactoredEstimate`
representation end to end (DESIGN.md §13): the solve runs on factors, the
fitted predictor stores ``U diag(σ) Vᵀ + R`` and scoring a pair costs one
O(k) dot product.  The dense path (and its ``exact=True`` bit-exact seed
numerics) remains the parity oracle the test suite checks the factored
path against.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.adaptation.adapter import DomainAdapter, align_source_to_target
from repro.features.intimacy import IntimacyFeatureExtractor
from repro.features.tensor import FeatureTensor
from repro.models.base import MatrixPredictor, TransferTask
from repro.observability.report import RunReport, build_run_report
from repro.observability.tracer import NullTracer, Tracer, is_tracing
from repro.optim.cccp import CCCPResult, CCCPSolver
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import ForwardBackwardSolver
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx
from repro.perf.parallel import parallel_map
from repro.perf.warm_svt import WarmStartSVT
from repro.exceptions import ConfigurationError, NotFittedError
from repro.utils.matrices import zero_diagonal
from repro.utils.validation import (
    check_integer,
    check_non_negative,
    check_positive,
)


# Near-lossless compression of the (dense, rank-spread) intimacy gradient
# for the factored solve: top singular directions plus the largest-|·|
# residual entries, sized as a multiple of the adjacency's nnz.
_FACTORED_GRADIENT_RANK = 128
_FACTORED_GRADIENT_RESIDUAL_MULTIPLE = 8


class SlamPred(MatrixPredictor):
    """The full SLAMPRED model.

    Parameters
    ----------
    alpha_target:
        Weight α_t of the target's intimacy term.
    alpha_sources:
        Weight α_k of each source's intimacy term — a scalar applied to all
        sources or one value per source.
    learn_alphas:
        When True (default), the final combination of the target intimacy
        and the transferred affinities is *calibrated on the training
        structure* (a logistic stacking over the component scores and the
        anchor-coverage indicators) instead of using the fixed α weights
        directly; the fixed α still scale each component before stacking,
        so α = 0 removes a component exactly (Figures 4/5 still sweep
        them).  This automates the careful α selection the paper performs
        by validation (Section IV-D2).
    gamma:
        ℓ1 (sparsity) regularization weight (paper: 1.0).
    tau:
        Trace-norm (low-rank) regularization weight (paper: 1.0).
    mu:
        Anchor-cost weight inside the domain adaptation (paper: 1.0).
    intimacy_scale:
        Overall multiplier on the intimacy gradient ∇v.  The calibrated
        gradient lives in [0, 1] while the loss gradient spans [−2, 2];
        the multiplier balances the two so the trace-norm/ℓ1 corrections
        refine rather than drown the intimacy ranking (see the
        gradient-scale ablation benchmark).
    svd_rank:
        Starting rank of the warm-started SVT engine (and, on the exact
        path, the rank of the legacy truncated Lanczos SVD) — the
        scalable path for networks with thousands of users.
    exact:
        When True, fit with the seed solver's bit-exact numerics: legacy
        cold-start SVT, sequential smooth terms, allocating inner loop.
        The default False enables the hot path — the warm-started
        adaptive-rank SVT engine, the fused smooth objective and the
        workspace-backed inner loop (DESIGN.md §12); predictions match
        the exact path to the SVT's verified residual tolerance.
    factored:
        When True, run the solve on the factored O(nk) representation
        (DESIGN.md §13): no n×n array is formed during fitting, the
        fitted predictor is a
        :class:`~repro.factored.estimate.FactoredEstimate` exposed via
        :attr:`factored_estimate`, and pair scores are unnormalized
        ``max(S_ij, 0)`` entries (a positive rescaling of the dense
        path's peak-normalized scores — AUC and top-k rankings are
        unaffected).  Mutually exclusive with ``exact``; the intimacy
        gradient, when present, is compressed to rank
        ``min(n − 1, 128)`` plus its largest-magnitude residual entries
        before the solve.
    svt_options:
        Extra keyword arguments for the
        :class:`~repro.perf.warm_svt.WarmStartSVT` engine on the hot and
        factored paths (``seed``, ``dense_fallback_cutoff``, tolerance
        knobs, …), layered over the rank settings derived from
        ``svd_rank``.  This is how the sharded solver gives every shard
        its own deterministic SVT seed and disables the dense recovery
        fallback on sub-problems small enough to qualify for it.
        Ignored on the ``exact`` path, which pins the legacy engine.
    n_jobs:
        Thread count for the per-source intimacy extraction and transfer
        pipeline (``None`` picks a bounded default; 1 forces the
        sequential path).
    latent_dimension:
        Shared latent feature dimension ``c``.
    step_size:
        Proximal gradient learning rate θ (paper: 0.001; the default here is
        larger because the surrogate loss is well conditioned and the
        evaluation sweeps many fits — see DESIGN.md).
    inner_iterations:
        Proximal steps per CCCP round.
    outer_iterations:
        Maximum CCCP rounds.
    tolerance:
        ℓ1 convergence tolerance on both loops.
    instances_per_network:
        Link-instance sample size for fitting the adaptation; ``None``
        scales with the target size (see
        :class:`~repro.adaptation.DomainAdapter`).
    extractor:
        Intimacy feature extractor (defaults to the full feature set).
    use_attributes, use_sources:
        Ablation switches (the -T / -H variants preset them).
    tracer:
        Optional :class:`~repro.observability.Tracer`.  When live, the fit
        is traced end to end (feature extraction → adaptation → CCCP rounds
        → gradient/prox/SVD spans) and :meth:`run_report` can archive the
        run; the default ``None`` (or a :class:`NullTracer`) keeps fitting
        bit-identical to the uninstrumented model.

    Examples
    --------
    >>> from repro.synth import generate_aligned_pair
    >>> from repro.models import SlamPred, TransferTask
    >>> aligned = generate_aligned_pair(scale=60, random_state=3)
    >>> task = TransferTask.from_aligned(aligned, random_state=3)
    >>> model = SlamPred().fit(task)
    >>> model.score_matrix.shape == (aligned.target.n_users,) * 2
    True
    """

    def __init__(
        self,
        alpha_target: float = 1.0,
        alpha_sources=1.0,
        gamma: float = 0.05,
        tau: float = 1.0,
        mu: float = 1.0,
        intimacy_scale: float = 4.0,
        svd_rank: Optional[int] = None,
        latent_dimension: int = 5,
        step_size: float = 0.05,
        inner_iterations: int = 25,
        outer_iterations: int = 40,
        tolerance: float = 1e-3,
        instances_per_network: Optional[int] = None,
        extractor: IntimacyFeatureExtractor = None,
        use_attributes: bool = True,
        use_sources: bool = True,
        learn_alphas: bool = True,
        exact: bool = False,
        factored: bool = False,
        svt_options: Optional[dict] = None,
        n_jobs: Optional[int] = None,
        display_name: str = None,
        tracer: Optional[Tracer] = None,
    ):
        super().__init__()
        self.learn_alphas = bool(learn_alphas)
        self.alpha_target = check_non_negative(alpha_target, "alpha_target")
        if np.isscalar(alpha_sources):
            self.alpha_sources = [check_non_negative(alpha_sources, "alpha_sources")]
            self._broadcast_alpha = True
        else:
            self.alpha_sources = [
                check_non_negative(a, f"alpha_sources[{i}]")
                for i, a in enumerate(alpha_sources)
            ]
            self._broadcast_alpha = False
        self.gamma = check_non_negative(gamma, "gamma")
        self.tau = check_non_negative(tau, "tau")
        self.mu = check_non_negative(mu, "mu")
        self.intimacy_scale = check_positive(intimacy_scale, "intimacy_scale")
        if svd_rank is None:
            self.svd_rank = None
        else:
            self.svd_rank = check_integer(svd_rank, "svd_rank", minimum=1)
        self.latent_dimension = check_integer(
            latent_dimension, "latent_dimension", minimum=1
        )
        self.step_size = check_positive(step_size, "step_size")
        self.inner_iterations = check_integer(
            inner_iterations, "inner_iterations", minimum=1
        )
        self.outer_iterations = check_integer(
            outer_iterations, "outer_iterations", minimum=1
        )
        self.tolerance = check_positive(tolerance, "tolerance")
        if instances_per_network is None:
            self.instances_per_network = None
        else:
            self.instances_per_network = check_integer(
                instances_per_network, "instances_per_network", minimum=2
            )
        self.extractor = extractor or IntimacyFeatureExtractor()
        self.use_attributes = bool(use_attributes)
        self.use_sources = bool(use_sources)
        if self.use_sources and not self.use_attributes:
            raise ConfigurationError(
                "use_sources requires use_attributes (transfer is carried "
                "by attribute features)"
            )
        self.exact = bool(exact)
        self.factored = bool(factored)
        if self.exact and self.factored:
            raise ConfigurationError(
                "exact and factored are mutually exclusive: exact pins the "
                "dense seed numerics, factored never forms the dense iterate"
            )
        if svt_options is None:
            self.svt_options = {}
        elif isinstance(svt_options, dict):
            self.svt_options = dict(svt_options)
        else:
            raise ConfigurationError(
                f"svt_options must be a dict of WarmStartSVT keyword "
                f"arguments, got {type(svt_options).__name__}"
            )
        if n_jobs is None:
            self.n_jobs = None
        else:
            self.n_jobs = check_integer(n_jobs, "n_jobs", minimum=1)
        self._display_name = display_name or self._default_name()
        self.tracer = tracer
        self._result: Optional[CCCPResult] = None
        self._factored_estimate = None
        self._adapter: Optional[DomainAdapter] = None
        self._checkpoint_manager = None
        self._svt_engine: Optional[WarmStartSVT] = None

    def _default_name(self) -> str:
        if self.use_sources:
            return "SLAMPRED"
        return "SLAMPRED-T" if self.use_attributes else "SLAMPRED-H"

    @property
    def name(self) -> str:
        return self._display_name

    @property
    def result(self) -> CCCPResult:
        """The solve record (history feeds the Figure 3 reproduction).

        A :class:`~repro.optim.cccp.CCCPResult` on the dense path, a
        :class:`~repro.factored.solver.FactoredResult` when the model was
        constructed with ``factored=True``; both carry ``history``,
        ``round_norms``, ``n_rounds`` and ``converged``.
        """
        if self._result is None:
            raise NotFittedError(f"{self.name} has not been fitted")
        return self._result

    @property
    def factored_estimate(self):
        """The fitted O(nk) estimate (``factored=True`` models only)."""
        if not self.factored:
            raise ConfigurationError(
                f"{self.name} was fitted densely; construct the model with "
                "factored=True for a factored estimate"
            )
        if self._factored_estimate is None:
            raise NotFittedError(f"{self.name} has not been fitted")
        return self._factored_estimate

    @property
    def adapter(self) -> Optional[DomainAdapter]:
        """The fitted domain adapter, or ``None`` when transfer was skipped."""
        return self._adapter

    @property
    def _tracer(self) -> Tracer:
        """The configured tracer, or the shared free null tracer."""
        return self.tracer if self.tracer is not None else _NULL_TRACER

    def run_report(self, name: str = None, meta: dict = None) -> RunReport:
        """Archive the traced fit as a :class:`~repro.observability.RunReport`.

        Requires the model to have been constructed with a live tracer and
        fitted; the report carries the model configuration, the CCCP
        outcome, the span tree and every iteration record.
        """
        if self._result is None:
            raise NotFittedError(f"{self.name} has not been fitted")
        if not is_tracing(self.tracer):
            raise ConfigurationError(
                "run_report needs a live tracer; construct the model with "
                "tracer=Tracer()"
            )
        solution = getattr(self._result, "solution", None)
        n_users = (
            int(solution.shape[0])
            if solution is not None
            else int(self._result.estimate.n_users)
        )
        merged_meta = {
            "model": self.name,
            "gamma": self.gamma,
            "tau": self.tau,
            "step_size": self.step_size,
            "svd_rank": self.svd_rank,
            "n_users": n_users,
            "n_rounds": self._result.n_rounds,
            "converged": self._result.converged,
        }
        merged_meta.update(meta or {})
        return build_run_report(
            self.tracer, name=name or self.name, meta=merged_meta
        )

    # ------------------------------------------------------------------
    def fit(
        self,
        task: TransferTask,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
    ) -> "SlamPred":
        """Train on a transfer task; returns ``self`` for chaining.

        Parameters
        ----------
        task:
            The transfer problem to fit.
        checkpoint_dir:
            When given, every ``checkpoint_every``-th CCCP round writes an
            atomic, digest-validated checkpoint into this directory
            (:class:`~repro.reliability.CheckpointManager`), and a fit
            that finds existing checkpoints there **resumes** from the
            newest valid one — a killed run replays the remaining rounds
            and lands on the uninterrupted trajectory exactly (CCCP rounds
            are pure functions of the iterate).
        checkpoint_every:
            Checkpoint cadence in CCCP rounds.
        """
        if checkpoint_dir is None:
            self._checkpoint_manager = None
        else:
            from repro.reliability.checkpoints import CheckpointManager

            self._checkpoint_manager = CheckpointManager(
                checkpoint_dir, every=checkpoint_every
            )
        try:
            return super().fit(task)
        finally:
            self._checkpoint_manager = None

    def resume(
        self, task: TransferTask, checkpoint_dir: str
    ) -> "SlamPred":
        """Continue a killed fit from its newest valid checkpoint.

        A convenience wrapper over ``fit(task, checkpoint_dir=...)`` that
        *requires* a resumable checkpoint to exist, so an operator typo in
        the directory fails loudly instead of silently refitting from
        scratch.
        """
        from repro.reliability.checkpoints import CheckpointManager

        if CheckpointManager(checkpoint_dir).latest() is None:
            raise ConfigurationError(
                f"no resumable checkpoint found in {checkpoint_dir!r}; "
                "use fit(task, checkpoint_dir=...) for a fresh run"
            )
        return self.fit(task, checkpoint_dir=checkpoint_dir)

    def _build_svt_engine(self) -> WarmStartSVT:
        """The warm-started SVT engine: rank caps layered with svt_options."""
        options = {"initial_rank": self.svd_rank, "max_rank": self.svd_rank}
        options.update(self.svt_options)
        try:
            return WarmStartSVT(**options)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid svt_options for WarmStartSVT: {exc}"
            ) from exc

    def _fit(self, task: TransferTask) -> None:
        tracer = self._tracer
        adjacency = task.training_graph.adjacency
        with tracer.span("intimacy_gradient"):
            gradient = self._intimacy_gradient(task)
        if gradient is not None:
            gradient = self.intimacy_scale * gradient
        if self.factored:
            from scipy import sparse

            self._fit_factored(sparse.csr_matrix(adjacency), gradient)
            return
        loss = SquaredFrobeniusLoss(adjacency)
        if self.exact:
            self._svt_engine = None
        else:
            # svd_rank caps the engine exactly like it capped the legacy
            # truncated path: the fast path is then a warm-started drop-in
            # for the same rank-capped (possibly lossy) operator.
            self._svt_engine = self._build_svt_engine()
        prox_terms = [
            TraceNormProx(
                self.tau, max_rank=self.svd_rank, engine=self._svt_engine
            ),
            L1Prox(self.gamma),
            BoxProjection(0.0, None),
        ]
        inner = ForwardBackwardSolver(
            step_size=self.step_size,
            criterion=ConvergenceCriterion(
                tolerance=self.tolerance, max_iterations=self.inner_iterations
            ),
        )
        solver = CCCPSolver(
            loss=loss,
            prox_terms=prox_terms,
            intimacy_gradient=gradient,
            inner_solver=inner,
            outer_criterion=ConvergenceCriterion(
                tolerance=self.tolerance, max_iterations=self.outer_iterations
            ),
            fuse_smooth=not self.exact,
        )
        with tracer.span("cccp"):
            self._result = solver.solve(
                adjacency,
                tracer=tracer,
                checkpoint=self._checkpoint_manager,
            )
        scores = zero_diagonal(self._result.solution)
        peak = scores.max()
        if peak > 0:
            scores = scores / peak
        self._score_matrix = scores

    def fit_adjacency(self, adjacency) -> "SlamPred":
        """Fit the factored homogeneous model straight from an adjacency.

        The large-scale entry point: no :class:`TransferTask`, no feature
        extraction — just the structural solve on a scipy sparse (or
        csr-ifiable) adjacency.  Requires ``factored=True`` and
        ``use_attributes=False`` (the intimacy pipeline needs the full
        heterogeneous task); returns ``self`` for chaining.  This is what
        the ``bench_factored`` benchmark drives at sizes the dense path
        cannot allocate.
        """
        from scipy import sparse

        if not self.factored:
            raise ConfigurationError(
                "fit_adjacency requires factored=True; the dense path "
                "fits through a TransferTask"
            )
        if self.use_attributes:
            raise ConfigurationError(
                "fit_adjacency is structural-only; use the homogeneous "
                "variant (use_attributes=False) or fit a TransferTask"
            )
        matrix = sparse.csr_matrix(adjacency, dtype=float)
        if matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"adjacency must be square, got shape {matrix.shape}"
            )
        self._fit_factored(matrix, None)
        self._fitted = True
        return self

    def _fit_factored(self, adjacency, gradient) -> None:
        """Run the O(nk) solve (DESIGN.md §13) on a sparse adjacency."""
        from scipy import sparse

        from repro.factored.estimate import FactoredEstimate
        from repro.factored.solver import FactoredSolver
        from repro.optim.forward_backward import FactoredForwardBackwardSolver

        if self._checkpoint_manager is not None:
            raise ConfigurationError(
                "checkpointing is a dense-path feature; factored fits "
                "store O(nk) artifacts and are cheap to re-run"
            )
        tracer = self._tracer
        if gradient is None:
            intimacy = None
        elif sparse.issparse(gradient):
            intimacy = (
                None
                if gradient.nnz == 0
                else FactoredEstimate.from_sparse(gradient)
            )
        else:
            gradient = np.asarray(gradient, dtype=float)
            n = gradient.shape[0]
            rank = max(1, min(n - 1, _FACTORED_GRADIENT_RANK))
            residual_nnz = min(
                gradient.size,
                _FACTORED_GRADIENT_RESIDUAL_MULTIPLE
                * max(int(adjacency.nnz), n),
            )
            intimacy = FactoredEstimate.compress(
                gradient, rank=rank, residual_nnz=residual_nnz
            )
        self._svt_engine = self._build_svt_engine()
        prox_terms = [
            TraceNormProx(
                self.tau, max_rank=self.svd_rank, engine=self._svt_engine
            ),
            L1Prox(self.gamma),
            BoxProjection(0.0, None),
        ]
        inner = FactoredForwardBackwardSolver(
            step_size=self.step_size,
            criterion=ConvergenceCriterion(
                tolerance=self.tolerance, max_iterations=self.inner_iterations
            ),
        )
        solver = FactoredSolver(
            adjacency,
            prox_terms,
            intimacy=intimacy,
            inner_solver=inner,
            outer_criterion=ConvergenceCriterion(
                tolerance=self.tolerance, max_iterations=self.outer_iterations
            ),
        )
        with tracer.span("cccp"):
            self._result = solver.solve(tracer=tracer)
        self._factored_estimate = self._result.estimate
        self._score_matrix = None

    @property
    def score_matrix(self) -> np.ndarray:
        """The full n×n score matrix.

        On the factored path this **materializes** the dense matrix
        (``max(S, 0)`` with a zero diagonal, unnormalized) — the parity
        oracle for small n; serving-scale consumers should read rows via
        :attr:`factored_estimate` instead.
        """
        if self.factored:
            if self._factored_estimate is None:
                raise NotFittedError(
                    f"{self.name} must be fitted before reading scores"
                )
            dense = self._factored_estimate.to_dense()
            np.maximum(dense, 0.0, out=dense)
            np.fill_diagonal(dense, 0.0)
            return dense
        return MatrixPredictor.score_matrix.fget(self)

    @property
    def n_users(self) -> int:
        """Users covered by the fit — O(1) on the factored path."""
        if self.factored and self._factored_estimate is not None:
            return self._factored_estimate.n_users
        return MatrixPredictor.n_users.fget(self)

    def _score_pairs(self, pairs) -> np.ndarray:
        if not self.factored:
            return super()._score_pairs(pairs)
        rows = np.array([p[0] for p in pairs], dtype=int)
        cols = np.array([p[1] for p in pairs], dtype=int)
        scores = np.maximum(
            self._factored_estimate.entries(rows, cols), 0.0
        )
        scores[rows == cols] = 0.0
        return scores

    def _intimacy_gradient(self, task: TransferTask) -> Optional[np.ndarray]:
        if not self.use_attributes:
            return None
        tracer = self._tracer
        with tracer.span("extract:target"):
            target_tensor = self.extractor.extract(
                task.target, task.training_graph
            )
        with tracer.span("calibrate:target"):
            target_intimacy = self._weighted_intimacy(
                target_tensor, task.training_graph, task.random_state
            )
        transfer_active = (
            self.use_sources
            and task.n_sources > 0
            and any(len(anchor) > 0 for anchor in task.anchors)
        )
        if not transfer_active:
            # Unaligned (anchor ratio 0) or target-only variant: weighted
            # target features, no projection — SLAMPRED degenerates to
            # SLAMPRED-T exactly as in Table II.
            return self.alpha_target * target_intimacy
        with tracer.span("extract:sources"):
            source_tensors, extract_seconds = self.extractor.extract_many(
                task.sources, max_workers=self.n_jobs
            )
        tracer.metric("intimacy.n_sources", float(task.n_sources))
        for seconds in extract_seconds:
            tracer.metric("intimacy.source_seconds", seconds)
        graphs = [task.training_graph] + [
            _full_graph(source) for source in task.sources
        ]
        self._adapter = DomainAdapter(
            latent_dimension=self.latent_dimension,
            mu=self.mu,
            instances_per_network=self.instances_per_network,
            random_state=task.random_state,
        )
        with tracer.span("adaptation_fit"):
            self._adapter.fit(
                [target_tensor] + source_tensors, graphs, task.anchors
            )
        n_target = target_tensor.n_users
        alphas = self._source_alphas(task.n_sources)
        # Per-pair blocks: the target's raw intimacy features and latent
        # vectors, plus each source's latent vectors re-indexed through the
        # anchors (zeros where a pair is unanchored) and per-source
        # coverage indicators.  The raw block keeps the full target signal;
        # the latent blocks carry the cross-network information in the
        # shared space.
        latent_blocks = [
            target_tensor.values,
            self._adapter.transform(target_tensor, 0).values,
        ]
        block_alphas = [self.alpha_target, self.alpha_target]

        def _transfer(job):
            k, tensor, anchors = job
            latent_source = self._adapter.transform(tensor, k)
            n_source = tensor.n_users
            coverage = np.ones((1, n_source, n_source))
            return align_source_to_target(
                FeatureTensor(
                    np.concatenate([latent_source.values, coverage])
                ),
                anchors,
                n_target,
            ).values

        # Per-source transfer touches only that source's matrices and the
        # frozen adapter, so the K sources fan out over threads; order is
        # preserved, keeping the block layout (and numerics) identical to
        # the sequential loop.
        transfers, transfer_seconds = parallel_map(
            _transfer,
            [
                (k, tensor, anchors)
                for k, (tensor, anchors) in enumerate(
                    zip(source_tensors, task.anchors), start=1
                )
            ],
            max_workers=self.n_jobs,
        )
        for seconds in transfer_seconds:
            tracer.metric("intimacy.transfer_seconds", seconds)
        coverage_blocks = []
        for alpha, transferred in zip(alphas, transfers):
            latent_blocks.append(transferred[:-1])
            block_alphas.append(alpha)
            # Coverage carries the source's α too: a zero-weighted source
            # should inform the readout through neither its features nor
            # its coverage pattern.
            coverage_blocks.append(alpha * transferred[-1:])
        if not self.learn_alphas:
            # Fixed-α combination: the target intimacy plus each source's
            # centered affinity, exactly the paper's weighted-sum form.
            gradient = self.alpha_target * target_intimacy
            for k, (alpha, tensor, anchors) in enumerate(
                zip(alphas, source_tensors, task.anchors), start=1
            ):
                affinity = self._adapter.affinity_matrix(tensor, k)
                n_source = tensor.n_users
                coverage = np.ones((n_source, n_source))  # dense-ok: source-side alignment
                np.fill_diagonal(coverage, 0.0)
                transferred = align_source_to_target(
                    FeatureTensor(np.stack([affinity, coverage])),
                    anchors,
                    n_target,
                ).values
                gradient += alpha * (transferred[0] - 0.5 * transferred[1])
            return gradient
        return self._joint_latent_intimacy(
            latent_blocks,
            block_alphas,
            coverage_blocks,
            task.training_graph,
            task.random_state,
        )

    def _joint_latent_intimacy(
        self, latent_blocks, block_alphas, coverage_blocks, graph, random_state
    ) -> np.ndarray:
        """Calibrated intimacy over the joint adapted feature space.

        Each pair is described by the concatenation of every network's
        latent vector (source blocks anchor-mapped, zero when unanchored)
        plus per-source coverage flags.  Latent dimensions are scaled to
        unit variance and then multiplied by their network's α — with the
        non-standardized logistic readout and its L2 penalty, α acts as a
        prior importance, so α = 0 removes a network exactly while the
        Figure 4/5 sweeps remain meaningful.  Readout logits are
        quantile-transformed into [0, 1].
        """
        from scipy.stats import rankdata

        from repro.evaluation.splits import sample_negative_pairs
        from repro.models.classifiers import LogisticRegression

        n = latent_blocks[0].shape[1]
        links = sorted(graph.links())
        if not links:
            # Degenerate linkless graph: the calibration has nothing to fit
            # on, so the gradient is identically zero.  Returned as an
            # empty CSR matrix — allocating a dense n×n of zeros here cost
            # O(n²) memory for a matrix both solver paths treat as "no
            # transfer" (the CCCP solver drops it, the factored objective
            # keeps it sparse).
            from scipy import sparse

            return sparse.csr_matrix((n, n))
        scaled = []
        for alpha, block in zip(block_alphas, latent_blocks):
            flat = block.reshape(block.shape[0], -1)
            std = flat.std(axis=1)
            std = np.where(std > 0, std, 1.0)
            scaled.append(alpha * block / std[:, None, None])
        features = np.concatenate(scaled + list(coverage_blocks))  # (D, n, n)
        rng = _ensure_rng(random_state)
        negatives = sample_negative_pairs(
            graph, min(len(links), len(graph.non_links())), rng
        )
        pairs = links + negatives
        labels = np.concatenate([np.ones(len(links)), np.zeros(len(negatives))])
        rows = np.array([p[0] for p in pairs])
        cols = np.array([p[1] for p in pairs])
        train_features = features[:, rows, cols].T
        model = LogisticRegression(l2=1.0, standardize=False)
        model.fit(train_features, labels)
        flat = features.reshape(features.shape[0], -1).T
        logits = model.decision_function(flat).reshape(n, n)
        logits = (logits + logits.T) / 2.0
        gradient = rankdata(logits.ravel()).reshape(n, n)
        gradient = (gradient - 1.0) / max(1, gradient.size - 1)
        np.fill_diagonal(gradient, 0.0)
        return gradient

    def _source_alphas(self, n_sources: int) -> List[float]:
        if self._broadcast_alpha:
            return [self.alpha_sources[0]] * n_sources
        if len(self.alpha_sources) != n_sources:
            raise ConfigurationError(
                f"{len(self.alpha_sources)} source alphas for "
                f"{n_sources} sources"
            )
        return list(self.alpha_sources)

    def _weighted_intimacy(
        self, tensor: FeatureTensor, graph, random_state
    ) -> np.ndarray:
        """Calibrated per-pair intimacy matrix in [0, 1].

        The paper's intimacy term consumes a *curated* feature set from
        [28], summed uniformly.  This reproduction extracts a broad feature
        bank instead, so the slices are combined with weights learned from
        the training structure: a logistic model fitted on training links
        vs an equal sample of non-links, evaluated on every pair.  The
        uniform sum is the special case of equal weights; the learned
        combination plays the role of the original curated scores.
        """
        from repro.evaluation.splits import sample_negative_pairs
        from repro.models.classifiers import LogisticRegression

        links = sorted(graph.links())
        n = tensor.n_users
        if not links:
            return np.abs(tensor.normalized().values).mean(axis=0)
        rng = _ensure_rng(random_state)
        negatives = sample_negative_pairs(
            graph, min(len(links), len(graph.non_links())), rng
        )
        pairs = links + negatives
        labels = np.concatenate([np.ones(len(links)), np.zeros(len(negatives))])
        model = LogisticRegression(l2=1.0)
        model.fit(tensor.pair_vectors(pairs), labels)
        flat = tensor.values.reshape(tensor.n_features, -1).T  # (n², d)
        # Quantile-transformed logits: monotone in the propensity, uniformly
        # spread over [0, 1].  Min-max or sigmoid scaling would let outliers
        # (or saturation plateaus) compress the bulk of the pairs into a
        # sliver, and the trace-norm coupling would then drown the ranking.
        from scipy.stats import rankdata

        logits = model.decision_function(flat).reshape(n, n)
        logits = (logits + logits.T) / 2.0
        intimacy = rankdata(logits.ravel()).reshape(n, n)
        intimacy = (intimacy - 1.0) / max(1, intimacy.size - 1)
        np.fill_diagonal(intimacy, 0.0)
        return intimacy


class SlamPredT(SlamPred):
    """SLAMPRED-T: target network only (structure + attribute intimacy)."""

    def __init__(self, **kwargs):
        kwargs.setdefault("display_name", "SLAMPRED-T")
        super().__init__(use_attributes=True, use_sources=False, **kwargs)


class SlamPredH(SlamPred):
    """SLAMPRED-H: homogeneous — target social structure only."""

    def __init__(self, **kwargs):
        kwargs.setdefault("display_name", "SLAMPRED-H")
        super().__init__(use_attributes=False, use_sources=False, **kwargs)


_NULL_TRACER = NullTracer()


def _full_graph(network) -> "SocialGraph":
    from repro.networks.social import SocialGraph

    return SocialGraph.from_network(network)


def _ensure_rng(random_state):
    from repro.utils.rng import ensure_rng

    return ensure_rng(random_state)
