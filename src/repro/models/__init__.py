"""Link prediction models: SLAMPRED and all comparison baselines.

The experiment section of the paper compares four families:

* sparse + low-rank matrix estimation — :class:`SlamPred`,
  :class:`SlamPredT`, :class:`SlamPredH`;
* PU-classification link prediction — :class:`PLPredictor` and its -T / -S
  variants (spy-technique positive-unlabeled learning);
* supervised classification — :class:`ScanPredictor` and -T / -S variants;
* unsupervised predictors — :class:`PreferentialAttachment`,
  :class:`CommonNeighbors`, :class:`JaccardCoefficient` (plus Adamic-Adar,
  resource allocation and Katz extensions).

All share the :class:`LinkPredictor` interface: ``fit(task)`` on a
:class:`TransferTask` and ``score_pairs(pairs)`` on target user pairs.
"""

from repro.models.base import LinkPredictor, TransferTask
from repro.models.classifiers import LogisticRegression
from repro.models.unsupervised import (
    UnsupervisedPredictor,
    CommonNeighbors,
    JaccardCoefficient,
    PreferentialAttachment,
    AdamicAdar,
    ResourceAllocation,
    KatzIndex,
)
from repro.models.scan import ScanPredictor
from repro.models.pu import PLPredictor
from repro.models.slampred import SlamPred, SlamPredT, SlamPredH
from repro.models.persistence import (
    FrozenPredictor,
    FrozenFactoredPredictor,
    save_predictor,
    load_predictor,
)
from repro.models.recommender import LinkRecommender

__all__ = [
    "LinkPredictor",
    "TransferTask",
    "LogisticRegression",
    "UnsupervisedPredictor",
    "CommonNeighbors",
    "JaccardCoefficient",
    "PreferentialAttachment",
    "AdamicAdar",
    "ResourceAllocation",
    "KatzIndex",
    "ScanPredictor",
    "PLPredictor",
    "SlamPred",
    "SlamPredT",
    "SlamPredH",
    "FrozenPredictor",
    "FrozenFactoredPredictor",
    "save_predictor",
    "load_predictor",
    "LinkRecommender",
]
