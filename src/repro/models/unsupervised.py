"""Unsupervised link predictors (PA, CN, JC and extensions).

Each predictor computes its closeness-score matrix from the target's
*training* structure and reads scores off the matrix.  PA, CN and JC are the
paper's baselines; Adamic-Adar, resource allocation and Katz are standard
extensions exposed for completeness and for the ablation benchmarks.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.features.structural import (
    adamic_adar_matrix,
    common_neighbors_matrix,
    jaccard_matrix,
    katz_matrix,
    preferential_attachment_matrix,
    resource_allocation_matrix,
)
from repro.models.base import MatrixPredictor, TransferTask


class UnsupervisedPredictor(MatrixPredictor):
    """Generic score-matrix predictor built from a matrix function.

    Parameters
    ----------
    score_function:
        Maps a binary adjacency matrix to an ``n×n`` score matrix.
    display_name:
        Name used in result tables.
    """

    def __init__(
        self,
        score_function: Callable[[np.ndarray], np.ndarray],
        display_name: str = None,
    ):
        super().__init__()
        self._score_function = score_function
        self._display_name = display_name or type(self).__name__

    @property
    def name(self) -> str:
        return self._display_name

    def _fit(self, task: TransferTask) -> None:
        self._score_matrix = self._score_function(task.training_graph.adjacency)


class CommonNeighbors(UnsupervisedPredictor):
    """CN: ``|Γ(u) ∩ Γ(v)|``."""

    def __init__(self) -> None:
        super().__init__(common_neighbors_matrix, "CN")


class JaccardCoefficient(UnsupervisedPredictor):
    """JC: ``|Γ(u) ∩ Γ(v)| / |Γ(u) ∪ Γ(v)|``."""

    def __init__(self) -> None:
        super().__init__(jaccard_matrix, "JC")


class PreferentialAttachment(UnsupervisedPredictor):
    """PA: ``|Γ(u)| · |Γ(v)|``."""

    def __init__(self) -> None:
        super().__init__(preferential_attachment_matrix, "PA")


class AdamicAdar(UnsupervisedPredictor):
    """AA: ``Σ_{z∈Γ(u)∩Γ(v)} 1/log|Γ(z)|`` (extension baseline)."""

    def __init__(self) -> None:
        super().__init__(adamic_adar_matrix, "AA")


class ResourceAllocation(UnsupervisedPredictor):
    """RA: ``Σ_{z∈Γ(u)∩Γ(v)} 1/|Γ(z)|`` (extension baseline)."""

    def __init__(self) -> None:
        super().__init__(resource_allocation_matrix, "RA")


class KatzIndex(UnsupervisedPredictor):
    """Truncated Katz index (extension baseline).

    Parameters
    ----------
    beta:
        Path damping factor.
    max_length:
        Longest counted path length.
    """

    def __init__(self, beta: float = 0.05, max_length: int = 4):
        super().__init__(
            lambda adjacency: katz_matrix(adjacency, beta, max_length), "Katz"
        )
        self.beta = beta
        self.max_length = max_length
