"""Per-user link recommendation facade.

The paper motivates link prediction by retention: OSNs surface "people you
may know" lists.  :class:`LinkRecommender` turns any fitted matrix predictor
into exactly that serving surface — top-k candidate friends per user, never
recommending existing links or self, with scores exposed for thresholding.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import EvaluationError, UnknownNodeError
from repro.models.base import MatrixPredictor
from repro.networks.social import SocialGraph
from repro.utils.validation import check_integer


class LinkRecommender:
    """Serve "people you may know" lists from a fitted predictor.

    Parameters
    ----------
    model:
        A fitted matrix predictor (SLAMPRED, a baseline, or a loaded
        :class:`~repro.models.persistence.FrozenPredictor`).
    graph:
        The social structure used to exclude already-connected pairs; must
        cover the same users as the model's score matrix.

    Examples
    --------
    >>> from repro import generate_aligned_pair, SlamPredT, TransferTask
    >>> from repro.networks import SocialGraph
    >>> from repro.models.recommender import LinkRecommender
    >>> aligned = generate_aligned_pair(scale=50, random_state=4)
    >>> graph = SocialGraph.from_network(aligned.target)
    >>> model = SlamPredT().fit(TransferTask(aligned.target, graph))
    >>> recommender = LinkRecommender(model, graph)
    >>> len(recommender.recommend(0, k=5)) <= 5
    True
    """

    def __init__(self, model: MatrixPredictor, graph: SocialGraph):
        scores = model.score_matrix  # raises NotFittedError when unfitted
        if scores.shape[0] != graph.n_users:
            raise EvaluationError(
                f"model covers {scores.shape[0]} users but the graph has "
                f"{graph.n_users}"
            )
        self.model = model
        self.graph = graph
        candidates = scores.copy()
        candidates[graph.adjacency > 0] = -np.inf
        np.fill_diagonal(candidates, -np.inf)
        self._candidates = candidates

    def recommend(self, user_index: int, k: int = 10) -> List[Tuple[int, float]]:
        """Top-``k`` recommended users for ``user_index`` with scores.

        Only candidates with finite scores are returned, so a user already
        connected to everyone gets an empty list.
        """
        k = check_integer(k, "k", minimum=1)
        if not 0 <= int(user_index) < self.graph.n_users:
            raise UnknownNodeError(
                f"user index {user_index} out of range "
                f"(0..{self.graph.n_users - 1})"
            )
        row = self._candidates[int(user_index)]
        finite = np.flatnonzero(np.isfinite(row))
        if finite.size == 0:
            return []
        k = min(k, finite.size)
        top = finite[np.argpartition(-row[finite], k - 1)[:k]]
        top = top[np.argsort(-row[top], kind="stable")]
        return [(int(j), float(row[j])) for j in top]

    def recommend_all(self, k: int = 10) -> Dict[int, List[Tuple[int, float]]]:
        """Top-``k`` recommendations for every user."""
        return {
            user: self.recommend(user, k)
            for user in range(self.graph.n_users)
        }

    def recommend_above(
        self, user_index: int, threshold: float
    ) -> List[Tuple[int, float]]:
        """All candidates for ``user_index`` scoring above ``threshold``."""
        row = self._candidates[int(user_index)]
        if not 0 <= int(user_index) < self.graph.n_users:
            raise UnknownNodeError(
                f"user index {user_index} out of range"
            )
        picked = np.flatnonzero(np.isfinite(row) & (row > threshold))
        picked = picked[np.argsort(-row[picked], kind="stable")]
        return [(int(j), float(row[j])) for j in picked]

    def hit_rate(
        self,
        held_out: Sequence[Tuple[int, int]],
        k: int = 10,
    ) -> float:
        """Fraction of held-out links appearing in either endpoint's top-k.

        The serving-side quality metric: if (u, v) was hidden, does v show
        up in u's list or u in v's?
        """
        held_out = list(held_out)
        if not held_out:
            raise EvaluationError("held_out must contain at least one link")
        hits = 0
        cache: Dict[int, set] = {}

        def top_set(user: int) -> set:
            if user not in cache:
                cache[user] = {j for j, _ in self.recommend(user, k)}
            return cache[user]

        for u, v in held_out:
            if v in top_set(u) or u in top_set(v):
                hits += 1
        return hits / len(held_out)
