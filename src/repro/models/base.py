"""Common model interface and the transfer task description.

Every predictor consumes a :class:`TransferTask` — the full Social Link
Transfer setting of Definition 3: the target network with a *training* view
of its social structure (test links masked), plus the aligned source
networks and the (possibly down-sampled) anchor links.  Models that ignore
parts of the task (e.g. SLAMPRED-H ignores attributes and sources) simply
don't read them, which keeps the evaluation harness model-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import AlignmentError, NotFittedError
from repro.networks.aligned import AlignedNetworks, AnchorLinks
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.social import SocialGraph
from repro.utils.rng import RandomState


@dataclass
class TransferTask:
    """One Social Link Transfer problem instance.

    Attributes
    ----------
    target:
        The target heterogeneous network ``G^t`` (attributes only — its link
        structure must be read from ``training_graph``).
    training_graph:
        The target's social structure with the test fold masked out.
    sources:
        The aligned source networks ``G^1 … G^K``.
    anchors:
        Anchor links from the target to each source (already sampled to the
        experiment's anchor ratio).
    random_state:
        Seed models should use for their internal sampling.
    """

    target: HeterogeneousNetwork
    training_graph: SocialGraph
    sources: List[HeterogeneousNetwork] = field(default_factory=list)
    anchors: List[AnchorLinks] = field(default_factory=list)
    random_state: RandomState = None

    def __post_init__(self) -> None:
        if len(self.sources) != len(self.anchors):
            raise AlignmentError(
                f"{len(self.sources)} sources but {len(self.anchors)} "
                "anchor sets"
            )
        if self.training_graph.n_users != self.target.n_users:
            raise AlignmentError(
                f"training graph covers {self.training_graph.n_users} users "
                f"but the target has {self.target.n_users}"
            )

    @property
    def n_sources(self) -> int:
        """Number of aligned source networks."""
        return len(self.sources)

    @classmethod
    def from_aligned(
        cls,
        aligned: AlignedNetworks,
        training_graph: SocialGraph = None,
        random_state: RandomState = None,
    ) -> "TransferTask":
        """Build a task from an aligned bundle (full structure as training)."""
        if training_graph is None:
            training_graph = SocialGraph.from_network(aligned.target)
        return cls(
            target=aligned.target,
            training_graph=training_graph,
            sources=list(aligned.sources),
            anchors=list(aligned.anchors),
            random_state=random_state,
        )


class LinkPredictor(abc.ABC):
    """Abstract link predictor.

    Subclasses implement :meth:`_fit` and :meth:`_score_pairs`; the base
    class enforces the fitted-before-scoring contract.
    """

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._fitted

    @property
    def name(self) -> str:
        """Display name used in result tables (class name by default)."""
        return type(self).__name__

    def fit(self, task: TransferTask) -> "LinkPredictor":
        """Train on a transfer task; returns ``self`` for chaining."""
        self._fit(task)
        self._fitted = True
        return self

    def score_pairs(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Confidence scores for target user pairs (higher = more likely)."""
        if not self._fitted:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before scoring"
            )
        if len(pairs) == 0:
            return np.zeros(0)
        return np.asarray(self._score_pairs(list(pairs)), dtype=float)

    @abc.abstractmethod
    def _fit(self, task: TransferTask) -> None:
        """Subclass hook: train the model."""

    @abc.abstractmethod
    def _score_pairs(self, pairs: List[Tuple[int, int]]) -> np.ndarray:
        """Subclass hook: score the given pairs."""


class MatrixPredictor(LinkPredictor):
    """Base for predictors whose output is a full score matrix.

    Subclasses set ``self._score_matrix`` in :meth:`_fit`; scoring reads the
    matrix entries.
    """

    def __init__(self) -> None:
        super().__init__()
        self._score_matrix: np.ndarray = None

    @property
    def score_matrix(self) -> np.ndarray:
        """The full ``n×n`` score matrix (the paper's predictor ``S``)."""
        if self._score_matrix is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fitted before reading scores"
            )
        return self._score_matrix

    @property
    def n_users(self) -> int:
        """Number of target users the fitted predictor covers.

        Factored predictors override this so consumers (serving, benches)
        can size themselves without materializing a dense score matrix.
        """
        return int(self.score_matrix.shape[0])

    def _score_pairs(self, pairs: List[Tuple[int, int]]) -> np.ndarray:
        rows = np.array([p[0] for p in pairs], dtype=int)
        cols = np.array([p[1] for p in pairs], dtype=int)
        return self._score_matrix[rows, cols]
