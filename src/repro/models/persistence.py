"""Persistence for fitted matrix predictors.

A fitted SLAMPRED model is, operationally, its score matrix plus the
hyper-parameters that produced it.  ``save_predictor`` /
``load_predictor`` round-trip that state through a compressed ``.npz`` so a
trained predictor can be shipped to a serving process that never imports
the training stack.

The archive embeds a sha256 content digest over the score matrix and the
metadata blob; loading recomputes and compares it, so a truncated download
or a bit-flipped artifact fails with a crisp
:class:`~repro.exceptions.SerializationError` instead of silently serving
corrupted scores (or leaking a raw ``zipfile``/``KeyError``).

Loaded predictors come back as :class:`FrozenPredictor` — scoring works,
refitting is deliberately unsupported (retrain from source data instead).

Factored models (``factored=True`` fits, DESIGN.md §13) round-trip through
a distinct format version that stores the O(nk) factors — ``U``, ``σ``,
``Vᵀ`` and the CSR residual arrays — instead of the n×n matrix, with the
same digest discipline over every array.  They come back as
:class:`FrozenFactoredPredictor`, which scores pairs through O(k) dots and
never materializes the dense matrix unless explicitly asked.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import zipfile
from typing import Dict

import numpy as np

from repro.exceptions import ArtifactCorruptError, SerializationError
from repro.models.base import MatrixPredictor, TransferTask

_FORMAT_VERSION = 2
_FACTORED_FORMAT_VERSION = 3  # factored archives: factors, not the matrix
_DIGESTLESS_VERSIONS = (1,)  # legacy archives written before checksums


class FrozenPredictor(MatrixPredictor):
    """A deserialized score-matrix predictor.

    Parameters
    ----------
    score_matrix:
        The fitted ``n×n`` confidence matrix.
    metadata:
        The saved model's name and hyper-parameters (read-only diagnostics).
    """

    def __init__(self, score_matrix: np.ndarray, metadata: Dict = None):
        super().__init__()
        score_matrix = np.asarray(score_matrix, dtype=float)
        if score_matrix.ndim != 2 or score_matrix.shape[0] != score_matrix.shape[1]:
            raise SerializationError(
                f"score matrix must be square, got {score_matrix.shape}"
            )
        self._score_matrix = score_matrix
        self.metadata = dict(metadata or {})
        self._fitted = True

    @property
    def name(self) -> str:
        return self.metadata.get("name", "FrozenPredictor")

    def _fit(self, task: TransferTask) -> None:
        raise SerializationError(
            "FrozenPredictor cannot be refitted; train a fresh model instead"
        )


class FrozenFactoredPredictor(MatrixPredictor):
    """A deserialized factored O(nk) predictor.

    Pair scores are ``max(S_uv, 0)`` with a zero diagonal, computed from
    the factors in O(k) per pair — the same (unnormalized) convention the
    ``factored=True`` training path uses, so a publish → load round trip
    is score-identical.

    Parameters
    ----------
    estimate:
        The fitted :class:`~repro.factored.estimate.FactoredEstimate`.
    metadata:
        The saved model's name and hyper-parameters (read-only diagnostics).
    """

    factored = True
    """Marks the predictor as factored for publish/serving dispatch."""

    def __init__(self, estimate, metadata: Dict = None):
        super().__init__()
        self.estimate = estimate
        self.metadata = dict(metadata or {})
        self._fitted = True

    @property
    def name(self) -> str:
        """The saved model's display name."""
        return self.metadata.get("name", "FrozenFactoredPredictor")

    @property
    def factored_estimate(self):
        """The underlying factored estimate (alias of ``estimate``)."""
        return self.estimate

    @property
    def n_users(self) -> int:
        """Users covered — O(1), no dense materialization."""
        return self.estimate.n_users

    @property
    def score_matrix(self) -> np.ndarray:
        """The dense n×n scores — **materializes** O(n²) memory.

        A parity/debug oracle for small n; serving-scale consumers should
        score through :meth:`score_pairs` or :attr:`estimate` rows.
        """
        dense = self.estimate.to_dense()
        np.maximum(dense, 0.0, out=dense)
        np.fill_diagonal(dense, 0.0)
        return dense

    def _score_pairs(self, pairs) -> np.ndarray:
        rows = np.array([p[0] for p in pairs], dtype=int)
        cols = np.array([p[1] for p in pairs], dtype=int)
        scores = np.maximum(self.estimate.entries(rows, cols), 0.0)
        scores[rows == cols] = 0.0
        return scores

    def _fit(self, task: TransferTask) -> None:
        raise SerializationError(
            "FrozenFactoredPredictor cannot be refitted; train a fresh "
            "model instead"
        )


def content_digest(matrix: np.ndarray, metadata_json: str) -> str:
    """Sha256 hex digest binding a score matrix to its metadata blob.

    Hashes the matrix shape, its float64 bytes, and the serialized metadata,
    so any tampering with either half of the archive changes the digest.
    """
    matrix = np.ascontiguousarray(matrix, dtype=float)
    hasher = hashlib.sha256()
    hasher.update(repr(matrix.shape).encode("ascii"))
    hasher.update(matrix.tobytes())
    hasher.update(metadata_json.encode("utf-8"))
    return hasher.hexdigest()


_DIGEST_CHUNK_BYTES = 1 << 16
"""Hashing window for :func:`factored_content_digest` — small enough that
verifying a memory-mapped artifact never materializes more than one chunk
of factor bytes on the Python heap (the zero-copy reload guarantee)."""


def _hash_array(hasher, array: np.ndarray) -> None:
    """Feed one array's C-order bytes to ``hasher`` in bounded chunks.

    Contiguous arrays (including ``np.load(..., mmap_mode="r")`` memmaps)
    are hashed straight from their buffer — no full-array copy is ever
    made, which is what keeps artifact verification O(chunk) in resident
    memory regardless of factor size.  The byte stream is identical to
    ``np.ascontiguousarray(array).tobytes()``, so digests are layout- and
    version-stable.
    """
    if array.size == 0:
        return  # tobytes() of an empty array is b"": contribute nothing
    if not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array)
    view = memoryview(array.reshape(-1).view(np.uint8))
    step = _DIGEST_CHUNK_BYTES
    for start in range(0, len(view), step):
        hasher.update(view[start : start + step])


def factored_content_digest(arrays: Dict, metadata_json: str) -> str:
    """Sha256 hex digest binding factor arrays to their metadata blob.

    Arrays are hashed in sorted key order — name, shape, contiguous
    float/int bytes — so corrupting any single factor file (or swapping
    two) changes the digest.  Hashing streams each array in bounded
    chunks, so verifying memory-mapped factors stays constant-memory.
    """
    hasher = hashlib.sha256()
    for key in sorted(arrays):
        array = np.asarray(arrays[key])
        hasher.update(key.encode("ascii"))
        hasher.update(repr(array.shape).encode("ascii"))
        _hash_array(hasher, array)
    hasher.update(metadata_json.encode("utf-8"))
    return hasher.hexdigest()


def _factored_arrays(estimate) -> Dict:
    """The npz payload of a factored estimate (all O(nk) arrays)."""
    residual = estimate.residual.tocsr()
    return {
        "factor_u": np.ascontiguousarray(estimate.u, dtype=float),
        "factor_s": np.ascontiguousarray(estimate.s, dtype=float),
        "factor_vt": np.ascontiguousarray(estimate.vt, dtype=float),
        "residual_data": np.ascontiguousarray(residual.data, dtype=float),
        "residual_indices": np.ascontiguousarray(
            residual.indices, dtype=np.int64
        ),
        "residual_indptr": np.ascontiguousarray(
            residual.indptr, dtype=np.int64
        ),
        "n_users": np.array([estimate.n_users], dtype=np.int64),
    }


def _extract_metadata(model: MatrixPredictor) -> Dict:
    """The model name plus every scalar/flat-sequence hyper-parameter.

    Re-saving a :class:`FrozenPredictor` keeps its original metadata, so
    hyper-parameters survive load → publish round-trips.
    """
    metadata = {}
    if isinstance(getattr(model, "metadata", None), dict):
        metadata.update(
            {
                key: value
                for key, value in model.metadata.items()
                if isinstance(value, (int, float, str, bool, list))
                or value is None
            }
        )
    metadata.update({"name": model.name, "class": type(model).__name__})
    for key, value in vars(model).items():
        if key.startswith("_") or key == "metadata":
            continue
        if isinstance(value, (int, float, str, bool)) or value is None:
            metadata[key] = value
        elif isinstance(value, (list, tuple)) and all(
            isinstance(v, (int, float, str, bool)) for v in value
        ):
            metadata[key] = list(value)
    return metadata


def save_predictor(model: MatrixPredictor, path: str) -> None:
    """Write a fitted matrix predictor to ``path`` (.npz).

    Dense predictors serialize the score matrix plus a JSON metadata blob
    containing the model name and its scalar hyper-parameters, and a
    sha256 content digest that :func:`load_predictor` verifies on the way
    back in.  Factored predictors (``model.factored`` truthy) serialize
    the O(nk) factor arrays instead — the dense matrix is never formed.
    """
    if getattr(model, "factored", False):
        estimate = model.factored_estimate  # fitted check before disk I/O
        metadata_json = json.dumps(_extract_metadata(model))
        arrays = _factored_arrays(estimate)
        np.savez_compressed(
            path,
            version=np.array([_FACTORED_FORMAT_VERSION]),
            metadata=np.frombuffer(
                metadata_json.encode("utf-8"), dtype=np.uint8
            ),
            digest=np.frombuffer(
                factored_content_digest(arrays, metadata_json).encode(
                    "ascii"
                ),
                dtype=np.uint8,
            ),
            **arrays,
        )
        return
    matrix = model.score_matrix  # raises NotFittedError when unfitted
    metadata_json = json.dumps(_extract_metadata(model))
    np.savez_compressed(
        path,
        version=np.array([_FORMAT_VERSION]),
        score_matrix=matrix,
        metadata=np.frombuffer(metadata_json.encode("utf-8"), dtype=np.uint8),
        digest=np.frombuffer(
            content_digest(matrix, metadata_json).encode("ascii"), dtype=np.uint8
        ),
    )


def load_predictor(path: str) -> FrozenPredictor:
    """Read a predictor previously written by :func:`save_predictor`.

    Raises
    ------
    SerializationError
        If the file is unreadable or truncated, written with an unsupported
        format version, or its sha256 digest does not match the content
        (tampered or corrupted archive).
    """
    try:
        with np.load(path) as data:
            version = int(data["version"][0])
            supported = (_FORMAT_VERSION, _FACTORED_FORMAT_VERSION)
            if version not in supported and version not in _DIGESTLESS_VERSIONS:
                raise SerializationError(
                    f"unsupported predictor format version {version}"
                )
            metadata_json = bytes(data["metadata"]).decode("utf-8")
            stored_digest = (
                bytes(data["digest"]).decode("ascii")
                if version not in _DIGESTLESS_VERSIONS
                else None
            )
            if version == _FACTORED_FORMAT_VERSION:
                arrays = {
                    key: np.asarray(data[key]) for key in _factored_keys()
                }
                matrix = None
            else:
                matrix = np.asarray(data["score_matrix"])
                arrays = None
    except (
        KeyError,
        ValueError,
        OSError,
        EOFError,
        zipfile.BadZipFile,
        pickle.UnpicklingError,
    ) as exc:
        raise SerializationError(f"cannot load predictor: {exc}") from exc
    if stored_digest is not None:
        actual = (
            factored_content_digest(arrays, metadata_json)
            if arrays is not None
            else content_digest(matrix, metadata_json)
        )
        if actual != stored_digest:
            raise ArtifactCorruptError(
                f"predictor archive {path} failed its integrity check: "
                f"stored sha256 {stored_digest[:12]}… but content hashes to "
                f"{actual[:12]}… (truncated or tampered file)"
            )
    try:
        metadata = json.loads(metadata_json)
    except ValueError as exc:
        raise SerializationError(f"cannot load predictor: {exc}") from exc
    if arrays is not None:
        return FrozenFactoredPredictor(
            _estimate_from_arrays(arrays, path), metadata
        )
    return FrozenPredictor(matrix, metadata)


FACTORED_LAYOUT_MODEL_JSON = "model.json"
"""Header file of the raw-``.npy`` factored layout (format marker,
metadata blob and the content digest binding the factor files)."""

_FACTORED_LAYOUT_FORMAT = "factored-npy"
_FACTORED_LAYOUT_VERSION = 1


def save_factored_layout(model: MatrixPredictor, directory: str) -> Dict:
    """Write a factored predictor as raw ``.npy`` files plus ``model.json``.

    The memory-mappable sibling of the factored ``.npz`` archive: each
    O(nk) array lands in its own *uncompressed* ``<name>.npy`` file (numpy
    only honours ``mmap_mode`` for plain ``.npy``), and ``model.json``
    carries the format marker, the metadata blob and the same
    :func:`factored_content_digest` the archive format embeds — so
    tampering with any factor file is caught even when the enclosing
    manifest's per-file checksums were rewritten to match.

    Returns ``{filename: absolute path}`` for every file written, so the
    caller (the artifact store) can checksum and manifest them.
    """
    estimate = model.factored_estimate  # fitted check before disk I/O
    metadata_json = json.dumps(_extract_metadata(model))
    arrays = _factored_arrays(estimate)
    written = {}
    for key in _factored_keys():
        filename = f"{key}.npy"
        path = os.path.join(directory, filename)
        np.save(path, arrays[key])
        written[filename] = path
    header = {
        "format": _FACTORED_LAYOUT_FORMAT,
        "format_version": _FACTORED_LAYOUT_VERSION,
        "metadata_json": metadata_json,
        "digest": factored_content_digest(arrays, metadata_json),
    }
    header_path = os.path.join(directory, FACTORED_LAYOUT_MODEL_JSON)
    with open(header_path, "w", encoding="utf-8") as handle:
        json.dump(header, handle, indent=2, sort_keys=True)
    written[FACTORED_LAYOUT_MODEL_JSON] = header_path
    return written


def load_factored_layout(
    directory: str, mmap_mode: "str | None" = "r"
) -> FrozenFactoredPredictor:
    """Read a predictor written by :func:`save_factored_layout`.

    With the default ``mmap_mode="r"`` the factor arrays come back as
    read-only memory maps: loading touches O(1) heap regardless of n·k,
    and the kernel pages factor bytes in on first access — this is what
    makes hot-swap ``reload()`` near-free.  Pass ``mmap_mode=None`` to
    materialize ordinary writable arrays instead (the opt-out for callers
    that mutate factors in place).

    Integrity holds on both paths: the ``model.json`` digest is recomputed
    by streaming over the (possibly mapped) arrays in bounded chunks and
    compared before anything is deserialized into an estimate.

    Raises
    ------
    SerializationError
        Unreadable/missing files or an unsupported layout version.
    ArtifactCorruptError
        A factor file whose bytes no longer match the stored digest.
    """
    header_path = os.path.join(directory, FACTORED_LAYOUT_MODEL_JSON)
    try:
        with open(header_path, "r", encoding="utf-8") as handle:
            header = json.load(handle)
    except OSError as exc:
        raise SerializationError(
            f"cannot load factored layout {directory}: {exc}"
        ) from exc
    except ValueError as exc:
        raise SerializationError(
            f"corrupt factored layout header {header_path}: {exc}"
        ) from exc
    if (
        header.get("format") != _FACTORED_LAYOUT_FORMAT
        or header.get("format_version") != _FACTORED_LAYOUT_VERSION
    ):
        raise SerializationError(
            f"unsupported factored layout {header.get('format')!r} "
            f"v{header.get('format_version')!r} in {header_path}"
        )
    metadata_json = header.get("metadata_json", "{}")
    arrays = {}
    try:
        for key in _factored_keys():
            arrays[key] = np.load(
                os.path.join(directory, f"{key}.npy"),
                mmap_mode=mmap_mode,
                allow_pickle=False,
            )
    except (OSError, ValueError, EOFError) as exc:
        raise SerializationError(
            f"cannot load factored layout {directory}: {exc}"
        ) from exc
    actual = factored_content_digest(arrays, metadata_json)
    stored = header.get("digest")
    if actual != stored:
        raise ArtifactCorruptError(
            f"factored layout {directory} failed its integrity check: "
            f"stored sha256 {str(stored)[:12]}… but content hashes to "
            f"{actual[:12]}… (truncated or tampered factor file)"
        )
    try:
        metadata = json.loads(metadata_json)
    except ValueError as exc:
        raise SerializationError(
            f"cannot load factored layout {directory}: {exc}"
        ) from exc
    return FrozenFactoredPredictor(
        _estimate_from_arrays(arrays, directory), metadata
    )


def _factored_keys():
    """Array names of the factored archive payload, in a fixed order."""
    return (
        "factor_u",
        "factor_s",
        "factor_vt",
        "residual_data",
        "residual_indices",
        "residual_indptr",
        "n_users",
    )


def _estimate_from_arrays(arrays: Dict, path: str):
    """Rebuild a :class:`FactoredEstimate` from validated archive arrays."""
    from scipy import sparse

    from repro.factored.estimate import FactoredEstimate

    n = int(arrays["n_users"][0])
    try:
        residual = sparse.csr_matrix(
            (
                arrays["residual_data"],
                arrays["residual_indices"],
                arrays["residual_indptr"],
            ),
            shape=(n, n),
        )
        return FactoredEstimate(
            arrays["factor_u"], arrays["factor_s"], arrays["factor_vt"], residual
        )
    except ValueError as exc:
        raise SerializationError(
            f"cannot load predictor {path}: inconsistent factors ({exc})"
        ) from exc
