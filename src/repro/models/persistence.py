"""Persistence for fitted matrix predictors.

A fitted SLAMPRED model is, operationally, its score matrix plus the
hyper-parameters that produced it.  ``save_predictor`` /
``load_predictor`` round-trip that state through a compressed ``.npz`` so a
trained predictor can be shipped to a serving process that never imports
the training stack.

The archive embeds a sha256 content digest over the score matrix and the
metadata blob; loading recomputes and compares it, so a truncated download
or a bit-flipped artifact fails with a crisp
:class:`~repro.exceptions.SerializationError` instead of silently serving
corrupted scores (or leaking a raw ``zipfile``/``KeyError``).

Loaded predictors come back as :class:`FrozenPredictor` — scoring works,
refitting is deliberately unsupported (retrain from source data instead).
"""

from __future__ import annotations

import hashlib
import json
import pickle
import zipfile
from typing import Dict

import numpy as np

from repro.exceptions import ArtifactCorruptError, SerializationError
from repro.models.base import MatrixPredictor, TransferTask

_FORMAT_VERSION = 2
_DIGESTLESS_VERSIONS = (1,)  # legacy archives written before checksums


class FrozenPredictor(MatrixPredictor):
    """A deserialized score-matrix predictor.

    Parameters
    ----------
    score_matrix:
        The fitted ``n×n`` confidence matrix.
    metadata:
        The saved model's name and hyper-parameters (read-only diagnostics).
    """

    def __init__(self, score_matrix: np.ndarray, metadata: Dict = None):
        super().__init__()
        score_matrix = np.asarray(score_matrix, dtype=float)
        if score_matrix.ndim != 2 or score_matrix.shape[0] != score_matrix.shape[1]:
            raise SerializationError(
                f"score matrix must be square, got {score_matrix.shape}"
            )
        self._score_matrix = score_matrix
        self.metadata = dict(metadata or {})
        self._fitted = True

    @property
    def name(self) -> str:
        return self.metadata.get("name", "FrozenPredictor")

    def _fit(self, task: TransferTask) -> None:
        raise SerializationError(
            "FrozenPredictor cannot be refitted; train a fresh model instead"
        )


def content_digest(matrix: np.ndarray, metadata_json: str) -> str:
    """Sha256 hex digest binding a score matrix to its metadata blob.

    Hashes the matrix shape, its float64 bytes, and the serialized metadata,
    so any tampering with either half of the archive changes the digest.
    """
    matrix = np.ascontiguousarray(matrix, dtype=float)
    hasher = hashlib.sha256()
    hasher.update(repr(matrix.shape).encode("ascii"))
    hasher.update(matrix.tobytes())
    hasher.update(metadata_json.encode("utf-8"))
    return hasher.hexdigest()


def _extract_metadata(model: MatrixPredictor) -> Dict:
    """The model name plus every scalar/flat-sequence hyper-parameter.

    Re-saving a :class:`FrozenPredictor` keeps its original metadata, so
    hyper-parameters survive load → publish round-trips.
    """
    metadata = {}
    if isinstance(getattr(model, "metadata", None), dict):
        metadata.update(
            {
                key: value
                for key, value in model.metadata.items()
                if isinstance(value, (int, float, str, bool, list))
                or value is None
            }
        )
    metadata.update({"name": model.name, "class": type(model).__name__})
    for key, value in vars(model).items():
        if key.startswith("_") or key == "metadata":
            continue
        if isinstance(value, (int, float, str, bool)) or value is None:
            metadata[key] = value
        elif isinstance(value, (list, tuple)) and all(
            isinstance(v, (int, float, str, bool)) for v in value
        ):
            metadata[key] = list(value)
    return metadata


def save_predictor(model: MatrixPredictor, path: str) -> None:
    """Write a fitted matrix predictor to ``path`` (.npz).

    Serializes the score matrix plus a JSON metadata blob containing the
    model name and its scalar hyper-parameters, and a sha256 content digest
    that :func:`load_predictor` verifies on the way back in.
    """
    matrix = model.score_matrix  # raises NotFittedError when unfitted
    metadata_json = json.dumps(_extract_metadata(model))
    np.savez_compressed(
        path,
        version=np.array([_FORMAT_VERSION]),
        score_matrix=matrix,
        metadata=np.frombuffer(metadata_json.encode("utf-8"), dtype=np.uint8),
        digest=np.frombuffer(
            content_digest(matrix, metadata_json).encode("ascii"), dtype=np.uint8
        ),
    )


def load_predictor(path: str) -> FrozenPredictor:
    """Read a predictor previously written by :func:`save_predictor`.

    Raises
    ------
    SerializationError
        If the file is unreadable or truncated, written with an unsupported
        format version, or its sha256 digest does not match the content
        (tampered or corrupted archive).
    """
    try:
        with np.load(path) as data:
            version = int(data["version"][0])
            if version != _FORMAT_VERSION and version not in _DIGESTLESS_VERSIONS:
                raise SerializationError(
                    f"unsupported predictor format version {version}"
                )
            matrix = np.asarray(data["score_matrix"])
            metadata_json = bytes(data["metadata"]).decode("utf-8")
            stored_digest = (
                bytes(data["digest"]).decode("ascii")
                if version not in _DIGESTLESS_VERSIONS
                else None
            )
    except (
        KeyError,
        ValueError,
        OSError,
        EOFError,
        zipfile.BadZipFile,
        pickle.UnpicklingError,
    ) as exc:
        raise SerializationError(f"cannot load predictor: {exc}") from exc
    if stored_digest is not None:
        actual = content_digest(matrix, metadata_json)
        if actual != stored_digest:
            raise ArtifactCorruptError(
                f"predictor archive {path} failed its integrity check: "
                f"stored sha256 {stored_digest[:12]}… but content hashes to "
                f"{actual[:12]}… (truncated or tampered file)"
            )
    try:
        metadata = json.loads(metadata_json)
    except ValueError as exc:
        raise SerializationError(f"cannot load predictor: {exc}") from exc
    return FrozenPredictor(matrix, metadata)
