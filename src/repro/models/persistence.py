"""Persistence for fitted matrix predictors.

A fitted SLAMPRED model is, operationally, its score matrix plus the
hyper-parameters that produced it.  ``save_predictor`` /
``load_predictor`` round-trip that state through a compressed ``.npz`` so a
trained predictor can be shipped to a serving process that never imports
the training stack.

Loaded predictors come back as :class:`FrozenPredictor` — scoring works,
refitting is deliberately unsupported (retrain from source data instead).
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from repro.exceptions import SerializationError
from repro.models.base import MatrixPredictor, TransferTask

_FORMAT_VERSION = 1


class FrozenPredictor(MatrixPredictor):
    """A deserialized score-matrix predictor.

    Parameters
    ----------
    score_matrix:
        The fitted ``n×n`` confidence matrix.
    metadata:
        The saved model's name and hyper-parameters (read-only diagnostics).
    """

    def __init__(self, score_matrix: np.ndarray, metadata: Dict = None):
        super().__init__()
        score_matrix = np.asarray(score_matrix, dtype=float)
        if score_matrix.ndim != 2 or score_matrix.shape[0] != score_matrix.shape[1]:
            raise SerializationError(
                f"score matrix must be square, got {score_matrix.shape}"
            )
        self._score_matrix = score_matrix
        self.metadata = dict(metadata or {})
        self._fitted = True

    @property
    def name(self) -> str:
        return self.metadata.get("name", "FrozenPredictor")

    def _fit(self, task: TransferTask) -> None:
        raise SerializationError(
            "FrozenPredictor cannot be refitted; train a fresh model instead"
        )


def save_predictor(model: MatrixPredictor, path: str) -> None:
    """Write a fitted matrix predictor to ``path`` (.npz).

    Serializes the score matrix plus a JSON metadata blob containing the
    model name and its scalar hyper-parameters.
    """
    matrix = model.score_matrix  # raises NotFittedError when unfitted
    metadata = {"name": model.name, "class": type(model).__name__}
    for key, value in vars(model).items():
        if key.startswith("_"):
            continue
        if isinstance(value, (int, float, str, bool)) or value is None:
            metadata[key] = value
        elif isinstance(value, (list, tuple)) and all(
            isinstance(v, (int, float, str, bool)) for v in value
        ):
            metadata[key] = list(value)
    np.savez_compressed(
        path,
        version=np.array([_FORMAT_VERSION]),
        score_matrix=matrix,
        metadata=np.frombuffer(
            json.dumps(metadata).encode("utf-8"), dtype=np.uint8
        ),
    )


def load_predictor(path: str) -> FrozenPredictor:
    """Read a predictor previously written by :func:`save_predictor`."""
    try:
        with np.load(path) as data:
            version = int(data["version"][0])
            if version != _FORMAT_VERSION:
                raise SerializationError(
                    f"unsupported predictor format version {version}"
                )
            matrix = data["score_matrix"]
            metadata = json.loads(bytes(data["metadata"]).decode("utf-8"))
    except (KeyError, ValueError, OSError) as exc:
        raise SerializationError(f"cannot load predictor: {exc}") from exc
    return FrozenPredictor(matrix, metadata)
