"""SCAN — supervised classification based link prediction (Zhang et al., ICDM'13).

Existing links are positive instances and (sampled) non-links are negative
instances; a classifier over merged target + source intimacy features scores
candidate pairs.  No domain adaptation is applied to the source features —
that is exactly the weakness the paper's Table II exposes as the anchor
ratio grows.

Variants (matching the paper):

* ``ScanPredictor()`` — SCAN, target + source features;
* ``ScanPredictor.target_only()`` — SCAN-T;
* ``ScanPredictor.source_only()`` — SCAN-S.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.features.intimacy import IntimacyFeatureExtractor
from repro.models._pair_features import (
    extract_task_tensors,
    merged_pair_features,
    sample_training_pairs,
)
from repro.models.base import LinkPredictor, TransferTask
from repro.models.classifiers import LogisticRegression
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive


class ScanPredictor(LinkPredictor):
    """Supervised classification link predictor.

    Parameters
    ----------
    use_target:
        Include the target network's feature block.
    use_sources:
        Include the source networks' feature blocks (anchor-mapped).
    negative_ratio:
        Sampled non-links per existing link in the training set.
    l2:
        Classifier regularization strength.
    extractor:
        Feature extractor; defaults to the full intimacy feature set.
    """

    def __init__(
        self,
        use_target: bool = True,
        use_sources: bool = True,
        negative_ratio: float = 5.0,
        l2: float = 1.0,
        extractor: IntimacyFeatureExtractor = None,
        display_name: str = None,
    ):
        super().__init__()
        if not use_target and not use_sources:
            raise ConfigurationError(
                "at least one of use_target / use_sources must be set"
            )
        self.use_target = bool(use_target)
        self.use_sources = bool(use_sources)
        self.negative_ratio = check_positive(negative_ratio, "negative_ratio")
        self.extractor = extractor or IntimacyFeatureExtractor()
        self.classifier = LogisticRegression(l2=l2)
        self._display_name = display_name or self._default_name()
        self._target_tensor = None
        self._source_tensors = None
        self._anchors = None

    def _default_name(self) -> str:
        if self.use_target and self.use_sources:
            return "SCAN"
        return "SCAN-T" if self.use_target else "SCAN-S"

    @property
    def name(self) -> str:
        return self._display_name

    @classmethod
    def target_only(cls, **kwargs) -> "ScanPredictor":
        """The SCAN-T variant (target features only)."""
        return cls(use_target=True, use_sources=False, **kwargs)

    @classmethod
    def source_only(cls, **kwargs) -> "ScanPredictor":
        """The SCAN-S variant (source features only)."""
        return cls(use_target=False, use_sources=True, **kwargs)

    # ------------------------------------------------------------------
    def _fit(self, task: TransferTask) -> None:
        rng = ensure_rng(task.random_state)
        target_tensor, source_tensors = extract_task_tensors(task, self.extractor)
        self._target_tensor = target_tensor if self.use_target else None
        self._source_tensors = source_tensors if self.use_sources else []
        self._anchors = list(task.anchors) if self.use_sources else []
        pairs, labels = sample_training_pairs(task, self.negative_ratio, rng)
        features = self._features(pairs)
        self.classifier.fit(features, labels)

    def _score_pairs(self, pairs: List[Tuple[int, int]]) -> np.ndarray:
        return self.classifier.predict_proba(self._features(pairs))

    def _features(self, pairs: List[Tuple[int, int]]) -> np.ndarray:
        return merged_pair_features(
            pairs,
            target_tensor=self._target_tensor,
            source_tensors=self._source_tensors,
            anchors=self._anchors,
        )
