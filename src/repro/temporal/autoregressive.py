"""Autoregressive sparse + low-rank link prediction.

Following the formulation of Richard et al. (JMLR 2014): the feature map is
an exponentially-decayed history average

    Φ = Σ_{k=0..K−1} w_k · A_{T−k},   w_k ∝ decay^k,  Σ w_k = 1,

and the predictor for the next snapshot solves

    min_S ‖S − Φ‖_F² + γ‖S‖₁ + τ‖S‖*,   S ≥ 0

so the estimate inherits persistence from the history while the trace norm
fills in community-consistent *new* links and the ℓ1 term suppresses
isolated noise.  Scoring excludes currently-present links when ranking
*new-link* candidates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import ForwardBackwardSolver
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx
from repro.utils.matrices import is_square, zero_diagonal
from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_positive,
)


class AutoregressiveLinkPredictor:
    """Predict the next snapshot of an evolving graph.

    Parameters
    ----------
    window:
        History length K (most recent snapshots used).
    decay:
        Exponential decay per step back in time; 1.0 weights the window
        uniformly, small values emphasize the most recent snapshot.
    gamma, tau:
        Sparsity / low-rank weights of the estimator.
    step_size, max_iterations, tolerance:
        Forward-backward solver settings.

    Examples
    --------
    >>> from repro.temporal import evolve_snapshots, AutoregressiveLinkPredictor
    >>> sequence = evolve_snapshots(n_nodes=40, n_steps=5, random_state=0)
    >>> model = AutoregressiveLinkPredictor().fit(sequence.snapshots[:-1])
    >>> model.scores.shape
    (40, 40)
    """

    def __init__(
        self,
        window: int = 3,
        decay: float = 0.6,
        gamma: float = 0.02,
        tau: float = 2.0,
        step_size: float = 0.05,
        max_iterations: int = 400,
        tolerance: float = 1e-5,
    ):
        self.window = check_integer(window, "window", minimum=1)
        self.decay = check_in_range(decay, "decay", 0.0, 1.0, inclusive=False) \
            if decay != 1.0 else 1.0
        self.gamma = check_non_negative(gamma, "gamma")
        self.tau = check_non_negative(tau, "tau")
        self.step_size = check_positive(step_size, "step_size")
        self.max_iterations = check_integer(
            max_iterations, "max_iterations", minimum=1
        )
        self.tolerance = check_positive(tolerance, "tolerance")
        self._scores: Optional[np.ndarray] = None
        self._last_snapshot: Optional[np.ndarray] = None

    @property
    def scores(self) -> np.ndarray:
        """The estimated next-snapshot score matrix."""
        if self._scores is None:
            raise NotFittedError(
                "AutoregressiveLinkPredictor has not been fitted"
            )
        return self._scores

    def history_features(self, snapshots: Sequence[np.ndarray]) -> np.ndarray:
        """The decayed history average Φ over the trailing window."""
        snapshots = [np.asarray(a, dtype=float) for a in snapshots]
        if not snapshots:
            raise ConfigurationError("at least one snapshot is required")
        shape = snapshots[0].shape
        for matrix in snapshots:
            if not is_square(matrix) or matrix.shape != shape:
                raise ConfigurationError(
                    "snapshots must all be square matrices of one shape"
                )
        window = snapshots[-self.window:]
        weights = np.array(
            [self.decay ** k for k in range(len(window) - 1, -1, -1)]
        )
        weights = weights / weights.sum()
        features = np.zeros(shape)
        for weight, matrix in zip(weights, window):
            features += weight * matrix
        return features

    def fit(self, snapshots: Sequence[np.ndarray]) -> "AutoregressiveLinkPredictor":
        """Fit on the history ``A_1 … A_T`` (predicts ``A_{T+1}``)."""
        features = self.history_features(snapshots)
        solver = ForwardBackwardSolver(
            step_size=self.step_size,
            criterion=ConvergenceCriterion(
                tolerance=self.tolerance, max_iterations=self.max_iterations
            ),
        )
        solution = solver.solve(
            features,
            [SquaredFrobeniusLoss(features)],
            [
                TraceNormProx(self.tau),
                L1Prox(self.gamma),
                BoxProjection(0.0, None),
            ],
        )
        self._scores = zero_diagonal(solution)
        self._last_snapshot = np.asarray(snapshots[-1], dtype=float)
        return self

    def score_pairs(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Scores for specific pairs."""
        scores = self.scores
        if not pairs:
            return np.zeros(0)
        rows = np.array([p[0] for p in pairs])
        cols = np.array([p[1] for p in pairs])
        return scores[rows, cols]

    def predict_new_links(self, top_k: int = 10) -> List[Tuple[int, int, float]]:
        """The ``top_k`` highest-scored pairs absent from the last snapshot."""
        scores = self.scores
        if self._last_snapshot is None:
            raise NotFittedError(
                "AutoregressiveLinkPredictor has not been fitted"
            )
        candidates = np.triu(
            (self._last_snapshot == 0).astype(float), k=1
        ) * scores
        rows, cols = np.nonzero(np.triu(np.ones_like(scores), k=1))
        order = np.argsort(-candidates[rows, cols], kind="stable")[:top_k]
        return [
            (int(rows[i]), int(cols[i]), float(candidates[rows[i], cols[i]]))
            for i in order
        ]
