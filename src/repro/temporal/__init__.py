"""Link prediction in time-evolving graphs (extension).

Richard, Gaïffas & Vayatis (JMLR 2014) — cited by the paper as [14] —
formulate link prediction in *time-evolving* graphs as sparse and low-rank
matrix estimation over autoregressive features.  This package implements
that setting on the same proximal stack:

* :mod:`repro.temporal.snapshots` — generate an evolving sequence of graph
  snapshots (links persist, churn and grow over planted communities);
* :mod:`repro.temporal.autoregressive` — predict the next snapshot from an
  exponentially-decayed history via the
  ``min ‖S − Φ(history)‖² + γ‖S‖₁ + τ‖S‖*`` estimator.
"""

from repro.temporal.snapshots import evolve_snapshots, SnapshotSequence
from repro.temporal.autoregressive import AutoregressiveLinkPredictor

__all__ = [
    "evolve_snapshots",
    "SnapshotSequence",
    "AutoregressiveLinkPredictor",
]
