"""Evolving graph snapshot sequences.

A Markovian link process over a fixed planted-community population:

* an existing link survives to the next snapshot with probability
  ``persistence``;
* an absent pair forms a link with its planted-partition birth rate
  (scaled so the expected density stays stationary at the planted level).

The resulting sequences have the two properties autoregressive link
prediction exploits: strong temporal persistence and community-structured
(low-rank) innovation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import ConfigurationError
from repro.synth.communities import assign_communities
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_integer, check_probability


@dataclass
class SnapshotSequence:
    """A sequence of adjacency snapshots over a fixed node set.

    Attributes
    ----------
    snapshots:
        Adjacency matrices ``A_1 … A_T`` (binary, symmetric, zero diag).
    communities:
        The planted community label per node.
    """

    snapshots: List[np.ndarray]
    communities: np.ndarray

    @property
    def n_steps(self) -> int:
        """Number of snapshots T."""
        return len(self.snapshots)

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return self.snapshots[0].shape[0] if self.snapshots else 0

    def new_links(self, step: int) -> List[tuple]:
        """Canonical pairs that are links at ``step`` but not at ``step−1``."""
        if not 1 <= step < self.n_steps:
            raise ConfigurationError(
                f"step must be in [1, {self.n_steps - 1}], got {step}"
            )
        fresh = (self.snapshots[step] > 0) & (self.snapshots[step - 1] == 0)
        rows, cols = np.nonzero(np.triu(fresh, k=1))
        return list(zip(rows.tolist(), cols.tolist()))


def evolve_snapshots(
    n_nodes: int = 80,
    n_steps: int = 6,
    n_communities: int = 4,
    p_in: float = 0.25,
    p_out: float = 0.01,
    persistence: float = 0.9,
    random_state: RandomState = None,
) -> SnapshotSequence:
    """Generate a snapshot sequence with stationary planted density.

    Parameters
    ----------
    n_nodes, n_communities:
        Population and its planted partition.
    p_in, p_out:
        Stationary link probabilities within / across communities.
    persistence:
        Per-step survival probability of an existing link.  Birth rates
        are derived so the per-category density is stationary:
        ``birth = p · (1 − persistence) / (1 − p)``.
    """
    n_nodes = check_integer(n_nodes, "n_nodes", minimum=2)
    n_steps = check_integer(n_steps, "n_steps", minimum=1)
    check_integer(n_communities, "n_communities", minimum=1)
    p_in = check_probability(p_in, "p_in")
    p_out = check_probability(p_out, "p_out")
    persistence = check_probability(persistence, "persistence")
    if p_in >= 1.0 or p_out >= 1.0:
        raise ConfigurationError("p_in and p_out must be < 1 for stationarity")
    rng = ensure_rng(random_state)
    communities = assign_communities(n_nodes, n_communities, rng)
    rows, cols = np.triu_indices(n_nodes, k=1)
    same = communities[rows] == communities[cols]
    stationary = np.where(same, p_in, p_out)
    birth = stationary * (1.0 - persistence) / (1.0 - stationary)

    def to_matrix(flags: np.ndarray) -> np.ndarray:
        matrix = np.zeros((n_nodes, n_nodes))  # dense-ok: synthetic generator
        matrix[rows[flags], cols[flags]] = 1.0
        matrix[cols[flags], rows[flags]] = 1.0
        return matrix

    current = rng.random(rows.shape[0]) < stationary
    snapshots = [to_matrix(current)]
    for _ in range(n_steps - 1):
        survive = current & (rng.random(rows.shape[0]) < persistence)
        born = ~current & (rng.random(rows.shape[0]) < birth)
        current = survive | born
        snapshots.append(to_matrix(current))
    return SnapshotSequence(snapshots=snapshots, communities=communities)
