"""SLAMPRED — link prediction across aligned networks (ICDE 2017 reproduction).

A complete implementation of "Link Prediction across Aligned Networks with
Sparse and Low Rank Matrix Estimation" (Zhang et al., ICDE 2017): the
SLAMPRED sparse/low-rank matrix-estimation model with proximal-operator
CCCP optimization, manifold-alignment domain adaptation, every baseline the
paper compares against, a synthetic aligned-heterogeneous-network substrate,
and a harness regenerating each table and figure of the evaluation.

Quickstart::

    from repro import generate_aligned_pair, SlamPred, TransferTask

    aligned = generate_aligned_pair(scale=120, random_state=7)
    task = TransferTask.from_aligned(aligned, random_state=7)
    model = SlamPred().fit(task)
    scores = model.score_matrix          # n x n link confidence matrix

See README.md and DESIGN.md for the architecture, EXPERIMENTS.md for the
paper-vs-measured comparison.
"""

from repro.exceptions import (
    ReproError,
    ConfigurationError,
    NetworkError,
    AlignmentError,
    FeatureError,
    OptimizationError,
    NotFittedError,
    EvaluationError,
    SerializationError,
)
from repro.networks import (
    HeterogeneousNetwork,
    SocialGraph,
    AnchorLinks,
    AlignedNetworks,
)
from repro.synth import (
    WorldConfig,
    NetworkConfig,
    AttributeConfig,
    AlignedNetworkGenerator,
    generate_aligned_pair,
)
from repro.features import FeatureTensor, IntimacyFeatureExtractor
from repro.adaptation import DomainAdapter
from repro.models import (
    LinkPredictor,
    TransferTask,
    SlamPred,
    SlamPredT,
    SlamPredH,
    ScanPredictor,
    PLPredictor,
    CommonNeighbors,
    JaccardCoefficient,
    PreferentialAttachment,
    AdamicAdar,
    ResourceAllocation,
    KatzIndex,
    LogisticRegression,
)
from repro.evaluation import (
    auc_score,
    precision_at_k,
    map_at_k,
    ndcg_at_k,
    k_fold_link_splits,
    cross_validate,
    run_anchor_sweep,
    roc_curve,
    precision_recall_curve,
)
from repro.alignment import AnchorPredictor, UserProfileBuilder
from repro.factored import FactoredEstimate
from repro.models import (
    save_predictor,
    load_predictor,
    FrozenPredictor,
    FrozenFactoredPredictor,
    LinkRecommender,
)
from repro.evaluation import grid_search
from repro.observability import (
    Tracer,
    NullTracer,
    RunReport,
    build_run_report,
    default_report_path,
)
from repro.serving import (
    ArtifactStore,
    LinkPredictionService,
    MicroBatcher,
    RankingCache,
)
from repro.sharding import (
    ShardedArtifactStore,
    ShardedLinkPredictionService,
    ShardedSlamPred,
    ShardPlan,
    plan_shards,
)
from repro.applications import GraphDenoiser, SparseLowRankCovariance
from repro.temporal import (
    AutoregressiveLinkPredictor,
    SnapshotSequence,
    evolve_snapshots,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "NetworkError",
    "AlignmentError",
    "FeatureError",
    "OptimizationError",
    "NotFittedError",
    "EvaluationError",
    "SerializationError",
    "HeterogeneousNetwork",
    "SocialGraph",
    "AnchorLinks",
    "AlignedNetworks",
    "WorldConfig",
    "NetworkConfig",
    "AttributeConfig",
    "AlignedNetworkGenerator",
    "generate_aligned_pair",
    "FeatureTensor",
    "IntimacyFeatureExtractor",
    "DomainAdapter",
    "LinkPredictor",
    "TransferTask",
    "SlamPred",
    "SlamPredT",
    "SlamPredH",
    "ScanPredictor",
    "PLPredictor",
    "CommonNeighbors",
    "JaccardCoefficient",
    "PreferentialAttachment",
    "AdamicAdar",
    "ResourceAllocation",
    "KatzIndex",
    "LogisticRegression",
    "auc_score",
    "precision_at_k",
    "map_at_k",
    "ndcg_at_k",
    "k_fold_link_splits",
    "cross_validate",
    "run_anchor_sweep",
    "roc_curve",
    "precision_recall_curve",
    "AnchorPredictor",
    "UserProfileBuilder",
    "save_predictor",
    "load_predictor",
    "FrozenPredictor",
    "FrozenFactoredPredictor",
    "FactoredEstimate",
    "LinkRecommender",
    "grid_search",
    "Tracer",
    "NullTracer",
    "RunReport",
    "build_run_report",
    "default_report_path",
    "ArtifactStore",
    "LinkPredictionService",
    "MicroBatcher",
    "RankingCache",
    "ShardPlan",
    "ShardedArtifactStore",
    "ShardedLinkPredictionService",
    "ShardedSlamPred",
    "plan_shards",
    "GraphDenoiser",
    "SparseLowRankCovariance",
    "AutoregressiveLinkPredictor",
    "SnapshotSequence",
    "evolve_snapshots",
    "__version__",
]
