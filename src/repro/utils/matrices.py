"""Dense-matrix helpers shared across the library.

The paper's algorithms operate on square user-by-user matrices: adjacency
matrices ``A``, predictor matrices ``S`` and per-feature intimacy slices.
These helpers centralize the small amount of linear-algebra plumbing
(symmetrization, norms, pair indexing) so model code stays close to the
paper's notation.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def is_square(matrix: np.ndarray) -> bool:
    """Return ``True`` when ``matrix`` is 2-D with equal dimensions."""
    return matrix.ndim == 2 and matrix.shape[0] == matrix.shape[1]


def is_symmetric(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """Return ``True`` when ``matrix`` equals its transpose within ``atol``."""
    if not is_square(matrix):
        return False
    return bool(np.allclose(matrix, matrix.T, atol=atol))


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(M + Mᵀ) / 2`` of a square matrix."""
    if not is_square(matrix):
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    return (matrix + matrix.T) / 2.0


def zero_diagonal(matrix: np.ndarray) -> np.ndarray:
    """Return a copy of ``matrix`` with its diagonal set to zero.

    Social adjacency matrices have no self-links, so predictors zero the
    diagonal before scoring.
    """
    if not is_square(matrix):
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    out = matrix.copy()
    np.fill_diagonal(out, 0.0)
    return out


def clip_unit_interval(matrix: np.ndarray) -> np.ndarray:
    """Project entries onto ``[0, 1]``.

    This is the projection onto the admissible set ``S`` used by the paper:
    confidence scores for social links live in the unit interval.
    """
    return np.clip(matrix, 0.0, 1.0)


def frobenius_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius norm of ``a − b``."""
    return float(np.linalg.norm(a - b, ord="fro"))


def l1_norm(matrix: np.ndarray) -> float:
    """Entry-wise ℓ1 norm ``Σ |M_ij|`` (the paper's ‖·‖₁)."""
    return float(np.abs(matrix).sum())


def trace_norm(matrix: np.ndarray) -> float:
    """Trace (nuclear) norm: sum of singular values (the paper's ‖·‖*)."""
    return float(np.linalg.svd(matrix, compute_uv=False).sum())


def rank_tolerance(matrix: np.ndarray) -> float:
    """Default numerical tolerance used when counting non-zero singular values."""
    singular = np.linalg.svd(matrix, compute_uv=False)
    if singular.size == 0:
        return 0.0
    return float(singular.max() * max(matrix.shape) * np.finfo(float).eps)


def effective_rank(matrix: np.ndarray, tol: float = None) -> int:
    """Number of singular values above ``tol`` (numerical rank)."""
    singular = np.linalg.svd(matrix, compute_uv=False)
    if tol is None:
        tol = rank_tolerance(matrix)
    return int((singular > tol).sum())


def density(matrix: np.ndarray, atol: float = 0.0) -> float:
    """Fraction of entries with magnitude strictly greater than ``atol``."""
    if matrix.size == 0:
        return 0.0
    return float((np.abs(matrix) > atol).sum() / matrix.size)


def upper_triangle_pairs(n: int) -> List[Tuple[int, int]]:
    """All unordered index pairs ``(i, j)`` with ``i < j`` for an n-node graph."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rows, cols = np.triu_indices(n, k=1)
    return list(zip(rows.tolist(), cols.tolist()))


def pairs_to_matrix(
    pairs: Iterable[Tuple[int, int]], n: int, values: Sequence[float] = None
) -> np.ndarray:
    """Build a symmetric n×n matrix from unordered pairs.

    Parameters
    ----------
    pairs:
        Iterable of ``(i, j)`` index pairs.
    n:
        Matrix dimension.
    values:
        Optional per-pair values; defaults to 1.0 for every pair.
    """
    matrix = np.zeros((n, n))  # dense-ok: dense-path constructor
    pair_list = list(pairs)
    if values is None:
        values = [1.0] * len(pair_list)
    if len(values) != len(pair_list):
        raise ValueError(
            f"values has length {len(values)} but there are {len(pair_list)} pairs"
        )
    for (i, j), value in zip(pair_list, values):
        if not (0 <= i < n and 0 <= j < n):
            raise IndexError(f"pair ({i}, {j}) out of range for n={n}")
        matrix[i, j] = value
        matrix[j, i] = value
    return matrix


def matrix_to_pairs(
    matrix: np.ndarray, atol: float = 0.0
) -> List[Tuple[int, int, float]]:
    """Extract upper-triangle entries with magnitude > ``atol`` as (i, j, value)."""
    if not is_square(matrix):
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    n = matrix.shape[0]
    rows, cols = np.triu_indices(n, k=1)
    mask = np.abs(matrix[rows, cols]) > atol
    return [
        (int(i), int(j), float(matrix[i, j]))
        for i, j in zip(rows[mask], cols[mask])
    ]
