"""Shared utilities: seeded randomness, matrix helpers, validation."""

from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.matrices import (
    is_square,
    is_symmetric,
    symmetrize,
    zero_diagonal,
    clip_unit_interval,
    frobenius_distance,
    l1_norm,
    trace_norm,
    rank_tolerance,
    effective_rank,
    density,
    upper_triangle_pairs,
    pairs_to_matrix,
    matrix_to_pairs,
)
from repro.utils.validation import (
    check_probability,
    check_positive,
    check_non_negative,
    check_in_range,
    check_integer,
    check_matrix_shape,
)

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
    "is_square",
    "is_symmetric",
    "symmetrize",
    "zero_diagonal",
    "clip_unit_interval",
    "frobenius_distance",
    "l1_norm",
    "trace_norm",
    "rank_tolerance",
    "effective_rank",
    "density",
    "upper_triangle_pairs",
    "pairs_to_matrix",
    "matrix_to_pairs",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_integer",
    "check_matrix_shape",
]
