"""Lightweight argument validation helpers.

These raise :class:`repro.exceptions.ConfigurationError` with a message that
names the offending parameter, so configuration mistakes surface at
construction time rather than as shape errors deep inside the solvers.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as a float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it as a float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if value <= 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it as a float."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if value < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_in_range(
    value: float, name: str, low: float, high: float, inclusive: bool = True
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or the open interval)."""
    if not isinstance(value, Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ConfigurationError(f"{name} must be in {bounds}, got {value}")
    return value


def check_integer(value: int, name: str, minimum: int = None) -> int:
    """Validate that ``value`` is an integer (optionally >= ``minimum``)."""
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_matrix_shape(
    matrix: np.ndarray, shape: Tuple[int, int], name: str
) -> np.ndarray:
    """Validate that ``matrix`` is a 2-D array of exactly ``shape``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape != tuple(shape):
        raise ConfigurationError(
            f"{name} must have shape {tuple(shape)}, got {matrix.shape}"
        )
    return matrix
