"""Seeded randomness helpers.

Every stochastic routine in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalizes it through :func:`ensure_rng`.  Experiments pass integer seeds so
every table and figure in the paper reproduction is deterministic.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Normalize ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for fresh OS entropy, an ``int`` seed, or an existing
        generator (returned unchanged so callers can share a stream).
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, an int, or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one source.

    Used by sweep experiments so each fold / parameter point has its own
    stream and changing the number of points does not perturb earlier ones.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(random_state)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
