"""Hyper-parameter selection by cross-validated grid search.

The paper selects the intimacy weights by sweeping them (Section IV-D2);
:func:`grid_search` automates that: every combination in a parameter grid is
cross-validated on shared folds and ranked by a chosen metric.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

from repro.evaluation.harness import EvaluationResult, cross_validate
from repro.evaluation.splits import LinkSplit
from repro.exceptions import EvaluationError
from repro.models.base import LinkPredictor
from repro.networks.aligned import AlignedNetworks
from repro.utils.rng import RandomState


@dataclass
class GridSearchResult:
    """Outcome of a grid search.

    Attributes
    ----------
    entries:
        ``(params, EvaluationResult)`` per grid point, in evaluation order.
    metric:
        The metric the search optimized.
    """

    entries: List = field(default_factory=list)
    metric: str = "auc"

    @property
    def best_params(self) -> Dict[str, Any]:
        """The parameter combination with the highest mean metric."""
        if not self.entries:
            raise EvaluationError("grid search evaluated no grid points")
        return max(self.entries, key=lambda e: e[1].mean(self.metric))[0]

    @property
    def best_result(self) -> EvaluationResult:
        """The evaluation result of :attr:`best_params`."""
        if not self.entries:
            raise EvaluationError("grid search evaluated no grid points")
        return max(self.entries, key=lambda e: e[1].mean(self.metric))[1]

    def ranking(self) -> List:
        """All entries sorted best-first by the mean metric."""
        return sorted(
            self.entries, key=lambda e: -e[1].mean(self.metric)
        )

    def as_table(self) -> str:
        """Render the ranking as an aligned text table."""
        lines = []
        for params, result in self.ranking():
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            lines.append(
                f"{result.mean(self.metric):.4f}±{result.std(self.metric):.4f}"
                f"  {rendered}"
            )
        return "\n".join(lines)


def grid_search(
    model_factory: Callable[..., LinkPredictor],
    param_grid: Dict[str, Sequence],
    aligned: AlignedNetworks,
    splits: Sequence[LinkSplit],
    metric: str = "auc",
    precision_k: int = 100,
    random_state: RandomState = None,
) -> GridSearchResult:
    """Cross-validate every combination of ``param_grid``.

    Parameters
    ----------
    model_factory:
        Called with one grid point's keyword arguments to build a model.
    param_grid:
        Mapping of parameter name to the values to try; the search runs
        the full Cartesian product.
    aligned, splits:
        The evaluation setting, shared across grid points so comparisons
        are paired.
    metric:
        ``"auc"`` or ``"precision@{precision_k}"``.

    Examples
    --------
    >>> from repro import generate_aligned_pair, SlamPredT
    >>> from repro.networks import SocialGraph
    >>> from repro.evaluation import k_fold_link_splits
    >>> from repro.evaluation.selection import grid_search
    >>> aligned = generate_aligned_pair(scale=50, random_state=6)
    >>> splits = k_fold_link_splits(
    ...     SocialGraph.from_network(aligned.target), 3, random_state=6)
    >>> search = grid_search(
    ...     SlamPredT, {"gamma": [0.01, 0.1]}, aligned, splits,
    ...     random_state=6)
    >>> "gamma" in search.best_params
    True
    """
    if not param_grid:
        raise EvaluationError("param_grid must not be empty")
    names = sorted(param_grid)
    for name in names:
        if not list(param_grid[name]):
            raise EvaluationError(f"parameter {name!r} has no values to try")
    result = GridSearchResult(metric=metric)
    for values in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, values))
        evaluation = cross_validate(
            lambda: model_factory(**params),
            aligned,
            splits,
            random_state=random_state,
            precision_k=precision_k,
        )
        evaluation.mean(metric)  # validate the metric name early
        result.entries.append((params, evaluation))
    return result
