"""Evaluation: metrics, link splits, fold harness and the anchor sweep.

Mirrors the paper's protocol (Section IV-B): the target's existing links are
partitioned into 5 folds; four train, one is hidden as ground truth.  Models
score the hidden links against sampled non-links and are measured by AUC and
Precision@100 across anchor-link sampling ratios.
"""

from repro.evaluation.metrics import (
    auc_score,
    precision_at_k,
    recall_at_k,
    average_precision,
    f1_at_threshold,
    map_at_k,
    ndcg_at_k,
)
from repro.evaluation.curves import (
    roc_curve,
    precision_recall_curve,
    auc_from_roc,
)
from repro.evaluation.splits import (
    LinkSplit,
    k_fold_link_splits,
    sample_negative_pairs,
)
from repro.evaluation.harness import (
    EvaluationResult,
    FoldOutcome,
    evaluate_model,
    cross_validate,
)
from repro.evaluation.selection import GridSearchResult, grid_search
from repro.evaluation.anchor_sweep import (
    AnchorSweepResult,
    MethodSpec,
    run_anchor_sweep,
    default_method_specs,
)
from repro.evaluation.reporting import (
    format_cell,
    format_sweep_table,
    format_stats_table,
)

__all__ = [
    "auc_score",
    "precision_at_k",
    "recall_at_k",
    "average_precision",
    "f1_at_threshold",
    "map_at_k",
    "ndcg_at_k",
    "roc_curve",
    "precision_recall_curve",
    "auc_from_roc",
    "LinkSplit",
    "k_fold_link_splits",
    "sample_negative_pairs",
    "EvaluationResult",
    "FoldOutcome",
    "evaluate_model",
    "cross_validate",
    "AnchorSweepResult",
    "MethodSpec",
    "run_anchor_sweep",
    "default_method_specs",
    "GridSearchResult",
    "grid_search",
    "format_cell",
    "format_sweep_table",
    "format_stats_table",
]
