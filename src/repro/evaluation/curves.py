"""ROC and precision-recall curves.

The paper reports scalar AUC / Precision@100; these helpers expose the full
curves behind those scalars for diagnostic plotting.  Both return points at
every distinct score threshold (tied scores collapse into one step, so the
curves are exact for tie-heavy matrix predictors).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.evaluation.metrics import _validate
from repro.exceptions import EvaluationError


def roc_curve(
    scores: np.ndarray, labels: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points ``(false_positive_rate, true_positive_rate, thresholds)``.

    Points are ordered from the strictest threshold (nothing predicted) to
    the loosest (everything predicted); the first point is (0, 0) and the
    last (1, 1).
    """
    scores, labels = _validate(scores, labels)
    n_pos = float(labels.sum())
    n_neg = float(labels.size - labels.sum())
    if n_pos == 0 or n_neg == 0:
        raise EvaluationError("ROC needs both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    # Indices where the threshold actually drops (last of each tie group).
    distinct = np.flatnonzero(np.diff(sorted_scores)) if scores.size > 1 else np.array([], dtype=int)
    cut = np.concatenate([distinct, [scores.size - 1]])
    tps = np.cumsum(sorted_labels)[cut]
    fps = (cut + 1) - tps
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[cut]])
    return fpr, tpr, thresholds


def precision_recall_curve(
    scores: np.ndarray, labels: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """PR curve points ``(precision, recall, thresholds)``.

    Ordered from the strictest threshold to the loosest; recall runs from
    its first attainable value to 1.0.
    """
    scores, labels = _validate(scores, labels)
    n_pos = float(labels.sum())
    if n_pos == 0:
        raise EvaluationError("PR curve needs at least one positive")
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    distinct = np.flatnonzero(np.diff(sorted_scores)) if scores.size > 1 else np.array([], dtype=int)
    cut = np.concatenate([distinct, [scores.size - 1]])
    tps = np.cumsum(sorted_labels)[cut]
    predicted = cut + 1.0
    precision = tps / predicted
    recall = tps / n_pos
    return precision, recall, sorted_scores[cut]


def auc_from_roc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Trapezoidal area under an ROC curve (cross-check for auc_score)."""
    fpr = np.asarray(fpr, dtype=float)
    tpr = np.asarray(tpr, dtype=float)
    if fpr.shape != tpr.shape or fpr.size < 2:
        raise EvaluationError("need matching fpr/tpr arrays with >= 2 points")
    return float(np.trapezoid(tpr, fpr))
