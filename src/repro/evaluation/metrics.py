"""Ranking metrics for link prediction.

The paper reports AUC and Precision@100.  AUC is computed rank-based
(Mann-Whitney) with proper tie handling — matrix-estimation predictors can
emit many tied zero scores, and ties must receive half credit rather than
arbitrary ordering.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import rankdata

from repro.exceptions import EvaluationError


def _validate(scores: np.ndarray, labels: np.ndarray):
    scores = np.asarray(scores, dtype=float).ravel()
    labels = np.asarray(labels, dtype=float).ravel()
    if scores.shape != labels.shape:
        raise EvaluationError(
            f"scores ({scores.shape}) and labels ({labels.shape}) "
            "must have the same length"
        )
    if scores.size == 0:
        raise EvaluationError("cannot evaluate on zero instances")
    if not np.all(np.isin(labels, (0.0, 1.0))):
        raise EvaluationError("labels must be binary 0/1")
    return scores, labels


def auc_score(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (rank-based, ties get half credit).

    Raises :class:`EvaluationError` when only one class is present.
    """
    scores, labels = _validate(scores, labels)
    positives = labels == 1.0
    n_pos = int(positives.sum())
    n_neg = int(labels.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise EvaluationError(
            f"AUC needs both classes; got {n_pos} positives, {n_neg} negatives"
        )
    ranks = rankdata(scores)
    rank_sum = float(ranks[positives].sum())
    return (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)


def _expected_relevance(scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Labels in descending-score order, tie groups averaged.

    Instances sharing a score are interchangeable under any tie-breaking
    rule; replacing each one's label with its tie group's mean makes every
    rank-discounted metric deterministic and order-independent (and exact
    in expectation over random tie permutations of a linear metric).
    This is the single tie-handling primitive shared by every top-``k``
    metric in this module — precision@k, recall@k, nDCG@k and MAP@k all
    read the same expected ranking, so their tie semantics agree.
    """
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    expected = labels[order].astype(float).copy()
    boundaries = np.flatnonzero(np.diff(sorted_scores) != 0.0) + 1
    for start, end in zip(
        np.concatenate([[0], boundaries]),
        np.concatenate([boundaries, [sorted_scores.size]]),
    ):
        expected[start:end] = expected[start:end].mean()
    return expected


def _expected_topk_mass(
    scores: np.ndarray, labels: np.ndarray, k: int
) -> float:
    """Expected positives in the top ``k`` — Σ of ``_expected_relevance``.

    Computed per tie group rather than by summing the expanded vector:
    a group overlapping the cutoff by ``overlap`` slots contributes
    ``group_sum · overlap / size``, and a group fully inside contributes
    ``group_sum`` *exactly* — no ``mean → re-sum`` rounding — so at
    ``k = n`` the mass is bit-for-bit ``labels.sum()`` (precision@n is
    exactly the base rate, recall@n exactly 1).
    """
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order].astype(float)
    boundaries = np.flatnonzero(np.diff(sorted_scores) != 0.0) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_scores.size]])
    mass = 0.0
    for start, end in zip(starts, ends):
        overlap = min(int(end), k) - int(start)
        if overlap <= 0:
            break
        group_sum = float(sorted_labels[start:end].sum())
        size = int(end) - int(start)
        mass += group_sum if overlap == size else group_sum * overlap / size
    return mass


def precision_at_k(scores: np.ndarray, labels: np.ndarray, k: int = 100) -> float:
    """Fraction of positives among the top-``k`` scored instances.

    Ties at the cutoff are resolved by expected value: tied instances
    share the remaining slots proportionally (their tie group's mean
    relevance fills each slot), so the metric is deterministic and
    order-independent.  A tie group straddling the cutoff contributes
    ``slots × (group positives / group size)`` — identical to drawing
    the remaining slots uniformly from the group.
    """
    scores, labels = _validate(scores, labels)
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    k = min(int(k), scores.size)
    return _expected_topk_mass(scores, labels, k) / k


def recall_at_k(scores: np.ndarray, labels: np.ndarray, k: int = 100) -> float:
    """Fraction of all positives recovered in the top ``k`` (tie-averaged)."""
    scores, labels = _validate(scores, labels)
    total_pos = float(labels.sum())
    if total_pos == 0:
        raise EvaluationError("recall@k needs at least one positive")
    k = min(int(k), scores.size)
    return _expected_topk_mass(scores, labels, k) / total_pos


def average_precision(scores: np.ndarray, labels: np.ndarray) -> float:
    """Average precision (area under the precision-recall curve).

    Ties are broken by stable descending sort; with heavy ties prefer
    :func:`auc_score` which handles them exactly.
    """
    scores, labels = _validate(scores, labels)
    total_pos = float(labels.sum())
    if total_pos == 0:
        raise EvaluationError("average precision needs at least one positive")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    cumulative_hits = np.cumsum(sorted_labels)
    precision = cumulative_hits / np.arange(1, labels.size + 1)
    return float((precision * sorted_labels).sum() / total_pos)


def ndcg_at_k(scores: np.ndarray, labels: np.ndarray, k: int = 100) -> float:
    """Normalized discounted cumulative gain over the top ``k`` (binary).

    ``DCG@k / IDCG@k`` with the standard ``1 / log2(rank + 1)`` discount.
    Tied scores contribute their tie group's expected relevance at each
    position, so the value is deterministic regardless of sort order.
    ``k`` larger than the instance count is clamped; a ranking with no
    positives scores 0.0 (there is no ideal ordering to normalize by).
    """
    scores, labels = _validate(scores, labels)
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    k = min(int(k), scores.size)
    if float(labels.sum()) == 0.0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    expected = _expected_relevance(scores, labels)
    dcg = float((expected[:k] * discounts).sum())
    ideal = np.sort(labels)[::-1][:k]
    idcg = float((ideal * discounts).sum())
    return dcg / idcg


def map_at_k(scores: np.ndarray, labels: np.ndarray, k: int = 100) -> float:
    """Average precision truncated at rank ``k`` (binary relevance).

    ``Σ_{i≤k} P(i)·rel_i / min(n_positives, k)`` over the descending
    ranking — the single-query "MAP@k" of the recommender literature.
    Tie groups contribute their expected relevance (exact for the
    untied case, first-order in expectation under tied permutations);
    ``k`` beyond the instance count is clamped and an all-negative
    labelling scores 0.0.
    """
    scores, labels = _validate(scores, labels)
    if k <= 0:
        raise EvaluationError(f"k must be positive, got {k}")
    k = min(int(k), scores.size)
    total_pos = float(labels.sum())
    if total_pos == 0.0:
        return 0.0
    expected = _expected_relevance(scores, labels)
    cumulative = np.cumsum(expected)[:k]
    precision = cumulative / np.arange(1, k + 1)
    return float((precision * expected[:k]).sum() / min(total_pos, k))


def f1_at_threshold(
    scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> float:
    """F1 of the hard classification ``score >= threshold``."""
    scores, labels = _validate(scores, labels)
    predicted = scores >= threshold
    true_pos = float((predicted & (labels == 1.0)).sum())
    if true_pos == 0:
        return 0.0
    precision = true_pos / float(predicted.sum())
    recall = true_pos / float(labels.sum())
    return 2 * precision * recall / (precision + recall)
