"""K-fold link splits and negative sampling.

Following Section IV-B1: existing target links are partitioned into 5 folds;
each fold in turn becomes the hidden test set while the rest train the
model.  Test instances are the hidden links (positives) plus an equal number
of sampled never-existing pairs (negatives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.exceptions import EvaluationError
from repro.networks.social import SocialGraph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_integer

Pair = Tuple[int, int]


@dataclass
class LinkSplit:
    """One train/test partition of a network's links.

    Attributes
    ----------
    training_graph:
        The social structure with the test links masked.
    test_links:
        The hidden positive pairs.
    test_non_links:
        Sampled negative pairs (never links in the full graph).
    """

    training_graph: SocialGraph
    test_links: List[Pair]
    test_non_links: List[Pair]

    @property
    def test_pairs(self) -> List[Pair]:
        """Positives followed by negatives."""
        return list(self.test_links) + list(self.test_non_links)

    @property
    def test_labels(self) -> np.ndarray:
        """Binary labels aligned with :attr:`test_pairs`."""
        return np.concatenate(
            [np.ones(len(self.test_links)), np.zeros(len(self.test_non_links))]
        )


def sample_negative_pairs(
    graph: SocialGraph,
    count: int,
    random_state: RandomState = None,
    exclude: Set[Pair] = frozenset(),
    strategy: str = "uniform",
) -> List[Pair]:
    """Sample ``count`` non-link pairs without replacement.

    Parameters
    ----------
    strategy:
        ``"uniform"`` draws from all non-links; ``"two_hop"`` draws from
        non-linked pairs that share at least one neighbor — the *hard*
        negatives most likely to be confused with true links, giving a more
        demanding evaluation.  When the two-hop pool is too small it is
        topped up uniformly.
    exclude:
        Extra pairs removed from the candidate pool (e.g. pairs already
        used by another fold).

    Raises :class:`EvaluationError` when the pool is too small.
    """
    count = check_integer(count, "count", minimum=0)
    if strategy not in ("uniform", "two_hop"):
        raise EvaluationError(
            f"unknown negative-sampling strategy {strategy!r}; "
            "use 'uniform' or 'two_hop'"
        )
    rng = ensure_rng(random_state)
    pool = [p for p in graph.non_links() if p not in exclude]
    if count > len(pool):
        raise EvaluationError(
            f"requested {count} negative pairs but only {len(pool)} non-links "
            "are available"
        )
    if count == 0:
        return []
    if strategy == "two_hop":
        adjacency = graph.adjacency
        two_hop = adjacency @ adjacency
        hard = [p for p in pool if two_hop[p] > 0]
        easy = [p for p in pool if two_hop[p] == 0]
        chosen: List[Pair] = []
        n_hard = min(count, len(hard))
        if n_hard:
            idx = rng.choice(len(hard), size=n_hard, replace=False)
            chosen.extend(hard[i] for i in sorted(idx.tolist()))
        remaining = count - len(chosen)
        if remaining:
            idx = rng.choice(len(easy), size=remaining, replace=False)
            chosen.extend(easy[i] for i in sorted(idx.tolist()))
        return chosen
    idx = rng.choice(len(pool), size=count, replace=False)
    return [pool[i] for i in sorted(idx.tolist())]


def k_fold_link_splits(
    graph: SocialGraph,
    n_folds: int = 5,
    negative_ratio: float = 1.0,
    random_state: RandomState = None,
    negative_strategy: str = "uniform",
) -> List[LinkSplit]:
    """Partition the graph's links into ``n_folds`` train/test splits.

    Parameters
    ----------
    graph:
        The full (unmasked) social structure.
    n_folds:
        Number of folds (the paper uses 5).
    negative_ratio:
        Test negatives sampled per test positive.
    random_state:
        Seed; folds and negative samples are reproducible.
    negative_strategy:
        Negative sampling strategy (see :func:`sample_negative_pairs`);
        ``"two_hop"`` yields a harder evaluation.

    Notes
    -----
    Negatives are sampled from pairs that are non-links in the *full*
    graph, so no test negative is secretly a hidden positive of any fold.
    """
    n_folds = check_integer(n_folds, "n_folds", minimum=2)
    if negative_ratio <= 0:
        raise EvaluationError(
            f"negative_ratio must be positive, got {negative_ratio}"
        )
    rng = ensure_rng(random_state)
    links = sorted(graph.links())
    if len(links) < n_folds:
        raise EvaluationError(
            f"cannot make {n_folds} folds from {len(links)} links"
        )
    order = rng.permutation(len(links))
    fold_assignment = np.arange(len(links)) % n_folds
    splits = []
    for fold in range(n_folds):
        test_idx = order[fold_assignment == fold]
        test_links = [links[i] for i in sorted(test_idx.tolist())]
        training_graph = graph.mask_links(test_links)
        n_negative = int(round(len(test_links) * negative_ratio))
        negatives = sample_negative_pairs(
            graph, n_negative, rng, strategy=negative_strategy
        )
        splits.append(LinkSplit(training_graph, test_links, negatives))
    return splits
