"""Plain-text table formatting for experiment output.

Renders the sweep results in the paper's ``mean±std`` cell style so the
benchmark harness can print rows directly comparable to Table II, and the
dataset statistics in the Table I layout.
"""

from __future__ import annotations

from typing import Dict, List

from repro.evaluation.anchor_sweep import AnchorSweepResult


def format_cell(mean: float, std: float, digits: int = 3) -> str:
    """One ``mean±std`` cell, e.g. ``0.941±0.019``."""
    return f"{mean:.{digits}f}±{std:.{digits}f}"


def format_sweep_table(
    result: AnchorSweepResult,
    metric: str,
    title: str = None,
    digits: int = 3,
) -> str:
    """Render one metric of an anchor sweep as an aligned text table."""
    header = ["method"] + [f"{r:.1f}" for r in result.ratios]
    rows: List[List[str]] = [header]
    for method in result.methods:
        row = [method]
        for ratio in result.ratios:
            cell = result.cell(method, ratio)
            row.append(format_cell(cell.mean(metric), cell.std(metric), digits))
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def format_stats_table(
    stats_by_network: Dict[str, Dict[str, int]], title: str = None
) -> str:
    """Render per-network statistics in the Table I layout."""
    networks = list(stats_by_network)
    properties: List[str] = []
    for stats in stats_by_network.values():
        for key in stats:
            if key not in properties:
                properties.append(key)
    header = ["property"] + networks
    rows = [header]
    for prop in properties:
        rows.append(
            [prop]
            + [f"{stats_by_network[net].get(prop, 0):,}" for net in networks]
        )
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)
