"""The Table II experiment: methods × anchor-link sampling ratios.

For each anchor ratio the source networks' anchor sets are down-sampled and
every method is cross-validated on the same folds.  Methods that ignore the
sources (the -T / -H variants and the unsupervised predictors) are evaluated
once and their row is replicated across ratios, matching the constant rows
of the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.evaluation.harness import EvaluationResult, cross_validate
from repro.evaluation.splits import LinkSplit, k_fold_link_splits
from repro.exceptions import EvaluationError
from repro.models.base import LinkPredictor
from repro.models.pu import PLPredictor
from repro.models.scan import ScanPredictor
from repro.models.slampred import SlamPred, SlamPredH, SlamPredT
from repro.models.unsupervised import (
    CommonNeighbors,
    JaccardCoefficient,
    PreferentialAttachment,
)
from repro.networks.aligned import AlignedNetworks
from repro.networks.social import SocialGraph
from repro.observability.tracer import Tracer, is_tracing
from repro.utils.rng import RandomState, ensure_rng

DEFAULT_RATIOS = tuple(round(r * 0.1, 1) for r in range(11))


@dataclass(frozen=True)
class MethodSpec:
    """A named model factory plus whether it reads the source networks.

    ``uses_sources=False`` methods have ratio-independent performance and
    are evaluated once.
    """

    name: str
    factory: Callable[[], LinkPredictor]
    uses_sources: bool = True


def default_method_specs(**model_kwargs) -> List[MethodSpec]:
    """The 12 methods of Table II, in the paper's row order.

    ``model_kwargs`` are forwarded to the three SLAMPRED variants (e.g.
    lighter iteration budgets for the benchmark harness).
    """
    return [
        MethodSpec("SLAMPRED", lambda: SlamPred(**model_kwargs), True),
        MethodSpec("SLAMPRED-T", lambda: SlamPredT(**model_kwargs), False),
        MethodSpec("SLAMPRED-H", lambda: SlamPredH(**model_kwargs), False),
        MethodSpec("PL", lambda: PLPredictor(), True),
        MethodSpec("PL-T", lambda: PLPredictor.target_only(), False),
        MethodSpec("PL-S", lambda: PLPredictor.source_only(), True),
        MethodSpec("SCAN", lambda: ScanPredictor(), True),
        MethodSpec("SCAN-T", lambda: ScanPredictor.target_only(), False),
        MethodSpec("SCAN-S", lambda: ScanPredictor.source_only(), True),
        MethodSpec("JC", JaccardCoefficient, False),
        MethodSpec("CN", CommonNeighbors, False),
        MethodSpec("PA", PreferentialAttachment, False),
    ]


@dataclass
class AnchorSweepResult:
    """All cross-validation results of the sweep.

    ``table[method][ratio]`` is the :class:`EvaluationResult` of that cell.
    """

    ratios: List[float]
    table: Dict[str, Dict[float, EvaluationResult]] = field(default_factory=dict)

    def cell(self, method: str, ratio: float) -> EvaluationResult:
        """Result for one (method, ratio) cell."""
        try:
            return self.table[method][ratio]
        except KeyError:
            raise EvaluationError(
                f"no result for method {method!r} at ratio {ratio}"
            ) from None

    def series(self, method: str, metric: str) -> List[float]:
        """Mean metric values of one method across the ratio axis."""
        return [self.cell(method, r).mean(metric) for r in self.ratios]

    @property
    def methods(self) -> List[str]:
        """Method names in insertion (table row) order."""
        return list(self.table)


def _cell_span(tracer: Tracer, method: str, ratio):
    """Span wrapping one method × ratio cell; a no-op without a tracer."""
    if not is_tracing(tracer):
        from contextlib import nullcontext

        return nullcontext()
    label = f"cell:{method}" if ratio is None else f"cell:{method}@{ratio:g}"
    return tracer.span(label)


def run_anchor_sweep(
    aligned: AlignedNetworks,
    methods: Sequence[MethodSpec] = None,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    n_folds: int = 5,
    precision_k: int = 100,
    random_state: RandomState = None,
    splits: Sequence[LinkSplit] = None,
    tracer: Tracer = None,
) -> AnchorSweepResult:
    """Run the Table II sweep.

    Parameters
    ----------
    aligned:
        The fully-aligned bundle (ratio 1.0 anchors).
    methods:
        Methods to evaluate; defaults to the paper's 12.
    ratios:
        Anchor sampling ratios; defaults to 0.0 … 1.0 in steps of 0.1.
    n_folds:
        Cross-validation folds (paper: 5).
    splits:
        Precomputed folds (for reuse across comparisons); generated from the
        target when omitted.
    tracer:
        Optional live :class:`~repro.observability.Tracer`; each
        method × ratio cell becomes a ``cell:<method>@<ratio>`` span.
    """
    if methods is None:
        methods = default_method_specs()
    ratios = [float(r) for r in ratios]
    if not ratios:
        raise EvaluationError("at least one anchor ratio is required")
    rng = ensure_rng(random_state)
    if splits is None:
        splits = k_fold_link_splits(
            SocialGraph.from_network(aligned.target),
            n_folds=n_folds,
            random_state=rng,
        )
    result = AnchorSweepResult(ratios=ratios)
    for spec in methods:
        per_ratio: Dict[float, EvaluationResult] = {}
        if spec.uses_sources:
            for ratio in ratios:
                sampled = aligned.sample_anchors(ratio, ensure_rng(rng))
                with _cell_span(tracer, spec.name, ratio):
                    per_ratio[ratio] = cross_validate(
                        spec.factory,
                        sampled,
                        splits,
                        random_state=rng,
                        precision_k=precision_k,
                        tracer=tracer,
                    )
        else:
            with _cell_span(tracer, spec.name, None):
                constant = cross_validate(
                    spec.factory,
                    aligned,
                    splits,
                    random_state=rng,
                    precision_k=precision_k,
                    tracer=tracer,
                )
            per_ratio = {ratio: constant for ratio in ratios}
        result.table[spec.name] = per_ratio
    return result
