"""Fold-level evaluation harness.

``evaluate_model`` runs one model on one split; ``cross_validate`` runs a
model factory across all folds and aggregates mean ± std per metric —
the numbers each Table II cell reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.evaluation.metrics import auc_score, precision_at_k
from repro.evaluation.splits import LinkSplit
from repro.exceptions import EvaluationError
from repro.models.base import LinkPredictor, TransferTask
from repro.networks.aligned import AlignedNetworks
from repro.observability.tracer import Tracer, is_tracing
from repro.utils.rng import RandomState, spawn_rngs

DEFAULT_PRECISION_K = 100


@dataclass
class FoldOutcome:
    """Metrics of one model on one fold."""

    model_name: str
    metrics: Dict[str, float]


@dataclass
class EvaluationResult:
    """Aggregated cross-validation outcome of one model.

    ``metrics`` maps metric name to the list of per-fold values; ``mean``
    and ``std`` aggregate them.
    """

    model_name: str
    metrics: Dict[str, List[float]] = field(default_factory=dict)

    def mean(self, metric: str) -> float:
        """Mean of a metric across folds."""
        return float(np.mean(self._values(metric)))

    def std(self, metric: str) -> float:
        """Population std of a metric across folds."""
        return float(np.std(self._values(metric)))

    def _values(self, metric: str) -> List[float]:
        try:
            return self.metrics[metric]
        except KeyError:
            raise EvaluationError(
                f"metric {metric!r} was not recorded; have {sorted(self.metrics)}"
            ) from None


def evaluate_model(
    model: LinkPredictor,
    task: TransferTask,
    split: LinkSplit,
    precision_k: int = DEFAULT_PRECISION_K,
    tracer: "Tracer" = None,
) -> FoldOutcome:
    """Fit ``model`` on the task and measure it on the split's test pairs.

    Under a live ``tracer`` the fit and scoring phases are timed as
    ``fit:<model>`` / ``score:<model>`` spans; a model that itself carries
    no tracer still contributes its wall-clock to the harness report.
    """
    if is_tracing(tracer):
        with tracer.span(f"fit:{model.name}"):
            model.fit(task)
        with tracer.span(f"score:{model.name}"):
            scores = model.score_pairs(split.test_pairs)
        tracer.count("harness.fits")
    else:
        model.fit(task)
        scores = model.score_pairs(split.test_pairs)
    labels = split.test_labels
    metrics = {
        "auc": auc_score(scores, labels),
        f"precision@{precision_k}": precision_at_k(scores, labels, precision_k),
    }
    return FoldOutcome(model_name=model.name, metrics=metrics)


def cross_validate(
    model_factory: Callable[[], LinkPredictor],
    aligned: AlignedNetworks,
    splits: Sequence[LinkSplit],
    random_state: RandomState = None,
    precision_k: int = DEFAULT_PRECISION_K,
    tracer: "Tracer" = None,
) -> EvaluationResult:
    """Run a model across all folds of an aligned bundle.

    A fresh model instance is built per fold (models keep fitted state); a
    per-fold random stream keeps every fold independently reproducible.
    A live ``tracer`` wraps each fold in a ``fold[i]`` span.
    """
    if not splits:
        raise EvaluationError("at least one split is required")
    rngs = spawn_rngs(random_state, len(splits))
    tracing = is_tracing(tracer)
    result = None
    for index, (split, rng) in enumerate(zip(splits, rngs)):
        model = model_factory()
        task = TransferTask(
            target=aligned.target,
            training_graph=split.training_graph,
            sources=list(aligned.sources),
            anchors=list(aligned.anchors),
            random_state=rng,
        )
        if tracing:
            with tracer.span(f"fold[{index}]"):
                outcome = evaluate_model(
                    model, task, split, precision_k, tracer=tracer
                )
        else:
            outcome = evaluate_model(model, task, split, precision_k)
        if result is None:
            result = EvaluationResult(model_name=outcome.model_name)
        for metric, value in outcome.metrics.items():
            result.metrics.setdefault(metric, []).append(value)
    return result
