"""Anchor link prediction (network alignment).

The SLT problem assumes anchor links are given, but the paper's ecosystem
(Kong, Zhang & Yu, CIKM 2013 [8]; the "integrated anchor and social link
prediction" line [33]) infers them: given two networks known to share users,
which account pairs belong to the same person?

This package provides a profile-similarity anchor predictor with the
one-to-one constraint enforced by optimal bipartite matching
(``scipy.optimize.linear_sum_assignment``), so the full pipeline — infer
anchors, then transfer links with SLAMPRED — runs end to end without
ground-truth alignment.
"""

from repro.alignment.profiles import UserProfileBuilder, profile_similarity
from repro.alignment.matcher import AnchorPredictor, match_users

__all__ = [
    "UserProfileBuilder",
    "profile_similarity",
    "AnchorPredictor",
    "match_users",
]
