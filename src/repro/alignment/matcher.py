"""One-to-one anchor matching.

Anchor links obey the one-to-one constraint (a person has at most one
account per network), so anchor prediction is a bipartite assignment
problem: maximize total profile similarity subject to each user matching at
most once.  Solved exactly with the Hungarian algorithm
(``scipy.optimize.linear_sum_assignment``); matches below a confidence
threshold are discarded so unshared users stay unmatched.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import scipy.optimize

from repro.alignment.profiles import UserProfileBuilder, profile_similarity
from repro.exceptions import AlignmentError
from repro.networks.aligned import AnchorLinks
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.utils.validation import check_probability


def match_users(
    similarity: np.ndarray, min_similarity: float = 0.0
) -> List[Tuple[int, int, float]]:
    """Optimal one-to-one matching of a similarity matrix.

    Returns ``(row, column, similarity)`` triples for matched pairs with
    similarity strictly above ``min_similarity``.
    """
    similarity = np.asarray(similarity, dtype=float)
    if similarity.ndim != 2:
        raise AlignmentError(
            f"similarity must be a 2-D matrix, got shape {similarity.shape}"
        )
    if similarity.size == 0:
        return []
    rows, cols = scipy.optimize.linear_sum_assignment(-similarity)
    return [
        (int(r), int(c), float(similarity[r, c]))
        for r, c in zip(rows, cols)
        if similarity[r, c] > min_similarity
    ]


class AnchorPredictor:
    """Predict anchor links between two networks from attribute profiles.

    Parameters
    ----------
    min_similarity:
        Confidence floor: matched pairs at or below this cosine similarity
        are discarded (prevents forcing matches for users who exist in
        only one network).
    weight_sharpness:
        Exponent applied to each attribute family's reciprocal-best-match
        rate when combining similarity matrices.  Higher values
        concentrate the weight on the most identity-informative family;
        4.0 performs best across seeds on the synthetic worlds.
    profile_builder:
        Profile construction strategy; defaults to location + hour + word.

    Examples
    --------
    >>> from repro.synth import generate_aligned_pair
    >>> from repro.alignment import AnchorPredictor
    >>> aligned = generate_aligned_pair(scale=60, random_state=2)
    >>> predictor = AnchorPredictor(min_similarity=0.2)
    >>> predicted = predictor.predict(aligned.target, aligned.sources[0])
    >>> len(predicted) > 0
    True
    """

    def __init__(
        self,
        min_similarity: float = 0.1,
        weight_sharpness: float = 4.0,
        profile_builder: UserProfileBuilder = None,
    ):
        self.min_similarity = check_probability(min_similarity, "min_similarity")
        if weight_sharpness <= 0:
            raise AlignmentError(
                f"weight_sharpness must be > 0, got {weight_sharpness}"
            )
        self.weight_sharpness = float(weight_sharpness)
        self.profile_builder = profile_builder or UserProfileBuilder()

    def similarity_matrix(
        self,
        network_a: HeterogeneousNetwork,
        network_b: HeterogeneousNetwork,
    ) -> np.ndarray:
        """Cross-network user similarity ``(n_a, n_b)``.

        Each attribute family contributes its own cosine-similarity matrix,
        weighted by its *reciprocal-best-match rate*: the fraction of users
        whose best candidate also picks them back.  A family that truly
        identifies people produces mutually consistent argmaxes; one
        dominated by shared community/platform behaviour (or thin data,
        like check-ins on a network that rarely checks in) does not — all
        measured without ground-truth anchors.
        """
        blocks = self.profile_builder.build_blocks(network_a, network_b)
        combined = None
        total_weight = 0.0
        for part, (profiles_a, profiles_b) in blocks.items():
            similarity = profile_similarity(profiles_a, profiles_b)
            weight = (
                self._reciprocal_match_rate(similarity)
                ** self.weight_sharpness
            )
            total_weight += weight
            weighted = weight * similarity
            combined = weighted if combined is None else combined + weighted
        if combined is None or total_weight == 0.0:
            n_a, n_b = network_a.n_users, network_b.n_users
            return np.zeros((n_a, n_b))
        return combined / total_weight

    @staticmethod
    def _reciprocal_match_rate(similarity: np.ndarray) -> float:
        """Fraction of rows whose argmax column argmaxes back to them."""
        if similarity.size == 0 or not similarity.any():
            return 0.0
        best_cols = similarity.argmax(axis=1)
        best_rows = similarity.argmax(axis=0)
        reciprocal = best_rows[best_cols] == np.arange(similarity.shape[0])
        return float(reciprocal.mean())

    def predict(
        self,
        network_a: HeterogeneousNetwork,
        network_b: HeterogeneousNetwork,
    ) -> AnchorLinks:
        """Predict one-to-one anchor links from ``network_a`` to ``network_b``."""
        similarity = self.similarity_matrix(network_a, network_b)
        ids_a = network_a.user_ids
        ids_b = network_b.user_ids
        matches = match_users(similarity, self.min_similarity)
        return AnchorLinks(
            (ids_a[r], ids_b[c]) for r, c, _ in matches
        )

    def evaluate(
        self, predicted: AnchorLinks, truth: AnchorLinks
    ) -> dict:
        """Precision / recall / F1 of predicted anchors against the truth."""
        predicted_pairs = set(predicted.pairs)
        true_pairs = set(truth.pairs)
        hits = len(predicted_pairs & true_pairs)
        precision = hits / len(predicted_pairs) if predicted_pairs else 0.0
        recall = hits / len(true_pairs) if true_pairs else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        return {"precision": precision, "recall": recall, "f1": f1}
