"""Cross-network user profiles for anchor prediction.

Two accounts of the same person look alike in the attribute dimensions that
travel across platforms: *where* they check in, *when* they are active and
*what* vocabulary they use.  (Network-local structure does not transfer
directly — user ids differ — so profiles are attribute-only.)

Profiles of two networks are comparable because locations, hour buckets and
word ids live in shared world-level spaces.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import AlignmentError
from repro.features.spatial import user_location_counts
from repro.features.temporal import user_hour_histograms

from repro.networks.heterogeneous import HeterogeneousNetwork

PROFILE_PARTS = ("location", "hour", "word")


class UserProfileBuilder:
    """Build comparable per-user attribute profiles for a network pair.

    Parameters
    ----------
    parts:
        Which attribute families to include, a subset of
        :data:`PROFILE_PARTS`.

    use_idf:
        Weight word and location columns by inverse user frequency computed
        over the *union* of both networks' users.  Platform-trending and
        community-shared items are common (low weight); a person's own
        favorites are rare (high weight), which is exactly the identity
        signal the matcher needs.

    Notes
    -----
    Word columns are restricted to the vocabulary union of both networks so
    the two profile matrices share a column space; location and hour spaces
    are world-level already.
    """

    def __init__(self, parts: Sequence[str] = PROFILE_PARTS, use_idf: bool = True):
        unknown = [p for p in parts if p not in PROFILE_PARTS]
        if unknown:
            raise AlignmentError(
                f"unknown profile parts {unknown}; supported {PROFILE_PARTS}"
            )
        if not parts:
            raise AlignmentError("at least one profile part is required")
        self.parts = tuple(parts)
        self.use_idf = bool(use_idf)

    def build_blocks(
        self,
        network_a: HeterogeneousNetwork,
        network_b: HeterogeneousNetwork,
    ) -> dict:
        """Per-part profile block pairs ``{part: (A_block, B_block)}``.

        Each block is L2-normalized per user so no attribute family
        dominates by raw volume.
        """
        blocks = {}
        if "location" in self.parts:
            blocks["location"] = self._location_blocks(network_a, network_b)
        if "hour" in self.parts:
            blocks["hour"] = (
                _row_normalize(user_hour_histograms(network_a)),
                _row_normalize(user_hour_histograms(network_b)),
            )
        if "word" in self.parts:
            blocks["word"] = self._word_blocks(network_a, network_b)
        return blocks

    def build_pair(
        self,
        network_a: HeterogeneousNetwork,
        network_b: HeterogeneousNetwork,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated profile matrices ``(n_a, d)`` and ``(n_b, d)``."""
        blocks = self.build_blocks(network_a, network_b)
        ordered = [blocks[p] for p in self.parts if p in blocks]
        return (
            np.hstack([a for a, _ in ordered]),
            np.hstack([b for _, b in ordered]),
        )

    def _location_blocks(self, network_a, network_b):
        counts_a = user_location_counts(network_a)
        counts_b = user_location_counts(network_b)
        width = max(counts_a.shape[1], counts_b.shape[1])
        counts_a = _pad_columns(counts_a, width)
        counts_b = _pad_columns(counts_b, width)
        counts_a, counts_b = self._maybe_idf(counts_a, counts_b)
        return _row_normalize(counts_a), _row_normalize(counts_b)

    def _maybe_idf(self, counts_a, counts_b):
        if not self.use_idf:
            return counts_a, counts_b
        pooled = np.vstack([counts_a, counts_b])
        n_users = pooled.shape[0]
        frequency = (pooled > 0).sum(axis=0)
        weights = np.log(1.0 + n_users / (1.0 + frequency))
        return counts_a * weights[None, :], counts_b * weights[None, :]

    def _word_blocks(self, network_a, network_b):
        words_a = sorted(
            {w for post in network_a.posts() for w in post.word_ids}
        )
        words_b = sorted(
            {w for post in network_b.posts() for w in post.word_ids}
        )
        vocabulary = sorted(set(words_a) | set(words_b))
        index = {w: i for i, w in enumerate(vocabulary)}

        def counts(network):
            out = np.zeros((network.n_users, len(vocabulary)))
            user_index = network.user_index()
            for post in network.posts():
                row = user_index[post.author_id]
                for word in post.word_ids:
                    out[row, index[word]] += 1
            return out

        counts_a, counts_b = self._maybe_idf(counts(network_a), counts(network_b))
        return _row_normalize(counts_a), _row_normalize(counts_b)


def profile_similarity(
    profiles_a: np.ndarray, profiles_b: np.ndarray
) -> np.ndarray:
    """Cosine similarity between every cross-network user pair.

    Returns ``(n_a, n_b)``; rows with empty profiles score 0 everywhere.
    """
    profiles_a = np.asarray(profiles_a, dtype=float)
    profiles_b = np.asarray(profiles_b, dtype=float)
    if profiles_a.shape[1] != profiles_b.shape[1]:
        raise AlignmentError(
            f"profile dimensionalities differ: {profiles_a.shape[1]} vs "
            f"{profiles_b.shape[1]}"
        )
    norm_a = np.linalg.norm(profiles_a, axis=1)
    norm_b = np.linalg.norm(profiles_b, axis=1)
    safe_a = np.where(norm_a > 0, norm_a, 1.0)
    safe_b = np.where(norm_b > 0, norm_b, 1.0)
    similarity = (profiles_a / safe_a[:, None]) @ (
        profiles_b / safe_b[:, None]
    ).T
    similarity[norm_a == 0, :] = 0.0
    similarity[:, norm_b == 0] = 0.0
    return similarity


def _row_normalize(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1)
    safe = np.where(norms > 0, norms, 1.0)
    return matrix / safe[:, None]


def _pad_columns(matrix: np.ndarray, width: int) -> np.ndarray:
    if matrix.shape[1] >= width:
        return matrix
    padded = np.zeros((matrix.shape[0], width))
    padded[:, : matrix.shape[1]] = matrix
    return padded
