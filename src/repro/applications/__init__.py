"""Other applications of the sparse + low-rank estimation machinery.

Richard, Savalle & Vayatis (ICML 2012) — the estimation framework the paper
builds on — list three applications of simultaneously sparse and low-rank
matrix estimation: **link prediction** (the paper's core, in
:mod:`repro.models`), **graph denoising** and **covariance estimation**.
This package implements the other two on the same proximal stack:

* :class:`GraphDenoiser` — recover a consistent low-rank community
  structure from an adjacency matrix corrupted by spurious / missing links
  (the setting of Zhi, Han & Gu, ECML-PKDD 2015, cited as [38]);
* :class:`SparseLowRankCovariance` — shrinkage covariance estimation where
  the population covariance is a low-rank factor model plus a sparse
  residual.
"""

from repro.applications.denoise import GraphDenoiser
from repro.applications.covariance import SparseLowRankCovariance

__all__ = ["GraphDenoiser", "SparseLowRankCovariance"]
