"""Graph denoising with sparse + low-rank estimation.

Observed social graphs contain *inconsistent* links — spurious connections
(spam, misclicks) and missing ones.  Under the communities-plus-noise model
the true structure is low-rank, so the estimator::

    min_S ‖S − A_observed‖_F² + γ‖S‖₁ + τ‖S‖*,   S ⪰ 0 entry-wise

recovers a cleaned score matrix whose strong entries are the consistent
links.  This is the estimation core of the link-inconsistency setting of
Zhi, Han & Gu (ECML-PKDD 2015), run on the exact solver stack of SLAMPRED.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import NotFittedError, OptimizationError
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import ForwardBackwardSolver
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx
from repro.utils.matrices import is_square, is_symmetric, zero_diagonal
from repro.utils.validation import check_integer, check_non_negative, check_positive


class GraphDenoiser:
    """Recover consistent structure from a noisy adjacency matrix.

    Parameters
    ----------
    gamma:
        Sparsity weight — higher suppresses more of the spurious links.
    tau:
        Low-rank weight — higher forces cleaner community structure.
    step_size, max_iterations, tolerance:
        Forward-backward solver settings.
    svd_rank:
        Optional truncated-SVD rank for large graphs.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.applications import GraphDenoiser
    >>> blocks = np.kron(np.eye(2), np.ones((4, 4))) - np.eye(8)
    >>> denoiser = GraphDenoiser(tau=2.0).fit(blocks)
    >>> denoiser.scores.shape
    (8, 8)
    """

    def __init__(
        self,
        gamma: float = 0.05,
        tau: float = 2.0,
        step_size: float = 0.05,
        max_iterations: int = 500,
        tolerance: float = 1e-5,
        svd_rank: Optional[int] = None,
    ):
        self.gamma = check_non_negative(gamma, "gamma")
        self.tau = check_non_negative(tau, "tau")
        self.step_size = check_positive(step_size, "step_size")
        self.max_iterations = check_integer(
            max_iterations, "max_iterations", minimum=1
        )
        self.tolerance = check_positive(tolerance, "tolerance")
        self.svd_rank = svd_rank
        self._scores: Optional[np.ndarray] = None

    @property
    def scores(self) -> np.ndarray:
        """The denoised score matrix (non-negative, zero diagonal)."""
        if self._scores is None:
            raise NotFittedError("GraphDenoiser has not been fitted")
        return self._scores

    def fit(self, adjacency: np.ndarray) -> "GraphDenoiser":
        """Denoise a symmetric adjacency (binary or weighted, zero diagonal)."""
        adjacency = np.asarray(adjacency, dtype=float)
        if not is_square(adjacency):
            raise OptimizationError(
                f"adjacency must be square, got shape {adjacency.shape}"
            )
        if not is_symmetric(adjacency, atol=1e-9):
            raise OptimizationError("adjacency must be symmetric")
        solver = ForwardBackwardSolver(
            step_size=self.step_size,
            criterion=ConvergenceCriterion(
                tolerance=self.tolerance, max_iterations=self.max_iterations
            ),
        )
        solution = solver.solve(
            adjacency,
            [SquaredFrobeniusLoss(adjacency)],
            [
                TraceNormProx(self.tau, max_rank=self.svd_rank),
                L1Prox(self.gamma),
                BoxProjection(0.0, None),
            ],
        )
        self._scores = zero_diagonal(solution)
        return self

    def consistent_links(self, threshold: float = 0.5):
        """Canonical (i, j) pairs whose denoised score exceeds ``threshold``."""
        scores = self.scores
        rows, cols = np.nonzero(np.triu(scores > threshold, k=1))
        return list(zip(rows.tolist(), cols.tolist()))

    def flagged_links(self, adjacency: np.ndarray, threshold: float = 0.25):
        """Observed links whose denoised score fell below ``threshold``.

        These are the candidates for *inconsistent* (spurious) links: the
        low-rank structure refused to support them.
        """
        adjacency = np.asarray(adjacency, dtype=float)
        scores = self.scores
        if adjacency.shape != scores.shape:
            raise OptimizationError(
                f"adjacency shape {adjacency.shape} does not match the "
                f"fitted graph {scores.shape}"
            )
        mask = (adjacency > 0) & (scores < threshold)
        rows, cols = np.nonzero(np.triu(mask, k=1))
        return list(zip(rows.tolist(), cols.tolist()))
