"""Sparse + low-rank covariance estimation.

Richard et al. (ICML 2012) motivate simultaneously sparse and low-rank
estimation with covariance matrices: under a factor model, the population
covariance is ``low-rank (common factors) + sparse (idiosyncratic)`` and a
sample covariance is a noisy observation of it.  The estimator::

    min_S ‖S − Σ̂‖_F² + γ‖S‖₁ + τ‖S‖*

shrinks sampling noise in both spectra and entries.  The diagonal is not
ℓ1-penalized (variances are never sparse) and the output is symmetrized and
eigenvalue-clipped to stay a valid covariance.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import NotFittedError, OptimizationError
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import ForwardBackwardSolver
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import TraceNormProx, soft_threshold
from repro.utils.validation import check_integer, check_non_negative, check_positive


class _OffDiagonalL1Prox:
    """ℓ1 prox applied to off-diagonal entries only."""

    def __init__(self, weight: float):
        self.weight = check_non_negative(weight, "weight")

    def value(self, matrix: np.ndarray) -> float:
        off = matrix - np.diag(np.diag(matrix))
        return self.weight * float(np.abs(off).sum())

    def apply(self, matrix: np.ndarray, step: float) -> np.ndarray:
        out = soft_threshold(matrix, step * self.weight)
        np.fill_diagonal(out, np.diag(matrix))
        return out


class SparseLowRankCovariance:
    """Shrinkage covariance estimator on the SLAMPRED proximal stack.

    Parameters
    ----------
    gamma:
        Off-diagonal sparsity weight.
    tau:
        Trace-norm (spectral shrinkage) weight.
    step_size, max_iterations, tolerance:
        Solver settings.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> samples = rng.normal(size=(200, 6))
    >>> estimator = SparseLowRankCovariance().fit(samples)
    >>> estimator.covariance.shape
    (6, 6)
    """

    def __init__(
        self,
        gamma: float = 0.05,
        tau: float = 0.5,
        step_size: float = 0.1,
        max_iterations: int = 500,
        tolerance: float = 1e-7,
    ):
        self.gamma = check_non_negative(gamma, "gamma")
        self.tau = check_non_negative(tau, "tau")
        self.step_size = check_positive(step_size, "step_size")
        self.max_iterations = check_integer(
            max_iterations, "max_iterations", minimum=1
        )
        self.tolerance = check_positive(tolerance, "tolerance")
        self._covariance: Optional[np.ndarray] = None

    @property
    def covariance(self) -> np.ndarray:
        """The estimated covariance (symmetric positive semi-definite)."""
        if self._covariance is None:
            raise NotFittedError("SparseLowRankCovariance has not been fitted")
        return self._covariance

    def fit(self, samples: np.ndarray) -> "SparseLowRankCovariance":
        """Estimate from an ``(n_samples, n_features)`` data matrix."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2:
            raise OptimizationError(
                f"samples must be 2-D, got shape {samples.shape}"
            )
        if samples.shape[0] < 2:
            raise OptimizationError("need at least two samples")
        centered = samples - samples.mean(axis=0)
        empirical = centered.T @ centered / (samples.shape[0] - 1)
        return self.fit_from_empirical(empirical)

    def fit_from_empirical(
        self, empirical: np.ndarray
    ) -> "SparseLowRankCovariance":
        """Estimate from a precomputed empirical covariance."""
        empirical = np.asarray(empirical, dtype=float)
        if (
            empirical.ndim != 2
            or empirical.shape[0] != empirical.shape[1]
            or not np.allclose(empirical, empirical.T, atol=1e-8)
        ):
            raise OptimizationError(
                "empirical covariance must be a symmetric square matrix"
            )
        solver = ForwardBackwardSolver(
            step_size=self.step_size,
            criterion=ConvergenceCriterion(
                tolerance=self.tolerance, max_iterations=self.max_iterations
            ),
        )
        solution = solver.solve(
            empirical,
            [SquaredFrobeniusLoss(empirical)],
            [TraceNormProx(self.tau), _OffDiagonalL1Prox(self.gamma)],
        )
        solution = (solution + solution.T) / 2.0
        eigenvalues, eigenvectors = np.linalg.eigh(solution)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        self._covariance = (
            eigenvectors * eigenvalues[None, :]
        ) @ eigenvectors.T
        return self

    def precision(self, ridge: float = 1e-8) -> np.ndarray:
        """Inverse of the estimated covariance (ridge-stabilized)."""
        covariance = self.covariance
        return np.linalg.inv(
            covariance + ridge * np.eye(covariance.shape[0])
        )
