"""Figure 3 — convergence analysis of the iterative CCCP.

The paper plots ``‖S^h‖₁`` (left panel) and ``‖S^h − S^{h−1}‖₁`` (right
panel) per iteration, observing convergence within ~300 rounds.  This
reproduction fits the full SLAMPRED model with history recording and emits
both series, down-sampled for terminal display.
"""

from __future__ import annotations

from typing import Dict, List

from repro.evaluation.splits import k_fold_link_splits
from repro.models.base import TransferTask
from repro.models.slampred import SlamPred
from repro.networks.social import SocialGraph
from repro.observability.tracer import Tracer
from repro.synth.generator import generate_aligned_pair
from repro.utils.rng import RandomState


def run_figure3(
    scale: int = 120,
    random_state: RandomState = 17,
    inner_iterations: int = 25,
    outer_iterations: int = 40,
    tracer: Tracer = None,
) -> Dict:
    """Fit SLAMPRED and return the per-iteration convergence series.

    Returns ``variable_norms`` (‖S^h‖₁), ``update_norms``
    (‖S^h − S^{h−1}‖₁), ``n_iterations``, ``converged`` and ``text``.
    A live ``tracer`` is handed to the model, so the whole CCCP run —
    rounds, gradient/prox spans, per-iteration objective breakdown — lands
    in the run report.
    """
    aligned = generate_aligned_pair(scale=scale, random_state=random_state)
    split = k_fold_link_splits(
        SocialGraph.from_network(aligned.target),
        n_folds=5,
        random_state=random_state,
    )[0]
    task = TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        sources=list(aligned.sources),
        anchors=list(aligned.anchors),
        random_state=random_state,
    )
    # exact=True pins the figure to the seed solver's bit-exact numerics;
    # the golden regression (results/run.figure3.json) asserts iteration
    # counts and norms against exactly this trajectory.
    model = SlamPred(
        inner_iterations=inner_iterations,
        outer_iterations=outer_iterations,
        tolerance=1e-6,
        exact=True,
        tracer=tracer,
    )
    model.fit(task)
    history = model.result.history
    text = _render(history.variable_norms, history.update_norms)
    return {
        "variable_norms": list(history.variable_norms),
        "update_norms": list(history.update_norms),
        "n_iterations": history.n_iterations,
        "n_rounds": model.result.n_rounds,
        "converged": model.result.converged,
        "text": text,
    }


def _render(variable_norms: List[float], update_norms: List[float]) -> str:
    lines = ["Figure 3 — CCCP convergence", "iter  ||S^h||_1      ||S^h - S^{h-1}||_1"]
    n = len(variable_norms)
    step = max(1, n // 20)
    shown = sorted(set(list(range(0, n, step)) + [n - 1]))
    for i in shown:
        lines.append(f"{i + 1:4d}  {variable_norms[i]:12.4f}  {update_norms[i]:.6f}")
    return "\n".join(lines)


def main(**kwargs) -> None:
    """Print the Figure 3 reproduction."""
    result = run_figure3(**kwargs)
    print(result["text"])
    status = "converged" if result["converged"] else "budget exhausted"
    print(f"\n{result['n_iterations']} proximal iterations, "
          f"{result['n_rounds']} CCCP rounds ({status})")


if __name__ == "__main__":
    main()
