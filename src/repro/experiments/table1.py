"""Table I — properties of the heterogeneous networks.

The paper tabulates node and link counts of the crawled Twitter and
Foursquare networks.  This reproduction prints the same properties for the
synthetic aligned pair, plus the anchor count (the paper quotes it in the
text: 3,388 of 5,223 Twitter users are anchored).
"""

from __future__ import annotations

from typing import Dict

from repro.evaluation.reporting import format_stats_table
from repro.observability.tracer import Tracer, is_tracing
from repro.synth.generator import generate_aligned_pair
from repro.utils.rng import RandomState


def run_table1(
    scale: int = 300, random_state: RandomState = 17, tracer: Tracer = None
) -> Dict:
    """Generate the aligned pair and collect its Table I statistics.

    Returns a dict with ``stats`` (per-network property counts),
    ``anchors`` (anchor link count) and ``text`` (the rendered table).
    """
    if is_tracing(tracer):
        with tracer.span("generate_aligned_pair"):
            aligned = generate_aligned_pair(
                scale=scale, random_state=random_state
            )
    else:
        aligned = generate_aligned_pair(scale=scale, random_state=random_state)
    stats = {
        network.name: network.stats() for network in aligned.networks
    }
    n_anchors = len(aligned.anchors[0])
    text = format_stats_table(
        stats, title="Table I — properties of the synthetic aligned networks"
    )
    text += f"\n\nanchor links (target ↔ source): {n_anchors:,}"
    return {"stats": stats, "anchors": n_anchors, "text": text}


def main(scale: int = 300, random_state: RandomState = 17) -> None:
    """Print the Table I reproduction."""
    print(run_table1(scale=scale, random_state=random_state)["text"])


if __name__ == "__main__":
    main()
