"""Registry mapping experiment names to their runners."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.observability.logging import get_logger, run_context
from repro.observability.report import (
    RunReport,
    build_run_report,
    default_report_path,
)
from repro.observability.tracer import Tracer

_log = get_logger("repro.experiments")
from repro.experiments.figure3 import main as figure3_main, run_figure3
from repro.experiments.figure4 import main as figure4_main, run_figure4
from repro.experiments.figure5 import main as figure5_main, run_figure5
from repro.experiments.streaming_staleness import (
    main as streaming_staleness_main,
    run_streaming_staleness,
)
from repro.experiments.table1 import main as table1_main, run_table1
from repro.experiments.table2 import main as table2_main, run_table2

EXPERIMENTS: Dict[str, Callable[..., None]] = {
    "table1": table1_main,
    "table2": table2_main,
    "figure3": figure3_main,
    "figure4": figure4_main,
    "figure5": figure5_main,
    "streaming-staleness": streaming_staleness_main,
}
"""Experiment name → printing entry point."""

RESULT_RUNNERS: Dict[str, Callable[..., dict]] = {
    "table1": run_table1,
    "table2": run_table2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "streaming-staleness": run_streaming_staleness,
}
"""Experiment name → structured-result runner (used for --json output)."""


def get_experiment(name: str) -> Callable[..., None]:
    """Look up an experiment's printing runner by name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def get_result_runner(name: str) -> Callable[..., dict]:
    """Look up an experiment's structured-result runner by name."""
    try:
        return RESULT_RUNNERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {sorted(RESULT_RUNNERS)}"
        ) from None


def run_with_report(
    name: str,
    report_path: Optional[str] = None,
    registry: Optional[Any] = None,
    **kwargs: Any,
) -> Tuple[dict, RunReport]:
    """Run an experiment under a live tracer and archive its run report.

    Every registered runner accepts a ``tracer`` keyword, so the whole run
    — data generation, per-fold fits, CCCP rounds, prox/SVD spans — lands
    in one schema-versioned JSON report written to ``report_path``
    (default: ``results/run_report.<name>.json``).  Returns the runner's
    structured result and the report.

    The run executes under a fresh **run id**
    (:func:`~repro.observability.logging.run_context`), so structured log
    records emitted anywhere inside the solve carry the same ``run_id``,
    and the id is recorded in the report's meta.  Passing a live
    ``registry`` (:class:`~repro.observability.MetricsRegistry`)
    additionally publishes the solver series — ``solver.svt_seconds``,
    ``solver.objective``, ``solver.rank``, iteration/round counters — for
    scraping or a textfile collector.
    """
    runner = get_result_runner(name)
    tracer = Tracer(registry=registry)
    with run_context() as run_id:
        _log.info("experiment started", experiment=name, **_loggable(kwargs))
        with tracer.span(f"experiment:{name}"):
            result = runner(tracer=tracer, **kwargs)
        _log.info("experiment finished", experiment=name)
    meta = {"experiment": name, "run_id": run_id}
    meta.update(_loggable(kwargs))
    report = build_run_report(tracer, name=name, meta=meta)
    report.save(report_path or default_report_path(name))
    return result, report


def _loggable(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """The JSON-scalar subset of a kwargs dict (for meta and log fields)."""
    return {
        key: value
        for key, value in kwargs.items()
        if isinstance(value, (int, float, str, bool)) or value is None
    }
