"""JSON-serializable views of experiment results.

The ``run_*`` functions return dicts that mix plain values with result
objects (:class:`~repro.evaluation.anchor_sweep.AnchorSweepResult`, numpy
arrays).  These helpers flatten everything into JSON-compatible structures
so experiment outputs can be archived or diffed across runs
(``python -m repro.experiments table2 --json out.json``).
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from repro.evaluation.anchor_sweep import AnchorSweepResult
from repro.evaluation.harness import EvaluationResult


def sweep_to_dict(sweep: AnchorSweepResult) -> Dict[str, Any]:
    """Flatten an anchor sweep into nested dicts of per-fold metrics."""
    return {
        "ratios": list(sweep.ratios),
        "methods": {
            method: {
                str(ratio): evaluation_to_dict(sweep.cell(method, ratio))
                for ratio in sweep.ratios
            }
            for method in sweep.methods
        },
    }


def evaluation_to_dict(result: EvaluationResult) -> Dict[str, Any]:
    """Flatten one cross-validation result."""
    return {
        "model": result.model_name,
        "metrics": {
            metric: {
                "values": [float(v) for v in values],
                "mean": result.mean(metric),
                "std": result.std(metric),
            }
            for metric, values in result.metrics.items()
        },
    }


def to_jsonable(value: Any) -> Any:
    """Recursively convert an experiment result into JSON-compatible types.

    Handles numpy scalars/arrays, the evaluation result objects, tuples and
    dict keys that are not strings; anything else unrecognized is
    stringified rather than failing, so archiving never loses a run.
    """
    if isinstance(value, AnchorSweepResult):
        return sweep_to_dict(value)
    if isinstance(value, EvaluationResult):
        return evaluation_to_dict(value)
    if isinstance(value, dict):
        return {_key(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def dump_result(result: Dict[str, Any], path: str) -> None:
    """Write an experiment result dict to ``path`` as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_jsonable(result), handle, indent=2, sort_keys=True)
