"""Bridge from an experiment run to the serving artifact store.

``python -m repro.experiments <name> --publish [STORE_DIR]`` ends a
reproduction run by fitting the paper's full SLAMPRED model on the same
synthetic world the experiment was configured with (scale and seed) and
publishing the fitted predictor — together with the target's social
structure, so serving can exclude already-known links — into an
:class:`~repro.serving.artifacts.ArtifactStore`.  The manifest records
which experiment produced the artifact, closing the loop from
"reproduce a table" to "serve the model that table measured".
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.models.base import TransferTask
from repro.models.slampred import SlamPred
from repro.networks.social import SocialGraph
from repro.observability.tracer import Tracer
from repro.serving.artifacts import ArtifactStore
from repro.synth.generator import generate_aligned_pair
from repro.utils.rng import RandomState

DEFAULT_STORE_DIR = "results/artifacts"
"""Where ``--publish`` writes when no store directory is given."""


def publish_reference_fit(
    store_dir: str = DEFAULT_STORE_DIR,
    scale: int = 120,
    random_state: RandomState = 17,
    experiment: Optional[str] = None,
    inner_iterations: int = 25,
    outer_iterations: int = 40,
    tracer: Optional[Tracer] = None,
) -> Tuple[int, ArtifactStore]:
    """Fit the full SLAMPRED on the experiment's world and publish it.

    The world is regenerated from ``scale``/``random_state`` exactly as the
    experiment harness builds it; the model trains on the *complete* target
    structure (serving wants tomorrow's links given everything known
    today, not a cross-validation fold).  Returns the published version
    number and the store.
    """
    aligned = generate_aligned_pair(scale=scale, random_state=random_state)
    task = TransferTask.from_aligned(aligned, random_state=random_state)
    model = SlamPred(
        inner_iterations=inner_iterations,
        outer_iterations=outer_iterations,
        tracer=tracer,
    ).fit(task)
    graph = SocialGraph.from_network(aligned.target)
    store = ArtifactStore(store_dir)
    meta = {
        "source": "experiment",
        "scale": scale,
        "seed": random_state if isinstance(random_state, int) else None,
    }
    if experiment is not None:
        meta["experiment"] = experiment
    version = store.publish(model, graph=graph, meta=meta)
    return version, store
