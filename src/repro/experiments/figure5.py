"""Figure 5 — effect of α_t with α_s fixed.

The paper fixes the source intimacy weight α_s ∈ {0.0, 1.0} and sweeps the
target weight α_t over {0.0, 0.2, …, 1.0}, observing an inverted-U:
incorporating the target's attribute intimacy helps up to a point, after
which over-weighting it makes the model overfit the attributes.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments._alpha_sweep import DEFAULT_ALPHAS, run_alpha_sweep
from repro.observability.tracer import Tracer
from repro.utils.rng import RandomState


def run_figure5(
    fixed_alpha_s: Sequence[float] = (0.0, 1.0),
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    scale: int = 100,
    n_folds: int = 3,
    precision_k: int = 20,
    random_state: RandomState = 17,
    tracer: Tracer = None,
) -> Dict:
    """Run the α_t sweep (see :func:`run_alpha_sweep` for the output shape)."""
    return run_alpha_sweep(
        "alpha_t",
        fixed_values=fixed_alpha_s,
        alphas=alphas,
        scale=scale,
        n_folds=n_folds,
        precision_k=precision_k,
        random_state=random_state,
        tracer=tracer,
    )


def main(**kwargs) -> None:
    """Print the Figure 5 reproduction."""
    print(run_figure5(**kwargs)["text"])


if __name__ == "__main__":
    main()
