"""Figure 4 — effect of α_s with α_t fixed.

The paper fixes the target intimacy weight α_t ∈ {0.0, 1.0} and sweeps the
source weight α_s over {0.0, 0.2, …, 1.0}, observing:

* with α_t = 0, increasing α_s slightly degrades performance (transferred
  information alone can't replace the target's own attributes);
* with α_t = 1, moderate α_s helps before overfitting to the source.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments._alpha_sweep import DEFAULT_ALPHAS, run_alpha_sweep
from repro.observability.tracer import Tracer
from repro.utils.rng import RandomState


def run_figure4(
    fixed_alpha_t: Sequence[float] = (0.0, 1.0),
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    scale: int = 100,
    n_folds: int = 3,
    precision_k: int = 20,
    random_state: RandomState = 17,
    tracer: Tracer = None,
) -> Dict:
    """Run the α_s sweep (see :func:`run_alpha_sweep` for the output shape)."""
    return run_alpha_sweep(
        "alpha_s",
        fixed_values=fixed_alpha_t,
        alphas=alphas,
        scale=scale,
        n_folds=n_folds,
        precision_k=precision_k,
        random_state=random_state,
        tracer=tracer,
    )


def main(**kwargs) -> None:
    """Print the Figure 4 reproduction."""
    print(run_figure4(**kwargs)["text"])


if __name__ == "__main__":
    main()
