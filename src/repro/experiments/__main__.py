"""Command-line entry point: ``python -m repro.experiments <name>``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    get_result_runner,
    run_with_report,
)
from repro.experiments.publishing import (
    DEFAULT_STORE_DIR,
    publish_reference_fit,
)
from repro.experiments.serialize import dump_result
from repro.observability.metrics import MetricsRegistry
from repro.observability.profiler import ContinuousProfiler
from repro.observability.report import default_report_path


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the experiments CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce a table or figure of the SLAMPRED paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate ('all' runs every one)",
    )
    parser.add_argument(
        "--scale", type=int, default=None, help="synthetic population size"
    )
    parser.add_argument(
        "--folds", type=int, default=None, help="cross-validation folds"
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="random seed"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the structured result to PATH as JSON "
        "(with 'all', one file per experiment: PATH.<name>.json)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        nargs="?",
        const="",
        default=None,
        help="trace the run and write a schema-versioned telemetry run "
        "report (default location: results/run_report.<name>.json; "
        "with 'all', PATH is treated as a prefix)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="publish solver metrics (solver.svt_seconds, solver.objective, "
        "solver.rank, iteration counters) into a registry and write it to "
        "PATH as Prometheus text after the run (textfile-collector style; "
        "implies --report)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the continuous self-profiler during the experiment and "
        "print a table of wall-clock samples attributed to active span "
        "labels (solver rounds, SVT, per-shard fits)",
    )
    parser.add_argument(
        "--publish",
        metavar="STORE_DIR",
        nargs="?",
        const=DEFAULT_STORE_DIR,
        default=None,
        help="after the run, fit the full SLAMPRED on the experiment's "
        "world (same --scale/--seed) and publish the predictor into this "
        f"serving artifact store (default: {DEFAULT_STORE_DIR}; query it "
        "with 'python -m repro.serving serve')",
    )
    return parser


_NO_FOLDS = ("table1", "figure3", "streaming-staleness")


def main(argv=None) -> int:
    """Run the chosen experiment(s) and print the output."""
    args = build_parser().parse_args(argv)
    base_kwargs = {}
    if args.scale is not None:
        base_kwargs["scale"] = args.scale
    if args.folds is not None:
        base_kwargs["n_folds"] = args.folds
    if args.seed is not None:
        base_kwargs["random_state"] = args.seed
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    metrics_registry = None
    if args.metrics is not None:
        metrics_registry = MetricsRegistry()
        if args.report is None:
            args.report = ""  # --metrics implies the traced --report path
    profiler = None
    if args.profile:
        # Unlabeled samples are kept: without --report the experiment may
        # run with a null tracer, so leaf frames alone still tell where
        # the wall clock went.
        profiler = ContinuousProfiler(include_unlabeled=True).start()
    for index, name in enumerate(names):
        if index:
            print("\n" + "=" * 72 + "\n")
        kwargs = dict(base_kwargs)
        if name in _NO_FOLDS:
            kwargs.pop("n_folds", None)
        if args.json is None and args.report is None:
            get_experiment(name)(**kwargs)
            continue
        if args.report is not None:
            report_path = _report_path(args.report, name, args.experiment)
            result, report = run_with_report(
                name, report_path, registry=metrics_registry, **kwargs
            )
            print(result.get("text", result.get("auc_text", "")))
            print()
            print(report.summary())
            print(f"[run report written {report_path}]")
        else:
            result = get_result_runner(name)(**kwargs)
            print(result.get("text", result.get("auc_text", "")))
        if args.json is not None:
            path = (
                args.json
                if args.experiment != "all"
                else f"{args.json}.{name}.json"
            )
            dump_result(result, path)
            print(f"[written {path}]")
    if profiler is not None:
        profiler.stop()
        print()
        print(profiler.render_table())
    if metrics_registry is not None:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(metrics_registry.render())
        print(f"[solver metrics written {args.metrics}]")
    if args.publish is not None:
        publish_kwargs = {}
        if args.scale is not None:
            publish_kwargs["scale"] = args.scale
        if args.seed is not None:
            publish_kwargs["random_state"] = args.seed
        version, store = publish_reference_fit(
            args.publish, experiment=args.experiment, **publish_kwargs
        )
        print(f"[published SLAMPRED v{version:04d} -> {store.path(version)}]")
    return 0


def _report_path(flag_value: str, name: str, chosen: str) -> str:
    """Resolve the --report destination for one experiment."""
    if not flag_value:
        return default_report_path(name)
    if chosen == "all":
        return f"{flag_value}.{name}.json"
    return flag_value


if __name__ == "__main__":
    sys.exit(main())
