"""Shared machinery for the α_t / α_s parameter-analysis figures."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.evaluation.harness import cross_validate
from repro.evaluation.splits import k_fold_link_splits
from repro.models.slampred import SlamPred

from repro.networks.social import SocialGraph
from repro.observability.tracer import Tracer
from repro.synth.generator import generate_aligned_pair
from repro.utils.rng import RandomState, ensure_rng

DEFAULT_ALPHAS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def run_alpha_sweep(
    sweep_parameter: str,
    fixed_values: Sequence[float],
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    scale: int = 100,
    n_folds: int = 3,
    precision_k: int = 20,
    random_state: RandomState = 17,
    tracer: Tracer = None,
) -> Dict:
    """Sweep one intimacy weight while fixing the other.

    Parameters
    ----------
    sweep_parameter:
        ``"alpha_s"`` (Figure 4: α_t fixed, α_s swept) or ``"alpha_t"``
        (Figure 5: α_s fixed, α_t swept).
    fixed_values:
        Values of the *fixed* parameter — the paper uses {0.0, 1.0}, one
        panel pair each.

    Returns
    -------
    dict with ``alphas``, ``curves`` mapping
    ``(fixed_value, metric) -> list of means`` and ``text``.
    """
    if sweep_parameter not in ("alpha_s", "alpha_t"):
        raise ValueError(
            f"sweep_parameter must be 'alpha_s' or 'alpha_t', "
            f"got {sweep_parameter!r}"
        )
    rng = ensure_rng(random_state)
    aligned = generate_aligned_pair(scale=scale, random_state=rng)
    splits = k_fold_link_splits(
        SocialGraph.from_network(aligned.target),
        n_folds=n_folds,
        random_state=rng,
    )
    precision_metric = f"precision@{precision_k}"
    curves: Dict[Tuple[float, str], List[float]] = {}
    for fixed in fixed_values:
        for metric in ("auc", precision_metric):
            curves[(fixed, metric)] = []
        for alpha in alphas:
            if sweep_parameter == "alpha_s":
                alpha_t, alpha_s = fixed, alpha
            else:
                alpha_t, alpha_s = alpha, fixed
            result = cross_validate(
                lambda: SlamPred(alpha_target=alpha_t, alpha_sources=alpha_s),
                aligned,
                splits,
                random_state=rng,
                precision_k=precision_k,
                tracer=tracer,
            )
            for metric in ("auc", precision_metric):
                curves[(fixed, metric)].append(result.mean(metric))
    text = _render(sweep_parameter, fixed_values, alphas, curves)
    return {
        "alphas": list(alphas),
        "curves": curves,
        "precision_metric": precision_metric,
        "text": text,
    }


def _render(sweep_parameter, fixed_values, alphas, curves) -> str:
    fixed_name = "alpha_t" if sweep_parameter == "alpha_s" else "alpha_s"
    lines = [f"Parameter analysis: sweeping {sweep_parameter}"]
    header = f"{sweep_parameter:>9}"
    for alpha in alphas:
        header += f"  {alpha:>7.1f}"
    for fixed in fixed_values:
        for metric in sorted({m for (f, m) in curves if f == fixed}):
            lines.append(f"\n{fixed_name} = {fixed}, metric = {metric}")
            lines.append(header)
            row = f"{'value':>9}"
            for value in curves[(fixed, metric)]:
                row += f"  {value:7.3f}"
            lines.append(row)
    return "\n".join(lines)
