"""Paper experiment reproductions.

One module per table / figure of the paper's evaluation section:

* :mod:`repro.experiments.table1` — dataset statistics;
* :mod:`repro.experiments.table2` — methods × anchor ratios (AUC, P@100);
* :mod:`repro.experiments.figure3` — CCCP convergence curves;
* :mod:`repro.experiments.figure4` — α_s sweep at fixed α_t;
* :mod:`repro.experiments.figure5` — α_t sweep at fixed α_s.

Run from the command line::

    python -m repro.experiments table2 --scale 120 --folds 3
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5

__all__ = [
    "EXPERIMENTS",
    "get_experiment",
    "run_table1",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
]
