"""Table II — method comparison across anchor-link sampling ratios.

Reproduces the paper's main result table: twelve methods evaluated by AUC
and Precision@k on 5-fold link splits, with the anchor links between the
target and the source sampled at ratios 0.0 … 1.0.

The paper's headline observations this reproduction preserves:

* SLAMPRED dominates and improves steadily with the anchor ratio;
* SLAMPRED ≥ SLAMPRED-T ≥ SLAMPRED-H;
* methods without domain adaptation (PL, SCAN) do not benefit reliably
  from more anchors;
* target-only methods and the unsupervised predictors are flat in the
  ratio.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.evaluation.anchor_sweep import (
    AnchorSweepResult,
    default_method_specs,
    run_anchor_sweep,
)
from repro.evaluation.reporting import format_sweep_table
from repro.observability.tracer import Tracer
from repro.synth.generator import generate_aligned_pair
from repro.utils.rng import RandomState

FAST_RATIOS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


def run_table2(
    scale: int = 120,
    ratios: Sequence[float] = FAST_RATIOS,
    n_folds: int = 3,
    precision_k: int = 20,
    random_state: RandomState = 17,
    tracer: Tracer = None,
) -> Dict:
    """Run the anchor sweep and render both metric tables.

    Default parameters are laptop-scale (the full 11-ratio 5-fold sweep at
    scale 300 takes substantially longer); pass ``ratios=DEFAULT_RATIOS`` and
    ``n_folds=5`` for the paper-shaped run.

    Returns ``sweep`` (the :class:`AnchorSweepResult`), ``auc_text`` and
    ``precision_text``.
    """
    aligned = generate_aligned_pair(scale=scale, random_state=random_state)
    sweep: AnchorSweepResult = run_anchor_sweep(
        aligned,
        methods=default_method_specs(),
        ratios=ratios,
        n_folds=n_folds,
        precision_k=precision_k,
        random_state=random_state,
        tracer=tracer,
    )
    auc_text = format_sweep_table(
        sweep, "auc", title="Table II (AUC) — methods × anchor ratio"
    )
    precision_metric = f"precision@{precision_k}"
    precision_text = format_sweep_table(
        sweep,
        precision_metric,
        title=f"Table II (Precision@{precision_k}) — methods × anchor ratio",
    )
    return {
        "sweep": sweep,
        "auc_text": auc_text,
        "precision_text": precision_text,
        "precision_metric": precision_metric,
    }


def main(**kwargs) -> None:
    """Print both Table II reproductions."""
    result = run_table2(**kwargs)
    print(result["auc_text"])
    print()
    print(result["precision_text"])


if __name__ == "__main__":
    main()
