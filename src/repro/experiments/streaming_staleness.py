"""Streaming staleness — refit-cadence sweep on temporal slices.

Not a figure from the source paper: this experiment measures the refit
cadence the streaming subsystem (DESIGN.md §16) should run at, instead of
assuming freshness equals quality.  An evolving planted-community
sequence is streamed through the real delta/refit machinery; each row of
the output is one cadence, its measured held-out AUC on newly-formed
links, and the staleness it tolerated.
"""

from __future__ import annotations

from typing import Dict

from repro.observability.tracer import NullTracer, Tracer
from repro.streaming.evaluation import staleness_auc_sweep
from repro.utils.rng import RandomState


def run_streaming_staleness(
    scale: int = 48,
    n_steps: int = 6,
    cadences=(1, 2, 4),
    n_negatives: int = 200,
    random_state: RandomState = 7,
    tracer: Tracer = None,
) -> Dict:
    """Run the cadence sweep and return its structured result.

    ``scale`` is the node count (CLI-uniform naming); the ``text`` key
    renders the cadence → AUC/staleness table.
    """
    tracer = tracer or NullTracer()
    with tracer.span("streaming_staleness"):
        sweep = staleness_auc_sweep(
            n_nodes=scale,
            n_steps=n_steps,
            cadences=tuple(cadences),
            n_negatives=n_negatives,
            random_state=random_state,
        )
    sweep["text"] = _render(sweep)
    return sweep


def _render(sweep: Dict) -> str:
    lines = [
        "Streaming staleness — refit cadence vs held-out AUC",
        f"({sweep['n_nodes']} nodes, {sweep['n_steps']} snapshots, "
        f"persistence {sweep['persistence']})",
        "cadence  refits  mean_staleness  mean_AUC",
    ]
    for row in sweep["rows"]:
        lines.append(
            f"{row['cadence']:7d}  {row['refits']:6d}  "
            f"{row['mean_staleness_steps']:14.2f}  {row['mean_auc']:.4f}"
        )
    return "\n".join(lines)


def main(**kwargs) -> None:
    """Print the streaming staleness sweep."""
    result = run_streaming_staleness(**kwargs)
    print(result["text"])


if __name__ == "__main__":
    main()
