"""Attribute (post / check-in / word / hour) generation.

Each community has a *profile*: a handful of preferred venues, a preferred
topic vocabulary and preferred active hours.  A user's posts draw from their
community's profile with the configured affinity and from the global pool
otherwise.  This realizes the homophily assumption the paper's intimacy
features rely on: users of the same community — who are also more likely to
be linked — check in at the same places, tweet at the same hours and use the
same words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.synth.config import AttributeConfig
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_integer


@dataclass(frozen=True)
class CommunityProfile:
    """Attribute preferences of one community."""

    community: int
    preferred_locations: Tuple[int, ...]
    preferred_words: Tuple[int, ...]
    preferred_hours: Tuple[int, ...]


@dataclass(frozen=True)
class PersonalProfile:
    """A person's own attribute signature, shared by all their accounts.

    Small favorite pools (a couple of venues, a handful of words, a narrow
    active window) that persist across networks — the identity signal that
    anchor-link prediction recovers.
    """

    person: int
    favorite_locations: Tuple[int, ...]
    favorite_words: Tuple[int, ...]
    favorite_hours: Tuple[int, ...]


def build_personal_profiles(
    n_persons: int,
    n_locations: int,
    vocabulary_size: int,
    random_state: RandomState = None,
) -> List[PersonalProfile]:
    """Draw one personal signature per person from the world's pools."""
    n_persons = check_integer(n_persons, "n_persons", minimum=0)
    n_locations = check_integer(n_locations, "n_locations", minimum=1)
    vocabulary_size = check_integer(vocabulary_size, "vocabulary_size", minimum=1)
    rng = ensure_rng(random_state)
    profiles = []
    n_fav_locations = min(2, n_locations)
    n_fav_words = min(4, vocabulary_size)
    for person in range(n_persons):
        locations = rng.choice(n_locations, size=n_fav_locations, replace=False)
        words = rng.choice(vocabulary_size, size=n_fav_words, replace=False)
        start_hour = int(rng.integers(0, 24))
        hours = (start_hour, (start_hour + 1) % 24)
        profiles.append(
            PersonalProfile(
                person=person,
                favorite_locations=tuple(int(l) for l in locations),
                favorite_words=tuple(int(w) for w in words),
                favorite_hours=hours,
            )
        )
    return profiles


def build_profiles(
    n_communities: int,
    n_locations: int,
    vocabulary_size: int,
    random_state: RandomState = None,
) -> List[CommunityProfile]:
    """Draw a profile per community from the world's venues / vocab / hours.

    Profiles of different communities overlap only by chance, so attribute
    similarity is informative about community co-membership.
    """
    n_communities = check_integer(n_communities, "n_communities", minimum=1)
    n_locations = check_integer(n_locations, "n_locations", minimum=1)
    vocabulary_size = check_integer(vocabulary_size, "vocabulary_size", minimum=1)
    rng = ensure_rng(random_state)
    profiles = []
    n_pref_locations = max(1, n_locations // n_communities)
    n_pref_words = max(3, vocabulary_size // n_communities)
    for community in range(n_communities):
        locations = rng.choice(n_locations, size=n_pref_locations, replace=False)
        words = rng.choice(vocabulary_size, size=n_pref_words, replace=False)
        start_hour = int(rng.integers(0, 24))
        hours = tuple((start_hour + offset) % 24 for offset in range(6))
        profiles.append(
            CommunityProfile(
                community=community,
                preferred_locations=tuple(int(l) for l in locations),
                preferred_words=tuple(int(w) for w in words),
                preferred_hours=hours,
            )
        )
    return profiles


class AttributeGenerator:
    """Populate a network's posts from community profiles.

    Parameters
    ----------
    profiles:
        One :class:`CommunityProfile` per community.
    n_locations, vocabulary_size:
        World-level pools used for off-profile draws.
    config:
        Intensity settings (:class:`~repro.synth.config.AttributeConfig`).
    """

    def __init__(
        self,
        profiles: Sequence[CommunityProfile],
        n_locations: int,
        vocabulary_size: int,
        config: AttributeConfig,
    ):
        self._profiles = list(profiles)
        self._n_locations = check_integer(n_locations, "n_locations", minimum=1)
        self._vocabulary_size = check_integer(
            vocabulary_size, "vocabulary_size", minimum=1
        )
        self._config = config.validate()

    def populate(
        self,
        network: HeterogeneousNetwork,
        communities: Sequence[int],
        random_state: RandomState = None,
        personal_profiles: Sequence["PersonalProfile"] = None,
    ) -> None:
        """Add locations and posts to ``network``.

        Parameters
        ----------
        network:
            Network with its users already registered.
        communities:
            Community label of each user, in ``network.user_ids`` order.
        personal_profiles:
            Optional per-user personal signatures (same order as
            ``communities``); required when the config's
            ``personal_affinity`` is non-zero.
        """
        if len(communities) != network.n_users:
            raise ValueError(
                f"{len(communities)} community labels for "
                f"{network.n_users} users"
            )
        if personal_profiles is None:
            if self._config.personal_affinity > 0:
                raise ValueError(
                    "personal_affinity > 0 requires personal_profiles"
                )
            personal_profiles = [None] * network.n_users
        elif len(personal_profiles) != network.n_users:
            raise ValueError(
                f"{len(personal_profiles)} personal profiles for "
                f"{network.n_users} users"
            )
        rng = ensure_rng(random_state)
        for location_id in range(self._n_locations):
            network.add_location(
                location_id,
                latitude=float(rng.uniform(-90, 90)),
                longitude=float(rng.uniform(-180, 180)),
            )
        trending = self._draw_trending_pools(rng)
        config = self._config
        post_id = 0
        for user_id, community, personal in zip(
            network.user_ids, communities, personal_profiles
        ):
            profile = self._profiles[int(community)]
            n_posts = int(rng.poisson(config.posts_per_user))
            for _ in range(n_posts):
                word_ids = self._draw_words(profile, trending, personal, rng)
                hour = self._draw_hour(profile, trending, personal, rng)
                location_id = self._draw_location(profile, trending, personal, rng)
                network.add_post(post_id, user_id, word_ids, hour, location_id)
                post_id += 1

    def _draw_trending_pools(self, rng: np.random.Generator) -> dict:
        """This network's platform-trending venues, words and hours.

        Drawn once per :meth:`populate` call, so every network gets its own
        pools — the source of the cross-network domain difference.
        """
        n_trend_locations = max(1, self._n_locations // 8)
        n_trend_words = max(3, self._vocabulary_size // 10)
        start_hour = int(rng.integers(0, 24))
        return {
            "locations": rng.choice(
                self._n_locations, size=n_trend_locations, replace=False
            ),
            "words": rng.choice(
                self._vocabulary_size, size=n_trend_words, replace=False
            ),
            "hours": [(start_hour + offset) % 24 for offset in range(4)],
        }

    def _draw_words(
        self,
        profile: CommunityProfile,
        trending: dict,
        personal,
        rng: np.random.Generator,
    ) -> List[int]:
        config = self._config
        words = []
        for _ in range(config.words_per_post):
            if rng.random() < config.platform_bias:
                words.append(int(rng.choice(trending["words"])))
            elif personal is not None and rng.random() < config.personal_affinity:
                words.append(int(rng.choice(personal.favorite_words)))
            elif rng.random() < config.community_word_affinity:
                words.append(int(rng.choice(profile.preferred_words)))
            else:
                words.append(int(rng.integers(0, self._vocabulary_size)))
        return words

    def _draw_hour(
        self,
        profile: CommunityProfile,
        trending: dict,
        personal,
        rng: np.random.Generator,
    ) -> int:
        config = self._config
        if rng.random() < config.platform_bias:
            return int(rng.choice(trending["hours"]))
        if personal is not None and rng.random() < config.personal_affinity:
            return int(rng.choice(personal.favorite_hours))
        if rng.random() < config.community_hour_affinity:
            return int(rng.choice(profile.preferred_hours))
        return int(rng.integers(0, 24))

    def _draw_location(
        self,
        profile: CommunityProfile,
        trending: dict,
        personal,
        rng: np.random.Generator,
    ):
        config = self._config
        if rng.random() >= config.checkin_probability:
            return None
        if rng.random() < config.platform_bias:
            return int(rng.choice(trending["locations"]))
        if personal is not None and rng.random() < config.personal_affinity:
            return int(rng.choice(personal.favorite_locations))
        if rng.random() < config.community_location_affinity:
            return int(rng.choice(profile.preferred_locations))
        return int(rng.integers(0, self._n_locations))
