"""Planted community structure.

The paper motivates the low-rank regularizer by the observation that "users
tend to form densely connected local communities".  The generator plants that
structure explicitly: persons are partitioned into communities, and links
appear with probability ``p_in`` inside a community and ``p_out`` across
communities (a planted-partition / stochastic block model).  The resulting
adjacency matrices are both sparse and approximately low-rank, which is the
regime SLAMPRED's regularizers target.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_integer, check_probability


def assign_communities(
    n_persons: int, n_communities: int, random_state: RandomState = None
) -> np.ndarray:
    """Assign each person a community label in ``0..n_communities-1``.

    Labels are balanced (round-robin sizes) and then shuffled, so no
    community is empty when ``n_persons >= n_communities``.
    """
    n_persons = check_integer(n_persons, "n_persons", minimum=0)
    n_communities = check_integer(n_communities, "n_communities", minimum=1)
    rng = ensure_rng(random_state)
    labels = np.arange(n_persons) % n_communities
    rng.shuffle(labels)
    return labels


def planted_partition_links(
    labels: Sequence[int],
    p_in: float,
    p_out: float,
    random_state: RandomState = None,
) -> List[Tuple[int, int]]:
    """Sample undirected links under the planted-partition model.

    Parameters
    ----------
    labels:
        Community label per node (dense indices).
    p_in:
        Link probability for same-community pairs.
    p_out:
        Link probability for cross-community pairs.

    Returns
    -------
    list of (i, j) with i < j.
    """
    p_in = check_probability(p_in, "p_in")
    p_out = check_probability(p_out, "p_out")
    labels = np.asarray(labels)
    rng = ensure_rng(random_state)
    n = labels.shape[0]
    rows, cols = np.triu_indices(n, k=1)
    same = labels[rows] == labels[cols]
    probs = np.where(same, p_in, p_out)
    draws = rng.random(rows.shape[0])
    mask = draws < probs
    return list(zip(rows[mask].tolist(), cols[mask].tolist()))


def shared_link_matrix(
    labels: Sequence[int],
    p_in_shared: float,
    p_out_shared: float,
    random_state: RandomState = None,
) -> np.ndarray:
    """World-level shared link events as a boolean symmetric matrix.

    Entry ``(i, j)`` is ``True`` when the person pair carries a *shared*
    friendship event realized in every network both persons participate in —
    the mechanism behind the generator's cross-network link correlation.
    """
    p_in_shared = check_probability(p_in_shared, "p_in_shared")
    p_out_shared = check_probability(p_out_shared, "p_out_shared")
    labels = np.asarray(labels)
    rng = ensure_rng(random_state)
    n = labels.shape[0]
    shared = np.zeros((n, n), dtype=bool)  # dense-ok: synthetic generator
    rows, cols = np.triu_indices(n, k=1)
    same = labels[rows] == labels[cols]
    probs = np.where(same, p_in_shared, p_out_shared)
    mask = rng.random(rows.shape[0]) < probs
    shared[rows[mask], cols[mask]] = True
    shared[cols[mask], rows[mask]] = True
    return shared


def correlated_partition_links(
    labels: Sequence[int],
    p_in: float,
    p_out: float,
    shared: np.ndarray,
    p_in_shared: float,
    p_out_shared: float,
    random_state: RandomState = None,
) -> List[Tuple[int, int]]:
    """Planted-partition links mixed with shared world-level events.

    A pair links when its shared event fired *or* an independent
    network-local draw succeeds with the residual probability
    ``(p − p_shared) / (1 − p_shared)``, which keeps the marginal link
    probability at exactly ``p`` while correlating networks that consume
    the same ``shared`` matrix.

    Parameters
    ----------
    labels:
        Community label per node (dense network indices).
    p_in, p_out:
        This network's marginal link probabilities.
    shared:
        Boolean matrix of shared events, indexed by *network* node order
        (callers re-index the world matrix through their participant list).
    p_in_shared, p_out_shared:
        Probabilities the shared events were drawn with; must not exceed
        the corresponding marginals.
    """
    p_in = check_probability(p_in, "p_in")
    p_out = check_probability(p_out, "p_out")
    p_in_shared = check_probability(p_in_shared, "p_in_shared")
    p_out_shared = check_probability(p_out_shared, "p_out_shared")
    if p_in_shared > p_in or p_out_shared > p_out:
        raise ValueError(
            "shared probabilities must not exceed the marginal link "
            f"probabilities: got shared ({p_in_shared}, {p_out_shared}) vs "
            f"marginal ({p_in}, {p_out})"
        )
    labels = np.asarray(labels)
    rng = ensure_rng(random_state)
    n = labels.shape[0]
    rows, cols = np.triu_indices(n, k=1)
    same = labels[rows] == labels[cols]
    p_net = np.where(same, p_in, p_out)
    p_sh = np.where(same, p_in_shared, p_out_shared)
    with np.errstate(divide="ignore", invalid="ignore"):
        p_own = np.where(p_sh < 1.0, (p_net - p_sh) / (1.0 - p_sh), 0.0)
    fired = shared[rows, cols] | (rng.random(rows.shape[0]) < p_own)
    return list(zip(rows[fired].tolist(), cols[fired].tolist()))


def community_overlap_matrix(labels: Sequence[int]) -> np.ndarray:
    """Binary matrix with 1 where two nodes share a community (zero diagonal).

    Used by tests to verify that generated adjacency correlates with the
    planted structure.
    """
    labels = np.asarray(labels)
    overlap = (labels[:, None] == labels[None, :]).astype(float)
    np.fill_diagonal(overlap, 0.0)
    return overlap
