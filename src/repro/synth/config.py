"""Configuration dataclasses for the synthetic world generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_integer,
    check_non_negative,
    check_probability,
)


@dataclass
class AttributeConfig:
    """How heavily a network's users generate attribute data.

    Mirrors the asymmetry of the paper's dataset: Twitter users write two
    orders of magnitude more posts than Foursquare users, while Foursquare
    posts always carry a check-in.

    ``platform_bias`` is the probability that a draw (venue / word / hour)
    comes from the network's own *platform-trending* pool instead of the
    user's community profile or the global pool.  Trending pools differ per
    network, so the bias realizes the paper's *domain difference*: attribute
    distributions shift between networks in a way raw feature merging
    inherits but label-supervised projection can suppress.

    ``personal_affinity`` is the probability that a draw comes from the
    *person's own* favorite pool — a world-level signature shared by all of
    that person's accounts.  It is what makes anchor-link prediction
    (:mod:`repro.alignment`) possible: without it, users are only
    distinguishable up to their community.
    """

    posts_per_user: float = 8.0
    checkin_probability: float = 0.6
    words_per_post: int = 6
    community_location_affinity: float = 0.8
    community_word_affinity: float = 0.7
    community_hour_affinity: float = 0.7
    platform_bias: float = 0.0
    personal_affinity: float = 0.0

    def validate(self) -> "AttributeConfig":
        """Raise :class:`ConfigurationError` on invalid values; return self."""
        check_non_negative(self.posts_per_user, "posts_per_user")
        check_probability(self.checkin_probability, "checkin_probability")
        check_integer(self.words_per_post, "words_per_post", minimum=0)
        check_probability(
            self.community_location_affinity, "community_location_affinity"
        )
        check_probability(self.community_word_affinity, "community_word_affinity")
        check_probability(self.community_hour_affinity, "community_hour_affinity")
        check_probability(self.platform_bias, "platform_bias")
        check_probability(self.personal_affinity, "personal_affinity")
        return self


@dataclass
class NetworkConfig:
    """Per-network structure settings.

    ``participation`` is the fraction of the world's persons who have an
    account in this network; ``p_in`` / ``p_out`` are the planted-partition
    link probabilities inside / across communities.
    """

    name: str = "network"
    participation: float = 1.0
    p_in: float = 0.25
    p_out: float = 0.01
    attributes: AttributeConfig = field(default_factory=AttributeConfig)

    def validate(self) -> "NetworkConfig":
        """Raise :class:`ConfigurationError` on invalid values; return self."""
        check_probability(self.participation, "participation")
        check_probability(self.p_in, "p_in")
        check_probability(self.p_out, "p_out")
        if self.p_in <= self.p_out:
            raise ConfigurationError(
                f"p_in ({self.p_in}) must exceed p_out ({self.p_out}) "
                "for community structure to exist"
            )
        self.attributes.validate()
        return self


@dataclass
class WorldConfig:
    """The shared world from which aligned networks are observed.

    Parameters
    ----------
    n_persons:
        Size of the underlying population.
    n_communities:
        Number of planted communities (shared across networks).
    n_locations:
        Number of check-in venues in the world.
    vocabulary_size:
        Number of distinct words available to posts.
    target, sources:
        Structure settings for the target and each source network.
    link_correlation:
        Cross-network link correlation λ ∈ [0, 1].  A fraction of each
        network's link probability is realized by a *shared* world-level
        event per person pair, so the same pairs of people tend to be
        friends on every platform — the premise the Social Link Transfer
        problem relies on.  0 makes networks conditionally independent
        given communities; 1 maximizes overlap.
    """

    n_persons: int = 300
    n_communities: int = 6
    n_locations: int = 40
    vocabulary_size: int = 200
    link_correlation: float = 0.6
    target: NetworkConfig = field(
        default_factory=lambda: NetworkConfig(name="target")
    )
    sources: List[NetworkConfig] = field(
        default_factory=lambda: [NetworkConfig(name="source-1")]
    )

    def validate(self) -> "WorldConfig":
        """Raise :class:`ConfigurationError` on invalid values; return self."""
        check_integer(self.n_persons, "n_persons", minimum=2)
        check_integer(self.n_communities, "n_communities", minimum=1)
        if self.n_communities > self.n_persons:
            raise ConfigurationError(
                f"n_communities ({self.n_communities}) cannot exceed "
                f"n_persons ({self.n_persons})"
            )
        check_integer(self.n_locations, "n_locations", minimum=1)
        check_integer(self.vocabulary_size, "vocabulary_size", minimum=1)
        check_probability(self.link_correlation, "link_correlation")
        self.target.validate()
        if not self.sources:
            raise ConfigurationError("at least one source network is required")
        for source in self.sources:
            source.validate()
        names = [self.target.name] + [s.name for s in self.sources]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"network names must be unique, got {names}")
        return self

    @classmethod
    def foursquare_twitter_like(cls, scale: int = 300) -> "WorldConfig":
        """A config mimicking the paper's Twitter (target) + Foursquare pair.

        The target is denser and posts far more (Twitter-like); the source is
        sparser but every post carries a check-in (Foursquare-like).  ``scale``
        sets the population size.
        """
        check_integer(scale, "scale", minimum=20)
        target = NetworkConfig(
            name="twitter-like",
            participation=0.95,
            p_in=0.28,
            p_out=0.012,
            attributes=AttributeConfig(
                posts_per_user=12.0,
                checkin_probability=0.08,
                words_per_post=8,
                platform_bias=0.15,
                personal_affinity=0.25,
            ),
        )
        source = NetworkConfig(
            name="foursquare-like",
            participation=0.95,
            p_in=0.18,
            p_out=0.008,
            attributes=AttributeConfig(
                posts_per_user=4.0,
                checkin_probability=1.0,
                words_per_post=5,
                platform_bias=0.15,
                personal_affinity=0.25,
            ),
        )
        return cls(
            n_persons=scale,
            n_communities=max(2, scale // 50),
            n_locations=max(10, scale // 6),
            vocabulary_size=max(50, scale),
            link_correlation=0.7,
            target=target,
            sources=[source],
        ).validate()
