"""Synthetic aligned heterogeneous network generator.

The paper evaluates on a crawled Foursquare + Twitter pair, which is not
redistributable.  This package generates an equivalent *aligned* pair (or a
target plus K sources): a shared population of "persons" with planted
community structure, each network observing a subset of the population with
its own link density and its own attribute intensities (posts, check-ins,
hours, word usage).  Anchor links connect the accounts of the same person.

Because communities are shared across networks through the anchored persons,
links in a source network genuinely carry information about links in the
target — the property the Social Link Transfer problem relies on.
"""

from repro.synth.config import AttributeConfig, NetworkConfig, WorldConfig
from repro.synth.communities import (
    assign_communities,
    planted_partition_links,
    community_overlap_matrix,
)
from repro.synth.attributes import AttributeGenerator, CommunityProfile, PersonalProfile, build_personal_profiles
from repro.synth.generator import AlignedNetworkGenerator, generate_aligned_pair

__all__ = [
    "AttributeConfig",
    "NetworkConfig",
    "WorldConfig",
    "assign_communities",
    "planted_partition_links",
    "community_overlap_matrix",
    "AttributeGenerator",
    "CommunityProfile",
    "AlignedNetworkGenerator",
    "generate_aligned_pair",
]
