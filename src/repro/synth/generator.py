"""Generator of aligned heterogeneous networks.

The generation pipeline:

1. Create ``n_persons`` persons and assign each a community
   (:func:`~repro.synth.communities.assign_communities`).
2. Build one attribute profile per community shared by all networks
   (:func:`~repro.synth.attributes.build_profiles`), so the *same* latent
   preferences drive attributes everywhere — this is what domain adaptation
   can exploit.
3. For each network (target first), sample which persons participate, plant
   social links with that network's ``p_in`` / ``p_out``, and populate
   attributes with that network's intensities.
4. Anchor links connect the accounts of every person present in both the
   target and a source.

User ids within a network are dense ``0..n-1`` in person order, so anchor
pairs map target ids to source ids of the same person.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.networks.aligned import AlignedNetworks, AnchorLinks
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.synth.attributes import (
    AttributeGenerator,
    build_personal_profiles,
    build_profiles,
)
from repro.synth.communities import (
    assign_communities,
    correlated_partition_links,
    shared_link_matrix,
)
from repro.synth.config import NetworkConfig, WorldConfig
from repro.utils.rng import RandomState, ensure_rng


@dataclass
class _ObservedNetwork:
    """A network plus the person behind each of its users."""

    network: HeterogeneousNetwork
    persons: List[int]  # persons[user_id] = person index
    communities: List[int]  # communities[user_id] = community label


class AlignedNetworkGenerator:
    """Generate an :class:`~repro.networks.aligned.AlignedNetworks` bundle.

    Parameters
    ----------
    config:
        The world configuration; validated on construction.

    Examples
    --------
    >>> from repro.synth import AlignedNetworkGenerator, WorldConfig
    >>> config = WorldConfig.foursquare_twitter_like(scale=100)
    >>> aligned = AlignedNetworkGenerator(config).generate(random_state=7)
    >>> aligned.n_sources
    1
    """

    def __init__(self, config: WorldConfig):
        self.config = config.validate()

    def generate(self, random_state: RandomState = None) -> AlignedNetworks:
        """Generate the aligned bundle; fully determined by ``random_state``."""
        return self.generate_with_communities(random_state)["aligned"]

    def generate_with_communities(
        self, random_state: RandomState = None
    ) -> Dict[str, object]:
        """Like :meth:`generate` but also expose per-network community labels.

        Returns a dict with keys ``aligned`` (the bundle) and ``communities``
        (mapping network name to a label list in user-id order).  Used by
        tests and ablations that need the planted ground truth.
        """
        rng = ensure_rng(random_state)
        config = self.config
        communities = assign_communities(
            config.n_persons, config.n_communities, rng
        )
        profiles = build_profiles(
            config.n_communities,
            config.n_locations,
            config.vocabulary_size,
            rng,
        )
        personal = build_personal_profiles(
            config.n_persons,
            config.n_locations,
            config.vocabulary_size,
            rng,
        )
        net_configs = [config.target] + list(config.sources)
        p_in_shared = config.link_correlation * min(c.p_in for c in net_configs)
        p_out_shared = config.link_correlation * min(c.p_out for c in net_configs)
        shared = shared_link_matrix(communities, p_in_shared, p_out_shared, rng)
        observed = [
            self._observe_network(
                net_config, communities, profiles, personal, shared,
                p_in_shared, p_out_shared, rng,
            )
            for net_config in net_configs
        ]
        target = observed[0]
        anchors = [self._anchor_pairs(target, src) for src in observed[1:]]
        aligned = AlignedNetworks(
            target.network, [obs.network for obs in observed[1:]], anchors
        )
        labels = {
            obs.network.name: list(obs.communities) for obs in observed
        }
        return {"aligned": aligned, "communities": labels}

    # ------------------------------------------------------------------
    def _observe_network(
        self,
        net_config: NetworkConfig,
        communities: np.ndarray,
        profiles,
        personal,
        shared: np.ndarray,
        p_in_shared: float,
        p_out_shared: float,
        rng: np.random.Generator,
    ) -> _ObservedNetwork:
        config = self.config
        participation = rng.random(config.n_persons) < net_config.participation
        persons = np.flatnonzero(participation).tolist()
        if len(persons) < 2:
            # Degenerate participation draw; force at least two accounts so
            # the network has a meaningful link structure.
            persons = [0, 1]
        network = HeterogeneousNetwork(net_config.name)
        network.add_users(len(persons))
        user_communities = [int(communities[p]) for p in persons]
        person_idx = np.asarray(persons)
        local_shared = shared[np.ix_(person_idx, person_idx)]
        for i, j in correlated_partition_links(
            user_communities,
            net_config.p_in,
            net_config.p_out,
            local_shared,
            p_in_shared,
            p_out_shared,
            rng,
        ):
            network.add_social_link(i, j)
        attribute_gen = AttributeGenerator(
            profiles,
            config.n_locations,
            config.vocabulary_size,
            net_config.attributes,
        )
        attribute_gen.populate(
            network,
            user_communities,
            rng,
            personal_profiles=[personal[p] for p in persons],
        )
        return _ObservedNetwork(network, persons, user_communities)

    @staticmethod
    def _anchor_pairs(
        target: _ObservedNetwork, source: _ObservedNetwork
    ) -> AnchorLinks:
        source_user_of_person = {
            person: user_id for user_id, person in enumerate(source.persons)
        }
        pairs = []
        for target_user, person in enumerate(target.persons):
            source_user = source_user_of_person.get(person)
            if source_user is not None:
                pairs.append((target_user, source_user))
        return AnchorLinks(pairs)


def generate_aligned_pair(
    scale: int = 300, random_state: RandomState = None
) -> AlignedNetworks:
    """Convenience: generate the Foursquare/Twitter-like aligned pair.

    Parameters
    ----------
    scale:
        Population size (both networks observe ~95% of it).
    random_state:
        Seed or generator for reproducibility.
    """
    config = WorldConfig.foursquare_twitter_like(scale=scale)
    return AlignedNetworkGenerator(config).generate(random_state)
