"""Serving latency: cold vs warm-cache top-k, and batcher throughput.

Runs against a paper-scale synthetic score matrix (no model fitting — the
serving layer never imports the training stack), so the numbers isolate
the ranking/caching/batching hot path itself:

* cold top-k — every query misses the cache and pays one row partition;
* warm top-k — the same users again, answered from the LRU cache;
* batcher throughput — many threads submitting concurrently, coalesced
  into shared vectorized passes.

Print the p50/p99 tables with ``pytest benchmarks/test_serving_latency.py
--benchmark-only -s``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.models.persistence import FrozenPredictor
from repro.serving.artifacts import ArtifactStore
from repro.serving.batcher import MicroBatcher
from repro.serving.service import LinkPredictionService

N_USERS = 2000          # the paper's networks hold a few thousand users
LINK_DENSITY = 0.01
N_QUERIES = 400
TOP_K = 10


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A service over a published paper-scale synthetic artifact."""
    rng = np.random.default_rng(424242)
    scores = rng.normal(size=(N_USERS, N_USERS))
    scores = (scores + scores.T) / 2.0
    adjacency = np.triu(
        (rng.random((N_USERS, N_USERS)) < LINK_DENSITY).astype(float), 1
    )
    adjacency = adjacency + adjacency.T
    store = ArtifactStore(str(tmp_path_factory.mktemp("latency-store")))
    store.publish(
        FrozenPredictor(scores, {"name": "bench"}), graph=adjacency
    )
    return LinkPredictionService(store, cache_size=N_QUERIES * 2)


def _percentiles(samples):
    samples = np.asarray(samples) * 1e3  # seconds → ms
    return {
        "p50": float(np.percentile(samples, 50)),
        "p99": float(np.percentile(samples, 99)),
    }


def _time_queries(service, users, k):
    latencies = []
    for user in users:
        start = time.perf_counter()
        service.top_k(int(user), k)
        latencies.append(time.perf_counter() - start)
    return latencies


def test_topk_cold_vs_warm_latency(benchmark, served):
    """Warm-cache queries must be far faster than cold row partitions."""
    users = np.arange(N_QUERIES) % N_USERS

    def run():
        served.cache.invalidate()
        cold = _time_queries(served, users, TOP_K)
        warm = _time_queries(served, users, TOP_K)
        return cold, warm

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    cold_stats, warm_stats = _percentiles(cold), _percentiles(warm)
    print(
        f"\ntop_k(k={TOP_K}) over {N_USERS} users, {N_QUERIES} queries/pass"
        f"\n  cold  p50={cold_stats['p50']:.3f}ms  p99={cold_stats['p99']:.3f}ms"
        f"\n  warm  p50={warm_stats['p50']:.3f}ms  p99={warm_stats['p99']:.3f}ms"
    )
    hit_stats = served.stats()["cache"]
    assert hit_stats["hits"] >= N_QUERIES
    # Warm queries are dictionary lookups; cold ones partition a 2000-row.
    assert warm_stats["p50"] <= cold_stats["p50"]
    assert cold_stats["p99"] < 1e3  # sanity: nothing pathological


def test_batch_topk_beats_singles(benchmark, served):
    """One vectorized batch pass must beat per-user python loops."""
    users = list(range(200))

    def run():
        served.cache.invalidate()
        start = time.perf_counter()
        for user in users:
            served.top_k(user, TOP_K)
        singles = time.perf_counter() - start
        served.cache.invalidate()
        start = time.perf_counter()
        served.batch_top_k(users, TOP_K)
        batched = time.perf_counter() - start
        return singles, batched

    singles, batched = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n200 rankings: singles={singles * 1e3:.1f}ms "
        f"batched={batched * 1e3:.1f}ms "
        f"(speedup {singles / max(batched, 1e-9):.1f}x)"
    )
    assert batched < singles * 2  # vectorized pass must not regress badly


def test_batcher_throughput(benchmark, served):
    """Concurrent submits coalesce; report requests/second and batch sizes."""
    n_threads = 8
    per_thread = 50

    def run():
        served.cache.invalidate()
        with MicroBatcher(served, max_batch=64, max_wait_ms=2.0) as batcher:
            errors = []

            def worker(offset):
                try:
                    for i in range(per_thread):
                        batcher.submit((offset * per_thread + i) % N_USERS, TOP_K)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            start = time.perf_counter()
            threads = [
                threading.Thread(target=worker, args=(t,))
                for t in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
        assert not errors
        return elapsed

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    total = n_threads * per_thread
    counters = served.tracer.counters
    batch_sizes = served.tracer.metrics.get("batcher.batch_size", [])
    print(
        f"\nbatcher: {total} requests / {elapsed:.3f}s "
        f"= {total / elapsed:.0f} req/s; "
        f"{counters['batcher.batches']} batches, "
        f"mean batch {np.mean(batch_sizes):.1f}"
    )
    assert counters["batcher.requests"] >= total
    assert counters["batcher.batches"] <= total
