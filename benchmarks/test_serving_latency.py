"""Serving latency: cold vs warm-cache top-k, batcher throughput, overhead.

Runs against a paper-scale synthetic score matrix (no model fitting — the
serving layer never imports the training stack), so the numbers isolate
the ranking/caching/batching hot path itself:

* cold top-k — every query misses the cache and pays one row partition;
* warm top-k — the same users again, answered from the LRU cache;
* batcher throughput — many threads submitting concurrently, coalesced
  into shared vectorized passes;
* telemetry overhead — the same cold pass with live metrics+tracing vs
  the ``NullTracer``/``NullRegistry`` disabled path.

Every section appends a p50/p95/p99 snapshot to the repo-root
``BENCH_serving.json`` via :mod:`trajectory`, so each run extends the
perf baseline future PRs regress against.  Print the tables with
``pytest benchmarks/test_serving_latency.py --benchmark-only -s``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.models.persistence import FrozenPredictor
from repro.observability.metrics import NullRegistry
from repro.observability.tracer import NullTracer
from repro.serving.artifacts import ArtifactStore
from repro.serving.batcher import MicroBatcher
from repro.serving.service import LinkPredictionService

from trajectory import percentile_summary, record_snapshot

N_USERS = 2000          # the paper's networks hold a few thousand users
LINK_DENSITY = 0.01
N_QUERIES = 400
TOP_K = 10

_CONTEXT = {
    "n_users": N_USERS,
    "n_queries": N_QUERIES,
    "top_k": TOP_K,
}


@pytest.fixture(scope="module")
def published_store(tmp_path_factory):
    """A store holding one paper-scale synthetic artifact."""
    rng = np.random.default_rng(424242)
    scores = rng.normal(size=(N_USERS, N_USERS))
    scores = (scores + scores.T) / 2.0
    adjacency = np.triu(
        (rng.random((N_USERS, N_USERS)) < LINK_DENSITY).astype(float), 1
    )
    adjacency = adjacency + adjacency.T
    store = ArtifactStore(str(tmp_path_factory.mktemp("latency-store")))
    store.publish(
        FrozenPredictor(scores, {"name": "bench"}), graph=adjacency
    )
    return store


@pytest.fixture(scope="module")
def served(published_store):
    """A (fully instrumented) service over the published artifact."""
    return LinkPredictionService(published_store, cache_size=N_QUERIES * 2)


def _time_queries(service, users, k):
    latencies = []
    for user in users:
        start = time.perf_counter()
        service.top_k(int(user), k)
        latencies.append(time.perf_counter() - start)
    return latencies


def test_topk_cold_vs_warm_latency(benchmark, served):
    """Warm-cache queries must be far faster than cold row partitions."""
    users = np.arange(N_QUERIES) % N_USERS

    def run():
        served.cache.invalidate()
        cold = _time_queries(served, users, TOP_K)
        warm = _time_queries(served, users, TOP_K)
        return cold, warm

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    cold_stats = record_snapshot(
        "topk_cold", percentile_summary(cold), context=_CONTEXT
    )["stats"]
    warm_stats = record_snapshot(
        "topk_warm", percentile_summary(warm), context=_CONTEXT
    )["stats"]
    print(
        f"\ntop_k(k={TOP_K}) over {N_USERS} users, {N_QUERIES} queries/pass"
        f"\n  cold  p50={cold_stats['p50_ms']:.3f}ms"
        f"  p95={cold_stats['p95_ms']:.3f}ms"
        f"  p99={cold_stats['p99_ms']:.3f}ms"
        f"\n  warm  p50={warm_stats['p50_ms']:.3f}ms"
        f"  p95={warm_stats['p95_ms']:.3f}ms"
        f"  p99={warm_stats['p99_ms']:.3f}ms"
    )
    hit_stats = served.stats()["cache"]
    assert hit_stats["hits"] >= N_QUERIES
    # Warm queries are dictionary lookups; cold ones partition a 2000-row.
    assert warm_stats["p50_ms"] <= cold_stats["p50_ms"]
    assert cold_stats["p99_ms"] < 1e3  # sanity: nothing pathological
    # Cache counters live in the hot tier now; a drain must reconcile
    # the registry series with the cache's own integers.
    served.cells.drain()
    http_family = served.registry.get("serving.cache.hits")
    assert http_family is not None and http_family.value >= N_QUERIES


def test_batch_topk_beats_singles(benchmark, served):
    """One vectorized batch pass must beat per-user python loops.

    A single cold pass per strategy was flaky: the first strategy to run
    paid numpy dispatch warmup and allocator growth for both, and one GC
    pause could flip the verdict.  Both paths are now warmed untimed,
    each strategy is timed over several cache-invalidated repeats, and
    the assertion compares per-strategy *medians* — the recorded speedup
    is a stable number instead of a coin flip.
    """
    users = list(range(200))
    repeats = 5

    def run():
        # Warm both code paths untimed (dispatch caches, allocator).
        served.cache.invalidate()
        for user in users[:8]:
            served.top_k(user, TOP_K)
        served.cache.invalidate()
        served.batch_top_k(users[:8], TOP_K)
        singles_times = []
        batched_times = []
        for _ in range(repeats):
            served.cache.invalidate()
            start = time.perf_counter()
            for user in users:
                served.top_k(user, TOP_K)
            singles_times.append(time.perf_counter() - start)
            served.cache.invalidate()
            start = time.perf_counter()
            served.batch_top_k(users, TOP_K)
            batched_times.append(time.perf_counter() - start)
        return singles_times, batched_times

    singles_times, batched_times = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    singles = float(np.median(singles_times))
    batched = float(np.median(batched_times))
    speedup = singles / max(batched, 1e-9)
    print(
        f"\n200 rankings ({repeats} repeats, medians): "
        f"singles={singles * 1e3:.1f}ms "
        f"batched={batched * 1e3:.1f}ms "
        f"(speedup {speedup:.1f}x)"
    )
    record_snapshot(
        "batch_vs_singles",
        {
            "singles_median_ms": singles * 1e3,
            "batched_median_ms": batched * 1e3,
            "speedup": speedup,
            "repeats": repeats,
        },
        context=_CONTEXT,
    )
    assert speedup > 1.0, (
        f"batched pass must beat sequential singles, got {speedup:.2f}x"
    )


def test_batcher_throughput(benchmark, served):
    """Concurrent submits coalesce; report requests/second and batch sizes."""
    n_threads = 8
    per_thread = 50

    def run():
        served.cache.invalidate()
        with MicroBatcher(served, max_batch=64, max_wait_ms=2.0) as batcher:
            errors = []

            def worker(offset):
                try:
                    for i in range(per_thread):
                        batcher.submit((offset * per_thread + i) % N_USERS, TOP_K)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            start = time.perf_counter()
            threads = [
                threading.Thread(target=worker, args=(t,))
                for t in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
        assert not errors
        return elapsed

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    total = n_threads * per_thread
    counters = served.tracer.counters
    batch_sizes = served.tracer.metrics.get("batcher.batch_size", [])
    print(
        f"\nbatcher: {total} requests / {elapsed:.3f}s "
        f"= {total / elapsed:.0f} req/s; "
        f"{counters['batcher.batches']} batches, "
        f"mean batch {np.mean(batch_sizes):.1f}"
    )
    record_snapshot(
        "batcher",
        {
            "requests_per_second": total / elapsed,
            "n_batches": counters["batcher.batches"],
            "mean_batch_size": float(np.mean(batch_sizes)),
        },
        context={**_CONTEXT, "n_threads": n_threads},
    )
    assert counters["batcher.requests"] >= total
    assert counters["batcher.batches"] <= total


def test_batcher_mixed_k_coalescing(benchmark, served):
    """One max-k scoring pass must beat per-k grouped passes on mixed load.

    This is the regression the batcher's per-k grouping caused: a batch
    whose requests carried several distinct ``k`` values used to issue
    one ``batch_top_k`` per ``k`` (0.86–0.97× of sequential under mixed
    load).  The batcher now issues a single ``batch_top_k_mixed`` pass —
    one argpartition/argsort at the batch's largest ``k``, each answer
    trimmed to its own request's ``k`` before materialization (exact,
    because every top-k list is a prefix of the top-max-k list).  This
    leg measures exactly those two strategies over the same mixed-k
    batch, checks the answers are identical, and records the speedup so
    it stays pinned.
    """
    # Batch size matches what the throughput leg actually observes
    # coalescing per batch (mean batch ≈ 8); at that size the per-k
    # split's extra numpy dispatches dominate, which is exactly the
    # production regime the batcher lives in.
    batch_size = 8
    n_batches = 64
    k_choices = (5, 10, 20, 50)
    batches = [
        (
            [(b * batch_size + i) % N_USERS for i in range(batch_size)],
            [k_choices[i % len(k_choices)] for i in range(batch_size)],
        )
        for b in range(n_batches)
    ]

    def run_grouped():
        elapsed = 0.0
        answers = {}
        for users, ks in batches:
            served.cache.invalidate()
            start = time.perf_counter()
            by_k = {}
            for user, k in zip(users, ks):
                by_k.setdefault(k, []).append(user)
            for k, group in by_k.items():
                for user, ranking in zip(
                    group, served.batch_top_k(group, k)
                ):
                    answers[(user, k)] = ranking
            elapsed += time.perf_counter() - start
        return elapsed, answers

    def run_coalesced():
        elapsed = 0.0
        answers = {}
        for users, ks in batches:
            served.cache.invalidate()
            start = time.perf_counter()
            rankings = served.batch_top_k_mixed(users, ks)
            for user, k, ranking in zip(users, ks, rankings):
                answers[(user, k)] = ranking
            elapsed += time.perf_counter() - start
        return elapsed, answers

    grouped_s, grouped_answers = run_grouped()
    coalesced_s, coalesced_answers = benchmark.pedantic(
        run_coalesced, rounds=1, iterations=1
    )
    assert coalesced_answers == grouped_answers, (
        "trimmed max-k answers must match the per-k passes exactly"
    )
    speedup = grouped_s / max(coalesced_s, 1e-9)
    print(
        f"\nmixed-k: per-k passes {grouped_s:.3f}s vs one coalesced pass "
        f"{coalesced_s:.3f}s (speedup {speedup:.2f}x)"
    )
    record_snapshot(
        "batcher_mixed_k",
        {
            "grouped_s": grouped_s,
            "coalesced_s": coalesced_s,
            "speedup": speedup,
        },
        context={
            **_CONTEXT,
            "batch_size": batch_size,
            "n_batches": n_batches,
            "k_choices": list(k_choices),
        },
    )
    assert speedup > 1.0, (
        f"coalesced mixed-k pass must beat per-k grouping, got {speedup:.2f}x"
    )


def test_telemetry_overhead(benchmark, published_store):
    """The disabled path (NullTracer+NullRegistry) must stay near-free.

    The instrumented service runs the full production telemetry stack —
    sampling tracer, striped hot counters/histograms, cache sync — while
    the disabled one takes the null path.  Five cache-invalidated passes
    per side, per-pass median, best-of-passes: robust to GC pauses.  The
    recorded ``overhead_pct`` is the number the CI ``telemetry-overhead``
    gate holds under 5% (tools/check_telemetry_gate.py); the in-test
    assertion stays loose because shared-runner timing is noisy.
    """
    users = np.arange(N_QUERIES) % N_USERS
    disabled = LinkPredictionService(
        published_store,
        cache_size=N_QUERIES * 2,
        tracer=NullTracer(),
        registry=NullRegistry(),
    )
    instrumented = LinkPredictionService(
        published_store, cache_size=N_QUERIES * 2
    )

    def run():
        timings = {}
        for label, service in (
            ("disabled", disabled), ("instrumented", instrumented)
        ):
            service.top_k(0, TOP_K)  # prime numpy dispatch caches
            passes = []
            for _ in range(5):
                service.cache.invalidate()
                passes.append(_time_queries(service, users, TOP_K))
            timings[label] = min(
                float(np.median(one_pass)) for one_pass in passes
            )
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead_pct = (
        (timings["instrumented"] - timings["disabled"])
        / timings["disabled"] * 100.0
    )
    print(
        f"\ncold top_k median: disabled={timings['disabled'] * 1e3:.3f}ms "
        f"instrumented={timings['instrumented'] * 1e3:.3f}ms "
        f"(overhead {overhead_pct:+.1f}%)"
    )
    record_snapshot(
        "telemetry_overhead",
        {
            "disabled_median_ms": timings["disabled"] * 1e3,
            "instrumented_median_ms": timings["instrumented"] * 1e3,
            "overhead_pct": overhead_pct,
        },
        context=_CONTEXT,
    )
    # Loose CI-safe bound; the trajectory file carries the precise number.
    assert timings["instrumented"] < timings["disabled"] * 2.0
