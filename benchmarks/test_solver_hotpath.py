"""Solver hot-path benchmark: warm SVT + workspace loop vs the seed solver.

Fits the paper-scale smoke configuration (scale 800, ``svd_rank=60``)
twice — once with ``exact=True`` (the seed solver's numerics: cold-start
Lanczos SVT, sequential smooth terms, allocating inner loop) and once on
the default hot path (warm-started rank-capped SVT, fused smooth
objective, workspace-backed loop) — on identical tasks and convergence
criteria.  Both paths compute the same best-effort rank-capped operator
(the cap is lossy at this threshold, for the seed path too), so the
quality gate here is AUC agreement; the bitwise ≤1e-6 parity guarantee
belongs to the figure-3 configuration (``svd_rank=None``), which is
fitted and asserted at a compact scale in the same run.

Appends wall-clock and SVT-engine statistics to ``BENCH_solver.json``
(same trajectory format as ``BENCH_serving.json``) so future PRs diff
against history instead of folklore.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.evaluation.metrics import auc_score
from repro.evaluation.splits import k_fold_link_splits
from repro.exceptions import TruncatedSVTWarning
from repro.models.base import TransferTask
from repro.models.slampred import SlamPredT
from repro.networks.social import SocialGraph
from repro.synth.generator import generate_aligned_pair

from trajectory import BENCH_SOLVER_PATH, record_snapshot

SCALE = 800
SVD_RANK = 60
INNER = 10
OUTER = 10
PARITY_SCALE = 140


def _problem(scale):
    aligned = generate_aligned_pair(scale=scale, random_state=1)
    graph = SocialGraph.from_network(aligned.target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=1)[0]
    return aligned, split


def _fit(aligned, split, svd_rank, exact):
    task = TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        random_state=np.random.default_rng(1),
    )
    model = SlamPredT(
        svd_rank=svd_rank,
        inner_iterations=INNER,
        outer_iterations=OUTER,
        exact=exact,
    )
    start = time.perf_counter()
    with warnings.catch_warnings():
        # The rank cap is lossy at this threshold for both paths, which
        # each warn once per application by design.
        warnings.simplefilter("ignore", TruncatedSVTWarning)
        model.fit(task)
    return model, time.perf_counter() - start


def test_solver_hotpath(benchmark):
    def run():
        aligned, split = _problem(SCALE)
        exact_model, exact_seconds = _fit(aligned, split, SVD_RANK, True)
        fast_model, fast_seconds = _fit(aligned, split, SVD_RANK, False)
        return aligned, split, exact_model, exact_seconds, fast_model, fast_seconds

    aligned, split, exact_model, exact_seconds, fast_model, fast_seconds = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    speedup = exact_seconds / fast_seconds
    engine = fast_model._svt_engine
    applies = max(1, int(engine.stats["applies"]))
    exact_auc = auc_score(
        exact_model.score_pairs(split.test_pairs), split.test_labels
    )
    fast_auc = auc_score(
        fast_model.score_pairs(split.test_pairs), split.test_labels
    )

    # Figure-3 configuration numerics (svd_rank=None): the engine is
    # exact there, so the two score matrices must agree to 1e-6.
    p_aligned, p_split = _problem(PARITY_SCALE)
    p_exact, _ = _fit(p_aligned, p_split, None, True)
    p_fast, _ = _fit(p_aligned, p_split, None, False)
    fig3_parity = float(
        np.abs(p_exact.score_matrix - p_fast.score_matrix).max()
    )

    context = {
        "scale": SCALE,
        "n_users": int(aligned.target.n_users),
        "svd_rank": SVD_RANK,
        "inner_iterations": INNER,
        "outer_iterations": OUTER,
    }
    record_snapshot(
        "fit_exact",
        {"seconds": exact_seconds, "auc": float(exact_auc)},
        context=context,
        path=BENCH_SOLVER_PATH,
    )
    record_snapshot(
        "fit_fast",
        {
            "seconds": fast_seconds,
            "auc": float(fast_auc),
            "svt_seconds": engine.stats["seconds"],
            "svt_applies": engine.stats["applies"],
            "svt_seconds_per_apply": engine.stats["seconds"] / applies,
            "svt_dense_applies": engine.stats["dense_applies"],
            "svt_dense_fallbacks": engine.stats["dense_fallbacks"],
            "svt_lossy_truncations": engine.stats["lossy_truncations"],
            "svt_rank_grows": engine.stats["rank_grows"],
            "svt_rank_shrinks": engine.stats["rank_shrinks"],
            "final_rank": engine.rank,
        },
        context=context,
        path=BENCH_SOLVER_PATH,
    )
    record_snapshot(
        "fit_speedup",
        {
            "speedup": speedup,
            "fig3_parity_max_abs_diff": fig3_parity,
            "fig3_parity_scale": PARITY_SCALE,
        },
        context=context,
        path=BENCH_SOLVER_PATH,
    )
    print(
        f"\nscale {SCALE}: exact {exact_seconds:.1f}s, fast {fast_seconds:.1f}s "
        f"({speedup:.2f}x), AUC {exact_auc:.3f} -> {fast_auc:.3f}, "
        f"SVT {engine.stats['seconds'] / applies * 1e3:.1f}ms/apply "
        f"over {applies} applies, fig3 parity {fig3_parity:.2e}"
    )
    assert fig3_parity <= 1e-6
    assert engine.stats["dense_fallbacks"] == 0
    # The committed BENCH_solver.json trajectory documents >=1.5x; the
    # in-test floor is looser so a loaded CI box doesn't flake the suite.
    assert speedup >= 1.2
    assert fast_auc > 0.7
    assert abs(fast_auc - exact_auc) <= 0.05
