"""Ablation: inner solver choice (DESIGN.md §5).

The paper's Algorithm 1 alternates a gradient step with *sequential* prox
applications; Raguet et al.'s generalized forward-backward handles multiple
non-smooth terms exactly.  This benchmark checks that on the SLAMPRED inner
problem the two reach the same optimum (so the paper's cheaper sequential
scheme loses nothing) and compares their per-solve cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import (
    ForwardBackwardSolver,
    GeneralizedForwardBackward,
)
from repro.optim.losses import LinearizedIntimacyTerm, SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx


def _problem(rng, n=40):
    adjacency = (rng.random((n, n)) < 0.15).astype(float)
    adjacency = np.triu(adjacency, 1)
    adjacency = adjacency + adjacency.T
    gradient = rng.random((n, n))
    gradient = (gradient + gradient.T) / 2
    smooth = [SquaredFrobeniusLoss(adjacency), LinearizedIntimacyTerm(gradient)]
    prox = [TraceNormProx(1.0), L1Prox(0.05), BoxProjection(0.0, None)]
    return adjacency, smooth, prox


@pytest.mark.parametrize(
    "solver_cls", [ForwardBackwardSolver, GeneralizedForwardBackward]
)
def test_ablation_solver_speed(benchmark, solver_cls):
    rng = np.random.default_rng(3)
    adjacency, smooth, prox = _problem(rng)
    solver = solver_cls(
        step_size=0.05,
        criterion=ConvergenceCriterion(tolerance=1e-6, max_iterations=200),
    )

    result = benchmark(solver.solve, adjacency, smooth, prox)
    assert np.isfinite(result).all()


def test_ablation_solvers_agree(benchmark):
    """Both solvers find the same optimum on the SLAMPRED inner problem."""
    rng = np.random.default_rng(4)
    adjacency, smooth, prox = _problem(rng)
    criterion = ConvergenceCriterion(tolerance=1e-9, max_iterations=3000)

    def run():
        sequential = ForwardBackwardSolver(0.05, criterion).solve(
            adjacency, smooth, prox
        )
        generalized = GeneralizedForwardBackward(0.05, criterion).solve(
            adjacency, smooth, prox
        )
        return sequential, generalized

    sequential, generalized = benchmark.pedantic(run, rounds=1, iterations=1)
    gap = np.abs(sequential - generalized).max()
    print(f"\nmax entry gap between solvers: {gap:.2e}")
    assert gap < 5e-3
