"""Scalability: SLAMPRED at larger-than-default network sizes.

The paper runs on ~5k-user networks.  This benchmark exercises the scalable
code path — the truncated-Lanczos singular value thresholding
(``svd_rank``) — against the exact dense SVT at a few hundred users, and
checks the two agree on ranking quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.metrics import auc_score
from repro.evaluation.splits import k_fold_link_splits
from repro.models.base import TransferTask
from repro.models.slampred import SlamPredT
from repro.networks.social import SocialGraph
from repro.synth.generator import generate_aligned_pair

SCALE = 250


@pytest.fixture(scope="module")
def big_world():
    aligned = generate_aligned_pair(scale=SCALE, random_state=31)
    graph = SocialGraph.from_network(aligned.target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=31)[0]
    return aligned, split


def _fit(aligned, split, **kwargs):
    task = TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        random_state=np.random.default_rng(31),
    )
    return SlamPredT(**kwargs).fit(task)


@pytest.mark.parametrize("svd_rank", [None, 40])
def test_scalability_svd_rank(benchmark, big_world, svd_rank):
    aligned, split = big_world
    model = benchmark.pedantic(
        _fit,
        args=(aligned, split),
        kwargs={"svd_rank": svd_rank},
        rounds=1,
        iterations=1,
    )
    auc = auc_score(model.score_pairs(split.test_pairs), split.test_labels)
    label = "exact" if svd_rank is None else f"rank-{svd_rank}"
    print(f"\n{label} SVT at ~{aligned.target.n_users} users: AUC={auc:.3f}")
    assert auc > 0.6


def test_scalability_rankings_agree(benchmark, big_world):
    """Truncated and exact SVT must produce near-identical rankings."""
    aligned, split = big_world

    def run():
        exact = _fit(aligned, split)
        truncated = _fit(aligned, split, svd_rank=40)
        return exact, truncated

    exact, truncated = benchmark.pedantic(run, rounds=1, iterations=1)
    auc_exact = auc_score(
        exact.score_pairs(split.test_pairs), split.test_labels
    )
    auc_truncated = auc_score(
        truncated.score_pairs(split.test_pairs), split.test_labels
    )
    print(f"\nexact={auc_exact:.4f} truncated={auc_truncated:.4f}")
    assert abs(auc_exact - auc_truncated) < 0.01
