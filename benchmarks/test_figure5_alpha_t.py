"""Benchmark: regenerate Figure 5 (α_t sweep at fixed α_s).

Paper reference: whether the source term is off (α_s = 0) or fully on
(α_s = 1), increasing the target attribute weight α_t first improves and
then saturates/degrades performance (the inverted-U the paper attributes
to overfitting the attribute information).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure5 import run_figure5

ALPHAS = (0.0, 0.5, 1.0)


def test_figure5_alpha_t(benchmark):
    result = benchmark.pedantic(
        run_figure5,
        kwargs={
            "fixed_alpha_s": (0.0, 1.0),
            "alphas": ALPHAS,
            "scale": 60,
            "n_folds": 2,
            "precision_k": 10,
            "random_state": 13,
        },
        rounds=1,
        iterations=1,
    )
    curves = result["curves"]

    for fixed in (0.0, 1.0):
        series = np.array(curves[(fixed, "auc")])
        assert series.shape == (len(ALPHAS),)
        assert np.all((series >= 0.0) & (series <= 1.0))
        # Figure 5's observation: turning the target attribute term on
        # (α_t > 0) beats leaving it off.
        assert series[1:].max() > series[0] - 0.02, f"alpha_s={fixed}"

    print()
    print(result["text"])
