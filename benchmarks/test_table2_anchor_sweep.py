"""Benchmark: regenerate Table II (methods × anchor ratios).

Paper reference (Table II, AUC at selected ratios):

    ratio          0.0    0.5    1.0
    SLAMPRED     0.828  0.918  0.941   (rises steadily)
    SLAMPRED-T   0.828  0.828  0.828   (flat)
    SLAMPRED-H   0.776  0.776  0.776   (flat, worst of the three)
    PL           0.706  0.779  0.834   (fluctuates, below SLAMPRED)
    SCAN         0.730  0.719  0.643   (no domain adaptation)
    JC/CN/PA     0.624/0.631/0.557     (flat)

The assertions check the *shape*: SLAMPRED's ordering over its variants,
its monotone improvement with the anchor ratio, the flatness of the
target-only and unsupervised rows, and SLAMPRED's dominance over PL and the
unsupervised predictors.  (Our SCAN baseline is a stronger implementation
than the 2013 original — see EXPERIMENTS.md — so the paper's SCAN collapse
is not asserted.)
"""

from __future__ import annotations

from repro.evaluation.anchor_sweep import default_method_specs, run_anchor_sweep
from repro.evaluation.reporting import format_sweep_table

RATIOS = (0.0, 0.5, 1.0)
PRECISION_K = 20


def _run(bench_aligned, bench_splits):
    return run_anchor_sweep(
        bench_aligned,
        methods=default_method_specs(),
        ratios=RATIOS,
        precision_k=PRECISION_K,
        random_state=17,
        splits=bench_splits,
    )


def test_table2_anchor_sweep(benchmark, bench_aligned, bench_splits):
    sweep = benchmark.pedantic(
        _run, args=(bench_aligned, bench_splits), rounds=1, iterations=1
    )

    auc = {m: sweep.series(m, "auc") for m in sweep.methods}

    # All twelve methods of the paper's table are present.
    assert len(sweep.methods) == 12

    # SLAMPRED improves with the anchor ratio and ends on top of its
    # variants (Table II's headline trend).
    assert auc["SLAMPRED"][-1] > auc["SLAMPRED"][0] - 0.01
    assert auc["SLAMPRED"][-1] >= auc["SLAMPRED-T"][-1]
    assert auc["SLAMPRED-T"][-1] > auc["SLAMPRED-H"][-1]

    # Methods that ignore the source are flat in the ratio.
    for method in ("SLAMPRED-T", "SLAMPRED-H", "PL-T", "SCAN-T", "JC", "CN", "PA"):
        assert auc[method][0] == auc[method][-1], method

    # Source-only methods start at chance with zero anchors and improve.
    for method in ("PL-S", "SCAN-S"):
        assert abs(auc[method][0] - 0.5) < 0.02, method
        assert auc[method][-1] > auc[method][0], method

    # SLAMPRED beats PL and every unsupervised predictor at full alignment
    # (the paper reports ~13% over PL and ~46% over JC/CN/PA).
    assert auc["SLAMPRED"][-1] > auc["PL"][-1]
    for method in ("JC", "CN", "PA"):
        assert auc["SLAMPRED"][-1] > auc[method][-1] + 0.05, method

    print()
    print(format_sweep_table(sweep, "auc", title="Table II (AUC)"))
    print()
    print(
        format_sweep_table(
            sweep,
            f"precision@{PRECISION_K}",
            title=f"Table II (Precision@{PRECISION_K})",
        )
    )


def test_table2_precision_shape(benchmark, bench_aligned, bench_splits):
    sweep = benchmark.pedantic(
        _run, args=(bench_aligned, bench_splits), rounds=1, iterations=1
    )
    metric = f"precision@{PRECISION_K}"
    precision = {m: sweep.series(m, metric) for m in sweep.methods}

    # Precision@k improves (or holds) with anchors for SLAMPRED and ends
    # above the unsupervised baselines — in the paper SLAMPRED's P@100 is
    # 2-3x the baselines'.
    assert precision["SLAMPRED"][-1] >= precision["SLAMPRED"][0] - 0.05
    assert precision["SLAMPRED"][-1] > precision["PA"][-1]
    assert precision["SLAMPRED"][-1] >= precision["CN"][-1]
