"""Shared benchmark fixtures.

Benchmarks run the same experiment code as ``repro.experiments`` at compact
scale so ``pytest benchmarks/ --benchmark-only`` finishes in minutes.  Run
with ``-s`` to see the regenerated tables and series alongside the timings;
scale parameters can be raised for paper-sized runs (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.evaluation.splits import k_fold_link_splits
from repro.networks.social import SocialGraph
from repro.synth.generator import generate_aligned_pair

BENCH_SCALE = 70
BENCH_SEED = 99


@pytest.fixture(scope="session")
def bench_aligned():
    """The benchmark world (session-scoped: generated once)."""
    return generate_aligned_pair(scale=BENCH_SCALE, random_state=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_splits(bench_aligned):
    """Two folds over the benchmark target."""
    graph = SocialGraph.from_network(bench_aligned.target)
    return k_fold_link_splits(graph, n_folds=2, random_state=BENCH_SEED)


import numpy as np


@pytest.fixture()
def rng():
    """A fresh deterministic generator per benchmark."""
    return np.random.default_rng(2718)
