"""Paper-scale smoke test: the pipeline at several hundred users.

The paper's networks hold ~5k users.  This bench runs the full
generate → split → fit → score pipeline at scale 800 (≈760 target users,
~8k links) with the truncated-SVT path, demonstrating that nothing in the
stack is quadratic-with-a-huge-constant and that quality holds up as the
problem grows.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.metrics import auc_score
from repro.evaluation.splits import k_fold_link_splits
from repro.models.base import TransferTask
from repro.models.slampred import SlamPredT
from repro.networks.social import SocialGraph
from repro.synth.generator import generate_aligned_pair


def test_paper_scale_smoke(benchmark):
    def run():
        aligned = generate_aligned_pair(scale=800, random_state=1)
        graph = SocialGraph.from_network(aligned.target)
        split = k_fold_link_splits(graph, n_folds=5, random_state=1)[0]
        task = TransferTask(
            target=aligned.target,
            training_graph=split.training_graph,
            random_state=np.random.default_rng(1),
        )
        model = SlamPredT(
            svd_rank=60, inner_iterations=10, outer_iterations=10
        ).fit(task)
        auc = auc_score(
            model.score_pairs(split.test_pairs), split.test_labels
        )
        return aligned, auc

    aligned, auc = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nscale 800: {aligned.target.n_users} target users, "
        f"{aligned.target.n_social_links} links, AUC={auc:.3f}"
    )
    assert aligned.target.n_users > 600
    assert auc > 0.7
