"""Ablation: domain adaptation components (DESIGN.md §5).

Compares the full SLAMPRED transfer pipeline against degraded variants:

* ``mu = 0`` — anchor-alignment cost removed from the embedding objective
  (W_A ignored; only label structure shapes the latent space);
* ``learn_alphas = False`` — fixed 1:1 combination instead of the
  calibrated stacking;
* ``latent_dimension = 1`` — the shared space collapsed to one dimension.

The full model should be at least as good as each degraded variant (small
noise margins allowed at benchmark scale).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.metrics import auc_score
from repro.models.base import TransferTask
from repro.models.slampred import SlamPred


def _auc(bench_aligned, split, **kwargs):
    task = TransferTask(
        target=bench_aligned.target,
        training_graph=split.training_graph,
        sources=list(bench_aligned.sources),
        anchors=list(bench_aligned.anchors),
        random_state=np.random.default_rng(5),
    )
    model = SlamPred(**kwargs).fit(task)
    return auc_score(model.score_pairs(split.test_pairs), split.test_labels)


def test_ablation_adaptation(benchmark, bench_aligned, bench_splits):
    split = bench_splits[0]

    def run():
        return {
            "full": _auc(bench_aligned, split),
            "no_anchor_cost": _auc(bench_aligned, split, mu=0.0),
            "fixed_alphas": _auc(bench_aligned, split, learn_alphas=False),
            "latent_1d": _auc(bench_aligned, split, latent_dimension=1),
        }

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("adaptation ablation (AUC):")
    for name, auc in aucs.items():
        print(f"  {name:16s} {auc:.3f}")

    # The full pipeline holds up against every degradation (benchmark-scale
    # noise margin of 0.03).
    for name in ("no_anchor_cost", "fixed_alphas", "latent_1d"):
        assert aucs["full"] >= aucs[name] - 0.03, name

    # Every variant still beats chance comfortably — transfer carries
    # signal even degraded.
    for name, auc in aucs.items():
        assert auc > 0.6, name
