"""Serving latency and error rate under 10% fault injection.

Boots a real HTTP server over a synthetic artifact and drives the same
request stream twice — chaos disabled, then with ``serving.request``
faults armed at 10% — recording both passes into ``BENCH_serving.json``:

* ``chaos_off`` — the baseline hot path with the injector inactive, the
  number the "no measurable regression with chaos disabled" gate reads;
* ``chaos_degradation`` — p50/p95/p99 of *answered* requests plus the
  clean-failure rate while one request in ten dies at the fault point.

The in-test assertions are deliberately loose (CI timing is noisy); the
trajectory file carries the precise numbers.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.models.persistence import FrozenPredictor
from repro.reliability.faults import GLOBAL_INJECTOR
from repro.serving.artifacts import ArtifactStore
from repro.serving.http import make_server
from repro.serving.service import LinkPredictionService

from trajectory import outcome_summary, percentile_summary, record_snapshot

N_USERS = 500
N_REQUESTS = 200
TOP_K = 10
FAULT_RATE = 0.10

_CONTEXT = {
    "n_users": N_USERS,
    "n_requests": N_REQUESTS,
    "top_k": TOP_K,
    "fault_rate": FAULT_RATE,
}


@pytest.fixture(scope="module")
def endpoint(tmp_path_factory):
    """A live server over one synthetic published artifact."""
    rng = np.random.default_rng(424242)
    scores = rng.normal(size=(N_USERS, N_USERS))
    store = ArtifactStore(str(tmp_path_factory.mktemp("chaos-store")))
    store.publish(FrozenPredictor((scores + scores.T) / 2.0, {"name": "chaos"}))
    service = LinkPredictionService(store, cache_size=N_REQUESTS * 2)
    server = make_server(service, port=0, request_deadline_s=10.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}", service
    server.shutdown()
    server.server_close()


def _drive(base):
    """One request pass; returns (per-request latencies, status codes)."""
    latencies, statuses = [], []
    for i in range(N_REQUESTS):
        url = f"{base}/v1/topk?user={i % N_USERS}&k={TOP_K}"
        start = time.perf_counter()
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                json.load(response)
                statuses.append(response.status)
        except urllib.error.HTTPError as exc:
            json.loads(exc.read().decode("utf-8"))  # errors must stay JSON
            statuses.append(exc.code)
        latencies.append(time.perf_counter() - start)
    return latencies, statuses


def test_latency_and_error_rate_under_chaos(benchmark, endpoint):
    base, service = endpoint

    def run():
        GLOBAL_INJECTOR.reset()
        baseline = _drive(base)
        GLOBAL_INJECTOR._seed = 424242
        GLOBAL_INJECTOR.arm("serving.request", probability=FAULT_RATE)
        try:
            chaotic = _drive(base)
        finally:
            GLOBAL_INJECTOR.reset()
        return baseline, chaotic

    (base_lat, base_st), (chaos_lat, chaos_st) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    base_stats = record_snapshot(
        "chaos_off",
        {**percentile_summary(base_lat), **outcome_summary(base_st)},
        context=_CONTEXT,
    )["stats"]
    chaos_stats = record_snapshot(
        "chaos_degradation",
        {**percentile_summary(chaos_lat), **outcome_summary(chaos_st)},
        context=_CONTEXT,
    )["stats"]
    print(
        f"\nchaos off  p50={base_stats['p50_ms']:.3f}ms"
        f" p99={base_stats['p99_ms']:.3f}ms"
        f" errors={base_stats['error_rate']:.1%}"
        f"\nchaos 10%  p50={chaos_stats['p50_ms']:.3f}ms"
        f" p99={chaos_stats['p99_ms']:.3f}ms"
        f" errors={chaos_stats['error_rate']:.1%}"
    )

    # The clean path stays clean, and chaos produces only *clean* failures
    # near the armed rate — a crash or non-JSON body fails _drive itself.
    assert base_stats["error_rate"] == 0.0
    assert 0.0 < chaos_stats["error_rate"] < 3.0 * FAULT_RATE
    # Surviving requests must not slow pathologically under injection.
    assert chaos_stats["p99_ms"] < 1e3
