"""Regression tests for the trajectory file's per-key retention cap.

``record_snapshot`` must keep the history diffable without letting
``BENCH_serving.json`` grow one record per CI run forever: each
``(section, context)`` key retains only the newest
``MAX_SNAPSHOTS_PER_KEY`` snapshots, and distinct contexts (different
benchmark scales, different front ends) age out independently.
"""

from trajectory import (
    MAX_SNAPSHOTS_PER_KEY,
    latest_snapshots,
    load_trajectory,
    record_snapshot,
)


class TestSnapshotPruning:
    def test_one_key_keeps_only_newest_snapshots(self, tmp_path):
        path = str(tmp_path / "bench.json")
        total = MAX_SNAPSHOTS_PER_KEY + 5
        for i in range(total):
            record_snapshot(
                "topk_warm",
                {"p50_ms": float(i)},
                context={"scale": "small"},
                path=path,
            )
        snapshots = load_trajectory(path)["snapshots"]
        assert len(snapshots) == MAX_SNAPSHOTS_PER_KEY
        kept = [snap["stats"]["p50_ms"] for snap in snapshots]
        # Newest win, original order preserved.
        assert kept == [
            float(i)
            for i in range(total - MAX_SNAPSHOTS_PER_KEY, total)
        ]

    def test_different_contexts_age_independently(self, tmp_path):
        path = str(tmp_path / "bench.json")
        for i in range(MAX_SNAPSHOTS_PER_KEY + 3):
            record_snapshot(
                "bench_loadgen",
                {"qps": float(i)},
                context={"frontend": "aio"},
                path=path,
            )
        # A single snapshot under a different context must survive the
        # other key's churn.
        record_snapshot(
            "bench_loadgen",
            {"qps": 1.0},
            context={"frontend": "legacy"},
            path=path,
        )
        for i in range(3):
            record_snapshot(
                "bench_loadgen",
                {"qps": 100.0 + i},
                context={"frontend": "aio"},
                path=path,
            )
        snapshots = load_trajectory(path)["snapshots"]
        legacy = [
            snap
            for snap in snapshots
            if snap.get("context", {}).get("frontend") == "legacy"
        ]
        aio = [
            snap
            for snap in snapshots
            if snap.get("context", {}).get("frontend") == "aio"
        ]
        assert len(legacy) == 1
        assert len(aio) == MAX_SNAPSHOTS_PER_KEY

    def test_sections_age_independently(self, tmp_path):
        path = str(tmp_path / "bench.json")
        record_snapshot("topk_cold", {"p50_ms": 1.0}, path=path)
        for i in range(MAX_SNAPSHOTS_PER_KEY + 2):
            record_snapshot("topk_warm", {"p50_ms": float(i)}, path=path)
        assert len(latest_snapshots("topk_cold", path=path)) == 1
        warm = latest_snapshots(
            "topk_warm", limit=MAX_SNAPSHOTS_PER_KEY + 2, path=path
        )
        assert len(warm) == MAX_SNAPSHOTS_PER_KEY

    def test_context_key_is_order_insensitive(self, tmp_path):
        path = str(tmp_path / "bench.json")
        for i in range(MAX_SNAPSHOTS_PER_KEY + 1):
            # Alternate dict insertion order; both spell the same key.
            context = (
                {"a": 1, "b": 2} if i % 2 == 0 else {"b": 2, "a": 1}
            )
            record_snapshot(
                "batcher", {"p50_ms": float(i)}, context=context, path=path
            )
        snapshots = load_trajectory(path)["snapshots"]
        assert len(snapshots) == MAX_SNAPSHOTS_PER_KEY
