"""Ablation: negative-sampling strategy in the evaluation protocol.

The paper samples test negatives uniformly (our default).  Two-hop
negatives — non-linked pairs that share a neighbor — are the candidates
most confusable with true links, so all methods score lower on them; the
bench verifies the evaluation harness exposes that difficulty knob and that
SLAMPRED's advantage over structure-only prediction *widens* under hard
negatives (attribute and transfer information is exactly what separates a
hard negative from a true link).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.harness import cross_validate
from repro.evaluation.splits import k_fold_link_splits
from repro.models.slampred import SlamPred
from repro.models.unsupervised import CommonNeighbors
from repro.networks.social import SocialGraph


def test_ablation_negative_sampling(benchmark, bench_aligned):
    graph = SocialGraph.from_network(bench_aligned.target)

    def run():
        out = {}
        for strategy in ("uniform", "two_hop"):
            splits = k_fold_link_splits(
                graph, n_folds=2, random_state=7,
                negative_strategy=strategy,
            )
            for name, factory in (
                ("SLAMPRED", SlamPred),
                ("CN", CommonNeighbors),
            ):
                result = cross_validate(
                    factory, bench_aligned, splits,
                    random_state=7, precision_k=10,
                )
                out[(strategy, name)] = result.mean("auc")
        return out

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for (strategy, name), auc in aucs.items():
        print(f"  {strategy:8s} {name:9s} auc={auc:.3f}")

    # Hard negatives make the task harder for everyone…
    assert aucs[("two_hop", "CN")] < aucs[("uniform", "CN")]
    assert aucs[("two_hop", "SLAMPRED")] < aucs[("uniform", "SLAMPRED")] + 0.02
    # …but structure-only CN loses far more than SLAMPRED.
    cn_drop = aucs[("uniform", "CN")] - aucs[("two_hop", "CN")]
    slampred_drop = (
        aucs[("uniform", "SLAMPRED")] - aucs[("two_hop", "SLAMPRED")]
    )
    assert slampred_drop < cn_drop
