"""Benchmarks for the extension applications (denoising, covariance, temporal).

These run the [15]-style applications and the [14] autoregressive setting at
compact scale, asserting the qualitative claims each extension makes.
"""

from __future__ import annotations

import numpy as np

from repro.applications.covariance import SparseLowRankCovariance
from repro.applications.denoise import GraphDenoiser
from repro.evaluation.metrics import auc_score
from repro.temporal.autoregressive import AutoregressiveLinkPredictor
from repro.temporal.snapshots import evolve_snapshots


def test_graph_denoising(benchmark, rng):
    """Denoised scores separate consistent from inconsistent links."""
    n, communities = 60, 4
    labels = np.arange(n) % communities
    clean = (labels[:, None] == labels[None, :]).astype(float)
    np.fill_diagonal(clean, 0.0)
    noisy = clean.copy()
    rows, cols = np.triu_indices(n, k=1)
    flip = rng.random(rows.shape[0]) < 0.08
    noisy[rows[flip], cols[flip]] = 1.0 - noisy[rows[flip], cols[flip]]
    noisy[cols[flip], rows[flip]] = noisy[rows[flip], cols[flip]]

    denoiser = benchmark.pedantic(
        lambda: GraphDenoiser(tau=8.0).fit(noisy), rounds=1, iterations=1
    )
    scores = denoiser.scores
    consistency_labels = clean[rows, cols]
    auc = auc_score(scores[rows, cols], consistency_labels)
    print(f"\ndenoising: AUC(consistent links) = {auc:.3f}")
    # The noisy observation itself scores ~0.92 (8% flips); denoising must
    # recover structure beyond it.
    noisy_auc = auc_score(noisy[rows, cols], consistency_labels)
    assert auc > noisy_auc


def test_covariance_shrinkage(benchmark, rng):
    """In the low-rank-truth, few-samples regime, shrinkage does not lose
    Frobenius accuracy while concentrating the spectrum."""
    n_features, n_samples = 30, 15
    loadings = rng.normal(size=(n_features, 2))
    truth = loadings @ loadings.T + 0.1 * np.eye(n_features)
    samples = rng.multivariate_normal(
        np.zeros(n_features), truth, size=n_samples
    )

    estimator = benchmark.pedantic(
        lambda: SparseLowRankCovariance(gamma=0.01, tau=2.0).fit(samples),
        rounds=1,
        iterations=1,
    )
    centered = samples - samples.mean(axis=0)
    empirical = centered.T @ centered / (n_samples - 1)
    error_shrunk = np.linalg.norm(estimator.covariance - truth)
    error_raw = np.linalg.norm(empirical - truth)
    print(
        f"\ncovariance: ‖shrunk − truth‖={error_shrunk:.2f} "
        f"vs ‖empirical − truth‖={error_raw:.2f}"
    )
    assert error_shrunk <= error_raw

    def top2_mass(matrix):
        eigenvalues = np.sort(np.linalg.eigvalsh(matrix))[::-1]
        return eigenvalues[:2].sum() / max(eigenvalues.sum(), 1e-12)

    assert top2_mass(estimator.covariance) > top2_mass(empirical)


def test_temporal_autoregression(benchmark):
    """Longer decayed history beats last-snapshot-only on new links."""
    sequence = evolve_snapshots(
        n_nodes=80, n_steps=7, n_communities=4, persistence=0.85,
        random_state=23,
    )
    history = sequence.snapshots[:-1]
    future = sequence.snapshots[-1]
    last = history[-1]
    rows, cols = np.triu_indices(sequence.n_nodes, k=1)
    absent = last[rows, cols] == 0
    labels = future[rows, cols][absent]

    def run():
        out = {}
        for window in (1, 5):
            model = AutoregressiveLinkPredictor(window=window).fit(history)
            out[window] = auc_score(
                model.scores[rows, cols][absent], labels
            )
        return out

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ntemporal new-link AUC: window=1 → {aucs[1]:.3f}, "
          f"window=5 → {aucs[5]:.3f}")
    assert aucs[5] > 0.55
    assert aucs[5] >= aucs[1] - 0.02
