"""Benchmark: regenerate Table I (dataset statistics).

Paper reference (Table I): Twitter 5,223 users / 9.49M tweets / 164,920
follow links; Foursquare 5,392 users / 48,756 tips / 76,972 friend links;
3,388 anchor links.  The synthetic world reproduces the *asymmetries* —
the target posts an order of magnitude more, the source checks in on every
post, the target is denser — at laptop scale.
"""

from __future__ import annotations

from repro.experiments.table1 import run_table1


def test_table1_dataset_stats(benchmark):
    result = benchmark.pedantic(
        run_table1, kwargs={"scale": 150, "random_state": 3},
        rounds=3, iterations=1,
    )
    stats = result["stats"]
    target_stats = stats["twitter-like"]
    source_stats = stats["foursquare-like"]

    # Table I shape: every property populated.
    for network_stats in stats.values():
        assert network_stats["users"] > 0
        assert network_stats["posts"] > 0
        assert network_stats["social_links"] > 0

    # Twitter-like posts far more but checks in rarely; Foursquare-like
    # posts always carry a check-in (exactly as in the paper's Table I).
    assert target_stats["posts"] > 2 * source_stats["posts"]
    assert source_stats["locate_links"] == source_stats["posts"]
    assert target_stats["locate_links"] < target_stats["posts"] * 0.25

    # The target is the denser network (164,920 vs 76,972 in the paper).
    assert target_stats["social_links"] > source_stats["social_links"]

    # A majority of users are anchored (3,388 / 5,223 in the paper).
    assert result["anchors"] > 0.5 * target_stats["users"]

    print()
    print(result["text"])
