"""Perf-trajectory recorder: append latency snapshots to BENCH_serving.json.

Every serving-latency benchmark run appends one snapshot per measured
section — p50/p95/p99 in milliseconds plus enough context (git-tracked
scale constants, host python) to compare runs — into a single
append-only JSON file at the repo root.  Future PRs diff the latest
snapshot against history instead of re-deriving a baseline by hand, which
is what makes "<5% serving overhead" an enforceable regression gate
rather than folklore.

Snapshots are appended, never edited — but not unbounded: each
``record_snapshot`` call prunes the file to the newest
:data:`MAX_SNAPSHOTS_PER_KEY` entries per ``(section, context)`` key, so
the trajectory keeps enough history to diff against without growing
linearly in CI runs forever.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import tempfile
from typing import Dict, List, Optional, Sequence

import numpy as np

SCHEMA_VERSION = 1
BENCH_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_serving.json"
)
BENCH_SOLVER_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_solver.json"
)
"""Solver hot-path trajectory: same snapshot format, separate file, so the
fit-time history and the serving-latency history stay independently
diffable."""

MAX_SNAPSHOTS_PER_KEY = 8
"""How many snapshots each ``(section, context)`` key retains — newest
win; older ones are pruned on the next :func:`record_snapshot`."""


def _snapshot_key(record: Dict) -> str:
    """The pruning identity of one snapshot: section + canonical context.

    Context is serialized with sorted keys so two runs recording the
    same logical configuration collapse to one key regardless of dict
    ordering; snapshots with different contexts (say, two scales of the
    same benchmark) age out independently.
    """
    context = record.get("context") or {}
    return f"{record.get('section')}|{json.dumps(context, sort_keys=True)}"


def _prune(snapshots: List[Dict], limit: int) -> List[Dict]:
    """Drop all but the newest ``limit`` snapshots per key, keeping order."""
    kept: List[Dict] = []
    seen: Dict[str, int] = {}
    for record in reversed(snapshots):
        key = _snapshot_key(record)
        if seen.get(key, 0) < limit:
            seen[key] = seen.get(key, 0) + 1
            kept.append(record)
    kept.reverse()
    return kept


def percentile_summary(samples_seconds: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99 of a latency sample list, in milliseconds."""
    samples = np.asarray(list(samples_seconds), dtype=float) * 1e3
    if samples.size == 0:
        raise ValueError("cannot summarize an empty sample list")
    return {
        "p50_ms": float(np.percentile(samples, 50)),
        "p95_ms": float(np.percentile(samples, 95)),
        "p99_ms": float(np.percentile(samples, 99)),
        "n_samples": int(samples.size),
    }


def outcome_summary(statuses: Sequence[int]) -> Dict[str, float]:
    """Request-outcome rates from a list of HTTP status codes.

    Everything >= 400 counts as an error; under fault injection this is
    the "clean failure" rate (the unclean ones would have crashed the
    driving loop long before this summary).
    """
    statuses = list(statuses)
    if not statuses:
        raise ValueError("cannot summarize an empty status list")
    n_errors = sum(1 for status in statuses if status >= 400)
    return {
        "n_requests": len(statuses),
        "n_errors": n_errors,
        "error_rate": n_errors / len(statuses),
    }


def load_trajectory(path: Optional[str] = None) -> Dict:
    """The parsed trajectory file (empty scaffold when absent/corrupt)."""
    path = os.path.abspath(path or BENCH_PATH)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {"schema_version": SCHEMA_VERSION, "snapshots": []}
    if (
        not isinstance(data, dict)
        or not isinstance(data.get("snapshots"), list)
    ):
        return {"schema_version": SCHEMA_VERSION, "snapshots": []}
    return data


def record_snapshot(
    section: str,
    stats: Dict[str, float],
    context: Optional[Dict] = None,
    path: Optional[str] = None,
) -> Dict:
    """Append one named snapshot; returns the appended record.

    Parameters
    ----------
    section:
        Which benchmark produced the numbers (``topk_cold``,
        ``topk_warm``, ``batcher``, ``telemetry_overhead`` …).
    stats:
        The measurements — typically :func:`percentile_summary` output,
        but any JSON-scalar dict is accepted.
    context:
        Extra JSON-compatible context (scale constants, thread counts).
    path:
        Trajectory file (default: repo-root ``BENCH_serving.json``).
    """
    path = os.path.abspath(path or BENCH_PATH)
    trajectory = load_trajectory(path)
    record = {
        "section": section,
        "recorded_at": datetime.datetime.now(
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "stats": {key: _scalar(value) for key, value in stats.items()},
    }
    if context:
        record["context"] = {
            key: _scalar(value) for key, value in context.items()
        }
    trajectory["snapshots"].append(record)
    trajectory["snapshots"] = _prune(
        trajectory["snapshots"], MAX_SNAPSHOTS_PER_KEY
    )
    trajectory["schema_version"] = SCHEMA_VERSION
    # Write-then-rename so a crashed benchmark never truncates history.
    directory = os.path.dirname(path)
    fd, staging = tempfile.mkstemp(dir=directory, suffix=".bench-staging")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(staging, path)
    except BaseException:
        if os.path.exists(staging):
            os.unlink(staging)
        raise
    return record


def latest_snapshots(
    section: str, limit: int = 5, path: Optional[str] = None
) -> List[Dict]:
    """The most recent ``limit`` snapshots of one section, newest last."""
    snapshots = [
        snap
        for snap in load_trajectory(path)["snapshots"]
        if snap.get("section") == section
    ]
    return snapshots[-limit:]


def _scalar(value):
    """Coerce numpy scalars to JSON scalars; pass scalars through."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
