"""Ablation: the sparse and low-rank regularizers (DESIGN.md §5).

The paper's experimental-discovery summary claims the regularization terms
"work well in improving the performance".  This ablation fits SLAMPRED-T
with each regularizer switched off and compares predictor structure: γ
controls how many candidate pairs survive (sparsity), τ controls spectral
concentration (low rank).
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.metrics import auc_score
from repro.models.base import TransferTask
from repro.models.slampred import SlamPredT
from repro.utils.matrices import density


def _fit(bench_aligned, split, **kwargs):
    task = TransferTask(
        target=bench_aligned.target,
        training_graph=split.training_graph,
        sources=list(bench_aligned.sources),
        anchors=list(bench_aligned.anchors),
        random_state=np.random.default_rng(5),
    )
    return SlamPredT(**kwargs).fit(task)


def _spectral_mass_top_quarter(matrix):
    """Fraction of trace-norm energy in the top quarter of singular values."""
    singular = np.linalg.svd(matrix, compute_uv=False)
    top = max(1, len(singular) // 4)
    total = singular.sum()
    return float(singular[:top].sum() / total) if total > 0 else 1.0


def test_ablation_regularizers(benchmark, bench_aligned, bench_splits):
    split = bench_splits[0]

    def run():
        return {
            "full": _fit(bench_aligned, split),
            "no_sparse": _fit(bench_aligned, split, gamma=1e-8),
            "heavy_sparse": _fit(bench_aligned, split, gamma=1.0),
            "no_lowrank": _fit(bench_aligned, split, tau=1e-8),
            "heavy_lowrank": _fit(bench_aligned, split, tau=8.0),
        }

    models = benchmark.pedantic(run, rounds=1, iterations=1)

    # γ controls sparsity of the predictor matrix.
    assert density(models["heavy_sparse"].score_matrix, atol=1e-9) < density(
        models["no_sparse"].score_matrix, atol=1e-9
    )

    # τ concentrates the spectrum (low-rank structure).
    assert _spectral_mass_top_quarter(
        models["heavy_lowrank"].score_matrix
    ) > _spectral_mass_top_quarter(models["no_lowrank"].score_matrix)

    # Neither extreme destroys ranking quality on this substrate.
    print()
    print("regularizer ablation (AUC / density / top-25% spectral mass):")
    for name, model in models.items():
        auc = auc_score(model.score_pairs(split.test_pairs), split.test_labels)
        print(
            f"  {name:14s} auc={auc:.3f} "
            f"density={density(model.score_matrix, atol=1e-9):.3f} "
            f"spectral={_spectral_mass_top_quarter(model.score_matrix):.3f}"
        )
        assert auc > 0.6, name
