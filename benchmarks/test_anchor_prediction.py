"""Benchmark: anchor-link prediction (extension beyond the paper).

The SLT problem takes anchors as given; this extension infers them from
cross-network attribute profiles with optimal one-to-one matching.  The
bench measures prediction quality against the planted ground truth and the
end-to-end value of inferred anchors for link transfer.
"""

from __future__ import annotations

import numpy as np

from repro.alignment.matcher import AnchorPredictor
from repro.evaluation.metrics import auc_score
from repro.evaluation.splits import k_fold_link_splits
from repro.models.base import TransferTask
from repro.models.slampred import SlamPred, SlamPredT
from repro.networks.social import SocialGraph
from repro.synth.generator import generate_aligned_pair


def test_anchor_prediction_quality(benchmark):
    aligned = generate_aligned_pair(scale=120, random_state=19)
    predictor = AnchorPredictor(min_similarity=0.05)

    predicted = benchmark.pedantic(
        predictor.predict,
        args=(aligned.target, aligned.sources[0]),
        rounds=3,
        iterations=1,
    )
    metrics = predictor.evaluate(predicted, aligned.anchors[0])
    print(
        f"\nanchor prediction: precision={metrics['precision']:.3f} "
        f"recall={metrics['recall']:.3f} f1={metrics['f1']:.3f} "
        f"({len(predicted)} predicted / {len(aligned.anchors[0])} true)"
    )
    # Random one-to-one matching scores ~1/n ≈ 1% F1 here.
    assert metrics["f1"] > 0.2

    # One-to-one constraint respected.
    targets = [t for t, _ in predicted.pairs]
    assert len(set(targets)) == len(targets)


def test_inferred_anchor_transfer(benchmark):
    """Inferred anchors must recover part of the ground-truth transfer gain."""
    aligned = generate_aligned_pair(scale=120, random_state=19)
    graph = SocialGraph.from_network(aligned.target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=19)[0]

    def run():
        predicted = AnchorPredictor(min_similarity=0.05).predict(
            aligned.target, aligned.sources[0]
        )
        out = {}
        for name, model, anchors in (
            ("target-only", SlamPredT(), None),
            ("inferred", SlamPred(), predicted),
            ("truth", SlamPred(), aligned.anchors[0]),
        ):
            if anchors is None:
                task = TransferTask(
                    target=aligned.target,
                    training_graph=split.training_graph,
                    random_state=np.random.default_rng(19),
                )
            else:
                task = TransferTask(
                    target=aligned.target,
                    training_graph=split.training_graph,
                    sources=list(aligned.sources),
                    anchors=[anchors],
                    random_state=np.random.default_rng(19),
                )
            model.fit(task)
            out[name] = auc_score(
                model.score_pairs(split.test_pairs), split.test_labels
            )
        return out

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n{aucs}")
    assert aucs["truth"] >= aucs["inferred"] - 0.02
    assert aucs["inferred"] > aucs["target-only"] - 0.02
