"""Benchmark: regenerate Figure 3 (CCCP convergence).

Paper reference: both panels of Figure 3 — ‖S^h‖₁ stabilizing and
‖S^h − S^{h−1}‖₁ decaying towards zero within ~300 iterations.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure3 import run_figure3


def test_figure3_convergence(benchmark):
    result = benchmark.pedantic(
        run_figure3,
        kwargs={"scale": 70, "random_state": 9},
        rounds=1,
        iterations=1,
    )
    variable = np.array(result["variable_norms"])
    updates = np.array(result["update_norms"])

    assert result["n_iterations"] > 5

    # Right panel: the update norm decays by orders of magnitude.
    assert updates[-1] < updates[0] * 0.05

    # Left panel: ‖S^h‖₁ stabilizes — the last 10% of iterations move the
    # norm by less than 1%.
    tail = variable[-max(2, len(variable) // 10):]
    assert tail.max() - tail.min() < 0.01 * abs(variable[-1])

    # The outer loop declared convergence (paper: within ~300 rounds).
    assert result["converged"]

    print()
    print(result["text"])
