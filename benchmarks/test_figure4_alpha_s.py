"""Benchmark: regenerate Figure 4 (α_s sweep at fixed α_t).

Paper reference: with α_t = 0 the model leans only on transferred
information and increasing α_s does not recover the full model's
performance; with α_t = 1 a moderate α_s helps before over-weighting the
source degrades the fit.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figure4 import run_figure4

ALPHAS = (0.0, 0.5, 1.0)


def test_figure4_alpha_s(benchmark):
    result = benchmark.pedantic(
        run_figure4,
        kwargs={
            "fixed_alpha_t": (0.0, 1.0),
            "alphas": ALPHAS,
            "scale": 60,
            "n_folds": 2,
            "precision_k": 10,
            "random_state": 13,
        },
        rounds=1,
        iterations=1,
    )
    curves = result["curves"]

    with_target = np.array(curves[(1.0, "auc")])
    without_target = np.array(curves[(0.0, "auc")])

    # All points are valid AUCs and the sweep produced one value per α_s.
    for series in (with_target, without_target):
        assert series.shape == (len(ALPHAS),)
        assert np.all((series >= 0.0) & (series <= 1.0))

    # Figure 4's observation: the target's own attribute term matters —
    # with α_t = 1 the best point dominates the α_t = 0 curve.
    assert with_target.max() > without_target.max() - 0.02

    # With α_t = 1, enabling the source term (α_s > 0) reaches at least the
    # no-transfer point (the "moderate α_s helps" panel).
    assert with_target[1:].max() >= with_target[0] - 0.02

    print()
    print(result["text"])
