"""Ablations: loss surrogate and intimacy gradient scale (DESIGN.md §5).

* Loss surrogate — the paper replaces its 0/1 loss with the squared
  Frobenius surrogate over *all* entries; the classical matrix-completion
  alternative penalizes only observed entries (``MaskedSquaredLoss``).
* Gradient scale — the calibrated intimacy gradient lives in [0, 1] while
  the loss gradient spans [−2, 2]; ``intimacy_scale`` balances them.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.metrics import auc_score
from repro.models.base import TransferTask
from repro.models.slampred import SlamPred, SlamPredT
from repro.optim.cccp import CCCPSolver
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import ForwardBackwardSolver
from repro.optim.losses import MaskedSquaredLoss, SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx
from repro.utils.matrices import zero_diagonal


def _task(bench_aligned, split):
    return TransferTask(
        target=bench_aligned.target,
        training_graph=split.training_graph,
        sources=list(bench_aligned.sources),
        anchors=list(bench_aligned.anchors),
        random_state=np.random.default_rng(5),
    )


def test_ablation_loss_surrogate(benchmark, bench_aligned, bench_splits):
    """Full squared loss vs observed-entries-only masked loss."""
    split = bench_splits[0]
    task = _task(bench_aligned, split)
    model = SlamPredT()
    gradient = model.intimacy_scale * model._intimacy_gradient(task)
    adjacency = split.training_graph.adjacency

    mask = adjacency.copy()  # observe the existing links only
    prox = [TraceNormProx(1.0), L1Prox(0.05), BoxProjection(0.0, None)]

    def solve(loss):
        solver = CCCPSolver(
            loss=loss,
            prox_terms=prox,
            intimacy_gradient=gradient,
            inner_solver=ForwardBackwardSolver(
                0.05, ConvergenceCriterion(1e-3, 25)
            ),
            outer_criterion=ConvergenceCriterion(1e-3, 40),
        )
        return zero_diagonal(solver.solve(adjacency).solution)

    def run():
        return {
            "frobenius": solve(SquaredFrobeniusLoss(adjacency)),
            "masked": solve(MaskedSquaredLoss(adjacency, mask)),
        }

    solutions = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = np.array([p[0] for p in split.test_pairs])
    cols = np.array([p[1] for p in split.test_pairs])
    print()
    print("loss surrogate ablation (AUC):")
    for name, matrix in solutions.items():
        auc = auc_score(matrix[rows, cols], split.test_labels)
        print(f"  {name:10s} {auc:.3f}")
        assert auc > 0.6, name


def test_ablation_gradient_scale(benchmark, bench_aligned, bench_splits):
    """AUC as a function of intimacy_scale — too small drowns the ranking."""
    split = bench_splits[0]

    def run():
        out = {}
        for scale in (0.5, 1.0, 4.0, 8.0):
            model = SlamPred(intimacy_scale=scale).fit(
                _task(bench_aligned, split)
            )
            out[scale] = auc_score(
                model.score_pairs(split.test_pairs), split.test_labels
            )
        return out

    aucs = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("intimacy_scale ablation (AUC):")
    for scale, auc in aucs.items():
        print(f"  scale={scale:4.1f}  {auc:.3f}")

    # The default (4.0) should not be worse than the drowned regime (0.5).
    assert aucs[4.0] >= aucs[0.5] - 0.02
