"""Link prediction in a time-evolving graph (extension, ref. [14]).

The paper's sparse + low-rank machinery also powers the autoregressive
formulation of Richard et al. (JMLR 2014): predict the *next* snapshot of an
evolving network from a decayed history of past snapshots.  This example
evolves a community-structured graph for several steps, fits the
autoregressive estimator on the history, and measures how well it foresees
the links that appear at the next step.

Run with::

    python examples/temporal_evolution.py
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import auc_score
from repro.temporal import AutoregressiveLinkPredictor, evolve_snapshots


def main() -> None:
    sequence = evolve_snapshots(
        n_nodes=100,
        n_steps=8,
        n_communities=4,
        persistence=0.85,
        random_state=29,
    )
    print(
        f"{sequence.n_steps} snapshots over {sequence.n_nodes} nodes; "
        f"links per snapshot ≈ "
        f"{int(np.mean([s.sum() / 2 for s in sequence.snapshots]))}"
    )
    churn = len(sequence.new_links(1))
    print(f"~{churn} new links appear per step\n")

    history = sequence.snapshots[:-1]
    future = sequence.snapshots[-1]
    last = history[-1]
    rows, cols = np.triu_indices(sequence.n_nodes, k=1)
    absent = last[rows, cols] == 0
    labels = future[rows, cols][absent]

    print("window  decay  AUC(next snapshot)  AUC(new links only)")
    print("-" * 56)
    for window, decay in [(1, 0.6), (3, 0.6), (5, 0.6), (5, 0.9)]:
        model = AutoregressiveLinkPredictor(window=window, decay=decay)
        model.fit(history)
        all_auc = auc_score(model.scores[rows, cols], future[rows, cols])
        new_auc = auc_score(model.scores[rows, cols][absent], labels)
        print(f"{window:6d}  {decay:5.1f}  {all_auc:18.3f}  {new_auc:19.3f}")

    model = AutoregressiveLinkPredictor(window=5).fit(history)
    hits = sum(
        future[i, j] == 1.0 for i, j, _ in model.predict_new_links(top_k=20)
    )
    base_rate = labels.mean()
    print(
        f"\ntop-20 predicted new links: {hits}/20 materialize at T+1 "
        f"(base rate {base_rate:.1%} → {hits / 20 / base_rate:.1f}x lift)"
    )


if __name__ == "__main__":
    main()
