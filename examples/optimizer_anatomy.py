"""Anatomy of the optimizer: CCCP convergence and the regularizer knobs.

Reproduces the paper's Figure 3 convergence behaviour on a fresh fit and
then shows what the two regularizers do to the predictor matrix:

* γ (ℓ1) controls sparsity — larger γ zeroes more candidate pairs;
* τ (trace norm) controls rank — larger τ forces a lower-rank, more
  community-smoothed predictor.

Run with::

    python examples/optimizer_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro import SlamPredT, SocialGraph, TransferTask, generate_aligned_pair
from repro.utils.matrices import density


def sparkline(series, width=48) -> str:
    """Tiny ASCII chart of a numeric series."""
    blocks = " ▁▂▃▄▅▆▇█"
    series = np.asarray(series, dtype=float)
    if len(series) > width:
        bucket = len(series) / width
        series = np.array(
            [series[int(i * bucket)] for i in range(width)]
        )
    low, high = series.min(), series.max()
    span = (high - low) or 1.0
    return "".join(
        blocks[int((value - low) / span * (len(blocks) - 1))]
        for value in series
    )


def main() -> None:
    aligned = generate_aligned_pair(scale=100, random_state=5)
    graph = SocialGraph.from_network(aligned.target)

    task = TransferTask(
        target=aligned.target,
        training_graph=graph,
        random_state=5,
    )

    print("=== Figure 3: CCCP convergence ===")
    model = SlamPredT(tolerance=1e-6, outer_iterations=60).fit(task)
    history = model.result.history
    print(f"proximal iterations : {history.n_iterations}")
    print(f"CCCP rounds         : {model.result.n_rounds} "
          f"(converged={model.result.converged})")
    print(f"||S^h||_1           : {sparkline(history.variable_norms)}")
    print(f"||S^h - S^h-1||_1   : {sparkline(history.update_norms)}")
    print(f"final update norm   : {history.update_norms[-1]:.2e}")

    print("\n=== gamma (sparsity) sweep ===")
    print("gamma   density(S)")
    for gamma in (0.01, 0.1, 0.5, 1.0):
        model = SlamPredT(gamma=gamma).fit(task)
        print(f"{gamma:5.2f}   {density(model.score_matrix, atol=1e-6):.3f}")

    print("\n=== tau (low rank) sweep ===")
    print("tau     top-10% spectral mass of S")
    for tau in (0.1, 1.0, 4.0, 8.0):
        model = SlamPredT(tau=tau).fit(task)
        singular = np.linalg.svd(model.score_matrix, compute_uv=False)
        top = max(1, len(singular) // 10)
        mass = singular[:top].sum() / singular.sum()
        print(f"{tau:5.2f}   {mass:.3f}")


if __name__ == "__main__":
    main()
