"""Cold start: transfer matters most when the target is sparse.

The paper motivates Social Link Transfer by information sparsity: a young
network (or a new region of one) has too few observed links to predict from
alone.  This example progressively hides larger fractions of the target's
links and compares SLAMPRED (with transfer) against SLAMPRED-T (target only)
— the sparser the target, the larger the transfer gain.

Run with::

    python examples/cold_start_sparsity.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    SlamPred,
    SlamPredT,
    SocialGraph,
    TransferTask,
    auc_score,
    generate_aligned_pair,
)

HIDE_FRACTIONS = (0.2, 0.4, 0.6, 0.8)


def hide_links(graph: SocialGraph, fraction: float, rng) -> tuple:
    """Split the graph's links into (training view, hidden links)."""
    links = sorted(graph.links())
    n_hide = int(round(len(links) * fraction))
    hidden_idx = rng.choice(len(links), size=n_hide, replace=False)
    hidden = [links[i] for i in sorted(hidden_idx.tolist())]
    return graph.mask_links(hidden), hidden


def main() -> None:
    aligned = generate_aligned_pair(scale=100, random_state=31)
    graph = SocialGraph.from_network(aligned.target)
    rng = np.random.default_rng(31)
    print(f"target has {graph.n_links} links; "
          f"{len(aligned.anchors[0])} anchors to the source\n")
    print("hidden  density  SLAMPRED  SLAMPRED-T  transfer gain")
    print("-" * 55)
    for fraction in HIDE_FRACTIONS:
        training, hidden = hide_links(graph, fraction, rng)
        negatives_pool = [
            p for p in training.non_links() if p not in set(hidden)
        ]
        neg_idx = rng.choice(
            len(negatives_pool), size=len(hidden), replace=False
        )
        pairs = hidden + [negatives_pool[i] for i in sorted(neg_idx.tolist())]
        labels = np.concatenate(
            [np.ones(len(hidden)), np.zeros(len(pairs) - len(hidden))]
        )
        aucs = {}
        for cls in (SlamPred, SlamPredT):
            task = TransferTask(
                target=aligned.target,
                training_graph=training,
                sources=list(aligned.sources),
                anchors=list(aligned.anchors),
                random_state=np.random.default_rng(31),
            )
            model = cls().fit(task)
            aucs[model.name] = auc_score(model.score_pairs(pairs), labels)
        gain = aucs["SLAMPRED"] - aucs["SLAMPRED-T"]
        print(
            f"{fraction:6.0%}  {training.density():7.3f}  "
            f"{aucs['SLAMPRED']:8.3f}  {aucs['SLAMPRED-T']:10.3f}  "
            f"{gain:+13.3f}"
        )
    print(
        "\nthe sparser the observed target, the more the aligned source "
        "contributes"
    )


if __name__ == "__main__":
    main()
