"""Cross-network transfer: how much do anchor links buy you?

The paper's central question (Table II): as more anchor links align the
target with the source network, how does link prediction improve — and does
the domain-adapted SLAMPRED extract more from them than naive feature
merging (SCAN) or PU learning (PL)?

This example runs a compact anchor-ratio sweep and prints the AUC series per
method, highlighting the gap at full alignment.

Run with::

    python examples/cross_network_transfer.py
"""

from __future__ import annotations

from repro import generate_aligned_pair
from repro.evaluation import MethodSpec, run_anchor_sweep
from repro.models import PLPredictor, ScanPredictor, SlamPred, SlamPredT

RATIOS = (0.0, 0.25, 0.5, 0.75, 1.0)


def main() -> None:
    aligned = generate_aligned_pair(scale=100, random_state=11)
    methods = [
        MethodSpec("SLAMPRED", SlamPred, uses_sources=True),
        MethodSpec("SLAMPRED-T", SlamPredT, uses_sources=False),
        MethodSpec("SCAN", ScanPredictor, uses_sources=True),
        MethodSpec("PL", PLPredictor, uses_sources=True),
    ]
    print(f"sweeping anchor ratios {RATIOS} over "
          f"{len(aligned.anchors[0])} available anchors…\n")
    sweep = run_anchor_sweep(
        aligned,
        methods=methods,
        ratios=RATIOS,
        n_folds=3,
        precision_k=20,
        random_state=11,
    )

    header = "method      " + "  ".join(f"{r:>6.2f}" for r in RATIOS)
    print(header)
    print("-" * len(header))
    for method in sweep.methods:
        series = sweep.series(method, "auc")
        row = "  ".join(f"{value:6.3f}" for value in series)
        print(f"{method:<12}{row}")

    full = sweep.cell("SLAMPRED", 1.0).mean("auc")
    alone = sweep.cell("SLAMPRED-T", 1.0).mean("auc")
    print(
        f"\ntransfer gain at full alignment: "
        f"{full - alone:+.3f} AUC over the target-only model"
    )
    print(
        "note how SLAMPRED improves steadily with the ratio while the "
        "target-only row stays flat"
    )


if __name__ == "__main__":
    main()
