"""Serving "people you may know" from a fitted SLAMPRED model.

The paper's motivation is retention: users with more friends use the network
more, so surfacing good friend candidates matters.  This example fits
SLAMPRED, wraps it in the :class:`~repro.models.recommender.LinkRecommender`
serving facade, persists the fitted predictor to disk, reloads it in a
"serving process" that never sees the training stack, and measures the
hit rate on hidden links.

Run with::

    python examples/people_you_may_know.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import (
    SlamPred,
    SocialGraph,
    TransferTask,
    generate_aligned_pair,
    k_fold_link_splits,
    load_predictor,
    save_predictor,
)
from repro.models.recommender import LinkRecommender


def main() -> None:
    aligned = generate_aligned_pair(scale=120, random_state=23)
    graph = SocialGraph.from_network(aligned.target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=23)[0]

    # --- training process ------------------------------------------------
    task = TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        sources=list(aligned.sources),
        anchors=list(aligned.anchors),
        random_state=np.random.default_rng(23),
    )
    model = SlamPred().fit(task)
    with tempfile.NamedTemporaryFile(suffix=".npz", delete=False) as handle:
        path = handle.name
    save_predictor(model, path)
    print(f"trained SLAMPRED, persisted to {path}")

    # --- serving process --------------------------------------------------
    served = load_predictor(path)
    recommender = LinkRecommender(served, split.training_graph)

    user = int(np.argmax(split.training_graph.degrees()))
    print(f"\nrecommendations for the best-connected user (#{user}, "
          f"{split.training_graph.degree(user)} friends):")
    for candidate, score in recommender.recommend(user, k=5):
        marker = "✓ hidden link!" if (
            (min(user, candidate), max(user, candidate)) in split.test_links
        ) else ""
        print(f"  user {candidate:3d}  score={score:.3f}  {marker}")

    for k in (5, 10, 20):
        rate = recommender.hit_rate(split.test_links, k=k)
        print(f"hit rate @ top-{k}: {rate:.1%} of hidden links surfaced")


if __name__ == "__main__":
    main()
