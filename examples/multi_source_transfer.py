"""Multiple aligned source networks (the paper's K > 1 setting).

Definition 2 allows K source networks aligned with the target; SLAMPRED sums
one intimacy term per source with its own weight α_k.  This example builds a
world observed by THREE platforms — a Twitter-like target plus a
Foursquare-like and an Instagram-like source — and measures what each
source, and both together, contribute.

Run with::

    python examples/multi_source_transfer.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AttributeConfig,
    NetworkConfig,
    SlamPred,
    SlamPredT,
    SocialGraph,
    TransferTask,
    WorldConfig,
    auc_score,
    k_fold_link_splits,
)
from repro.synth import AlignedNetworkGenerator


def three_platform_world(scale: int = 100) -> WorldConfig:
    """Target + two sources with different attribute personalities."""
    return WorldConfig(
        n_persons=scale,
        n_communities=max(2, scale // 40),
        n_locations=max(12, scale // 5),
        vocabulary_size=max(60, scale),
        link_correlation=0.7,
        target=NetworkConfig(
            name="twitter-like",
            participation=0.9,
            p_in=0.28,
            p_out=0.012,
            attributes=AttributeConfig(
                posts_per_user=12.0, checkin_probability=0.08,
                words_per_post=8, platform_bias=0.15,
            ),
        ),
        sources=[
            NetworkConfig(
                name="foursquare-like",
                participation=0.85,
                p_in=0.18,
                p_out=0.008,
                attributes=AttributeConfig(
                    posts_per_user=4.0, checkin_probability=1.0,
                    words_per_post=5, platform_bias=0.15,
                ),
            ),
            NetworkConfig(
                name="instagram-like",
                participation=0.85,
                p_in=0.22,
                p_out=0.01,
                attributes=AttributeConfig(
                    posts_per_user=7.0, checkin_probability=0.5,
                    words_per_post=3, platform_bias=0.15,
                ),
            ),
        ],
    ).validate()


def main() -> None:
    aligned = AlignedNetworkGenerator(three_platform_world()).generate(
        random_state=41
    )
    print("networks:")
    for network in aligned.networks:
        print(f"  {network.name:17s} {network.n_users:4d} users "
              f"{network.n_social_links:5d} links")
    print(f"anchors: {[len(a) for a in aligned.anchors]}")

    graph = SocialGraph.from_network(aligned.target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=41)[0]

    def evaluate(model, sources, anchors):
        task = TransferTask(
            target=aligned.target,
            training_graph=split.training_graph,
            sources=sources,
            anchors=anchors,
            random_state=np.random.default_rng(41),
        )
        model.fit(task)
        return auc_score(model.score_pairs(split.test_pairs), split.test_labels)

    print("\nconfiguration                       AUC")
    print("-" * 42)
    rows = [
        ("target only (SLAMPRED-T)", SlamPredT(), [], []),
        ("+ foursquare-like", SlamPred(), aligned.sources[:1], aligned.anchors[:1]),
        ("+ instagram-like", SlamPred(), aligned.sources[1:], aligned.anchors[1:]),
        ("+ both sources", SlamPred(), aligned.sources, aligned.anchors),
        (
            "+ both, instagram down-weighted",
            SlamPred(alpha_sources=[1.0, 0.5]),
            aligned.sources,
            aligned.anchors,
        ),
    ]
    for label, model, sources, anchors in rows:
        auc = evaluate(model, list(sources), list(anchors))
        print(f"{label:34s} {auc:.3f}")


if __name__ == "__main__":
    main()
