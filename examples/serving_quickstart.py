"""End-to-end serving demo: fit → publish → serve → query.

Fits a small SLAMPRED-T on a synthetic world, publishes the fitted
predictor (plus the known-link graph) into a versioned artifact store,
starts the HTTP endpoint on a free port, and queries ``/healthz``,
``/v1/topk``, ``/v1/score`` and ``/v1/stats`` over real sockets —
asserting the response shapes on the way, so CI can run this file as the
serving smoke check.

Run with::

    PYTHONPATH=src python examples/serving_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request

from repro import SlamPredT, TransferTask, generate_aligned_pair
from repro.networks.social import SocialGraph
from repro.serving import (
    ArtifactStore,
    LinkPredictionService,
    MicroBatcher,
    make_server,
)

SCALE = 40
SEED = 7


def fetch(url: str, payload=None):
    """GET (or POST ``payload`` as JSON) and parse the JSON response."""
    if payload is None:
        request = url
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


def main() -> None:
    """Run the publish → serve → query loop and print each stage."""
    # 1. Fit on synthetic data (fast, laptop-scale).
    aligned = generate_aligned_pair(scale=SCALE, random_state=SEED)
    task = TransferTask.from_aligned(aligned, random_state=SEED)
    model = SlamPredT(inner_iterations=10, outer_iterations=6).fit(task)
    graph = SocialGraph.from_network(aligned.target)
    print(f"fitted {model.name} on {graph.n_users} users / {graph.n_links} links")

    # 2. Publish a checksummed, versioned artifact.
    store = ArtifactStore(tempfile.mkdtemp(prefix="slampred-store-"))
    version = store.publish(
        model, graph=graph, meta={"demo": "serving_quickstart"}
    )
    print(f"published v{version:04d} -> {store.path(version)}")

    # 3. Serve it: service + micro-batcher + HTTP endpoint on a free port.
    service = LinkPredictionService(store, cache_size=256)
    with MicroBatcher(service, max_batch=32, max_wait_ms=2.0) as batcher:
        server = make_server(service, port=0, batcher=batcher)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        print(f"serving on {base}")
        try:
            # 4. Query it like a client would.
            health = fetch(f"{base}/healthz")
            assert health["status"] == "ok" and health["version"] == version
            print(f"healthz   {health}")

            topk = fetch(f"{base}/v1/topk?user=0&k=5")
            candidates = topk["candidates"]
            assert len(candidates) == 5
            assert len({c["user"] for c in candidates}) == 5  # deduplicated
            for c in candidates:
                assert c["user"] != 0
                assert graph.adjacency[0, c["user"]] == 0  # no existing edges
            print(f"topk(0)   {[(c['user'], round(c['score'], 3)) for c in candidates]}")

            fetch(f"{base}/v1/topk?user=0&k=5")  # warm-cache repeat
            pair = fetch(f"{base}/v1/score?u=0&v=1")
            print(f"score     (0,1) -> {pair['score']:.4f} known={pair['known_link']}")

            batch = fetch(f"{base}/v1/topk", {"users": [1, 2, 3], "k": 3})
            assert len(batch["results"]) == 3
            print(f"batch     {len(batch['results'])} users answered")

            stats = fetch(f"{base}/v1/stats")
            assert stats["cache"]["hits"] >= 1  # cache hit counters visible
            print(
                f"stats     cache hits={stats['cache']['hits']} "
                f"misses={stats['cache']['misses']} "
                f"requests={stats['counters']['serve.requests']}"
            )
        finally:
            server.shutdown()
            server.server_close()
    print("serving quickstart OK")


if __name__ == "__main__":
    main()
