"""End-to-end SLT without ground-truth anchors.

The paper assumes anchor links are given; in practice they are often
*inferred* (network alignment, Kong et al. CIKM'13).  This example runs the
full pipeline with no alignment supervision at all:

1. predict anchor links from cross-network attribute profiles
   (:mod:`repro.alignment` — optimal one-to-one matching of
   reciprocal-weighted profile similarities);
2. feed the *predicted* anchors to SLAMPRED and compare against the
   ground-truth-anchored and unaligned models.

Run with::

    python examples/inferred_anchors.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    SlamPred,
    SlamPredT,
    SocialGraph,
    TransferTask,
    auc_score,
    generate_aligned_pair,
    k_fold_link_splits,
)
from repro.alignment import AnchorPredictor


def main() -> None:
    aligned = generate_aligned_pair(scale=120, random_state=19)
    target, source = aligned.target, aligned.sources[0]

    # --- step 1: infer the anchors -------------------------------------
    predictor = AnchorPredictor(min_similarity=0.05)
    predicted_anchors = predictor.predict(target, source)
    quality = predictor.evaluate(predicted_anchors, aligned.anchors[0])
    print(f"true anchors      : {len(aligned.anchors[0])}")
    print(f"predicted anchors : {len(predicted_anchors)}")
    print(
        f"anchor prediction : precision={quality['precision']:.3f} "
        f"recall={quality['recall']:.3f} f1={quality['f1']:.3f}"
    )

    # --- step 2: link transfer with each anchor source ------------------
    graph = SocialGraph.from_network(target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=19)[0]

    def run(model, anchors):
        if anchors is None:
            task = TransferTask(
                target=target,
                training_graph=split.training_graph,
                random_state=np.random.default_rng(19),
            )
        else:
            task = TransferTask(
                target=target,
                training_graph=split.training_graph,
                sources=[source],
                anchors=[anchors],
                random_state=np.random.default_rng(19),
            )
        model.fit(task)
        return auc_score(model.score_pairs(split.test_pairs), split.test_labels)

    print("\nanchor source            AUC")
    print("-" * 33)
    print(f"{'none (SLAMPRED-T)':24s} {run(SlamPredT(), None):.3f}")
    print(f"{'inferred anchors':24s} {run(SlamPred(), predicted_anchors):.3f}")
    print(f"{'ground-truth anchors':24s} {run(SlamPred(), aligned.anchors[0]):.3f}")
    print(
        "\neven imperfectly inferred anchors recover part of the transfer "
        "gain — wrong anchors mostly contribute noise that the calibrated "
        "readout down-weights"
    )


if __name__ == "__main__":
    main()
