"""Quickstart: predict social links in a target network with SLAMPRED.

Generates a small aligned Foursquare/Twitter-like pair, hides 20% of the
target's links, fits the full SLAMPRED model and reports how well the hidden
links are recovered.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    SlamPred,
    SocialGraph,
    TransferTask,
    auc_score,
    generate_aligned_pair,
    k_fold_link_splits,
    precision_at_k,
)


def main() -> None:
    # 1. An aligned pair: a Twitter-like target + Foursquare-like source
    #    sharing ~90% of their users through anchor links.
    aligned = generate_aligned_pair(scale=120, random_state=7)
    target, source = aligned.target, aligned.sources[0]
    print(f"target  {target.name}: {target.n_users} users, "
          f"{target.n_social_links} links, {target.n_posts} posts")
    print(f"source  {source.name}: {source.n_users} users, "
          f"{source.n_social_links} links, {source.n_posts} posts")
    print(f"anchors: {len(aligned.anchors[0])}")

    # 2. Hide one fold of target links as the ground truth to recover.
    graph = SocialGraph.from_network(target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=7)[0]
    print(f"\nhidden test links: {len(split.test_links)}")

    # 3. Fit SLAMPRED on the training view.
    task = TransferTask(
        target=target,
        training_graph=split.training_graph,
        sources=list(aligned.sources),
        anchors=list(aligned.anchors),
        random_state=7,
    )
    model = SlamPred().fit(task)
    print(f"CCCP: {model.result.n_rounds} rounds, "
          f"{model.result.history.n_iterations} proximal iterations, "
          f"converged={model.result.converged}")

    # 4. Score the hidden links against sampled non-links.
    scores = model.score_pairs(split.test_pairs)
    labels = split.test_labels
    print(f"\nAUC           : {auc_score(scores, labels):.3f}")
    print(f"Precision@20  : {precision_at_k(scores, labels, 20):.3f}")

    # 5. The predictor matrix itself is the deliverable: confidence scores
    #    for every user pair in [0, 1].
    candidates = split.training_graph.non_links()
    candidate_scores = model.score_pairs(candidates)
    top = np.argsort(-candidate_scores)[:5]
    print("\ntop-5 predicted new links (user_i, user_j, confidence):")
    for idx in top:
        i, j = candidates[idx]
        print(f"  ({i:3d}, {j:3d})  {candidate_scores[idx]:.3f}")


if __name__ == "__main__":
    main()
