"""Quickstart: predict social links in a target network with SLAMPRED.

Generates a small aligned Foursquare/Twitter-like pair, hides 20% of the
target's links, fits the full SLAMPRED model with telemetry enabled and
reports how well the hidden links are recovered — plus where the solver's
wall-clock went, read back from the archived run report.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    RunReport,
    SlamPred,
    SocialGraph,
    Tracer,
    TransferTask,
    auc_score,
    default_report_path,
    generate_aligned_pair,
    k_fold_link_splits,
    precision_at_k,
)


def main() -> None:
    # 1. An aligned pair: a Twitter-like target + Foursquare-like source
    #    sharing ~90% of their users through anchor links.
    aligned = generate_aligned_pair(scale=120, random_state=7)
    target, source = aligned.target, aligned.sources[0]
    print(f"target  {target.name}: {target.n_users} users, "
          f"{target.n_social_links} links, {target.n_posts} posts")
    print(f"source  {source.name}: {source.n_users} users, "
          f"{source.n_social_links} links, {source.n_posts} posts")
    print(f"anchors: {len(aligned.anchors[0])}")

    # 2. Hide one fold of target links as the ground truth to recover.
    graph = SocialGraph.from_network(target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=7)[0]
    print(f"\nhidden test links: {len(split.test_links)}")

    # 3. Fit SLAMPRED on the training view, with solver telemetry on.
    #    (Omit the tracer — or pass NullTracer() — for the zero-overhead
    #    path; the fitted S is bit-identical either way.)
    task = TransferTask(
        target=target,
        training_graph=split.training_graph,
        sources=list(aligned.sources),
        anchors=list(aligned.anchors),
        random_state=7,
    )
    tracer = Tracer()
    model = SlamPred(tracer=tracer).fit(task)
    print(f"CCCP: {model.result.n_rounds} rounds, "
          f"{model.result.history.n_iterations} proximal iterations, "
          f"converged={model.result.converged}")

    # 4. Score the hidden links against sampled non-links.
    scores = model.score_pairs(split.test_pairs)
    labels = split.test_labels
    print(f"\nAUC           : {auc_score(scores, labels):.3f}")
    print(f"Precision@20  : {precision_at_k(scores, labels, 20):.3f}")

    # 5. The predictor matrix itself is the deliverable: confidence scores
    #    for every user pair in [0, 1].
    candidates = split.training_graph.non_links()
    candidate_scores = model.score_pairs(candidates)
    top = np.argsort(-candidate_scores)[:5]
    print("\ntop-5 predicted new links (user_i, user_j, confidence):")
    for idx in top:
        i, j = candidates[idx]
        print(f"  ({i:3d}, {j:3d})  {candidate_scores[idx]:.3f}")

    # 6. Archive the traced run as a schema-versioned JSON report and read
    #    it back: per-phase wall-clock, per-iteration objective breakdown
    #    and the retained SVD rank of every trace-norm prox apply.
    report_path = model.run_report(name="quickstart").save(
        default_report_path("quickstart")
    )
    report = RunReport.load(report_path)
    print(f"\nrun report ({report_path}):")
    print(report.summary())
    last = report.iterations[-1]
    print("\nlast iteration objective terms:")
    for term, value in sorted(last["objective_terms"].items()):
        print(f"  {term:<24} {value:12.4f}")


if __name__ == "__main__":
    main()
